#!/usr/bin/env bash
# Run a campaign spec with the release build and pinned environment,
# writing the versioned JSON report under reports/ (mirrors
# record_bench_baseline.sh's conventions). Run from the repository root:
#
#   scripts/run_campaign.sh campaigns/policy_sweep.json        # 1 thread
#   scripts/run_campaign.sh campaigns/smoke.json 4             # 4 threads
set -euo pipefail

spec=${1:?usage: scripts/run_campaign.sh <spec.json> [rayon_threads]}
threads=${2:-1}
name=$(basename "$spec" .json)
mkdir -p reports
out="reports/${name}_$(date +%Y%m%d_%H%M%S).campaign.json"

echo "== campaign $name (RAYON_NUM_THREADS=$threads) =="
RAYON_NUM_THREADS="$threads" cargo run --release -p hpgmxp-harness --bin campaign -- \
    "$spec" --out "$out"

echo "Done. Report: $out"
