#!/usr/bin/env bash
# Re-record the tracked kernel-performance baseline (BENCH_baseline.json)
# on this machine: full-sampling motif + solver benches at 1 and 4
# threads, merged by the bench_baseline tool. Run from the repository
# root.
set -euo pipefail

tmp1=$(mktemp /tmp/hpgmxp-bench-t1.XXXXXX.jsonl)
tmp4=$(mktemp /tmp/hpgmxp-bench-t4.XXXXXX.jsonl)
trap 'rm -f "$tmp1" "$tmp4"' EXIT

echo "== motif bench, RAYON_NUM_THREADS=1 =="
RAYON_NUM_THREADS=1 CRITERION_JSON="$tmp1" cargo bench -p hpgmxp-bench --bench motifs

echo "== solvers bench, RAYON_NUM_THREADS=1 =="
RAYON_NUM_THREADS=1 CRITERION_JSON="$tmp1" cargo bench -p hpgmxp-bench --bench solvers

echo "== collectives bench, RAYON_NUM_THREADS=1 =="
# Rank parallelism is encoded in the bench label (P2/P4), not the
# rayon pool; one single-threaded recording covers the matrix.
RAYON_NUM_THREADS=1 CRITERION_JSON="$tmp1" cargo bench -p hpgmxp-bench --bench collectives

echo "== motif bench, RAYON_NUM_THREADS=4 =="
RAYON_NUM_THREADS=4 CRITERION_JSON="$tmp4" cargo bench -p hpgmxp-bench --bench motifs

echo "== solvers bench, RAYON_NUM_THREADS=4 =="
RAYON_NUM_THREADS=4 CRITERION_JSON="$tmp4" cargo bench -p hpgmxp-bench --bench solvers

cargo run --release -p hpgmxp-bench --bin bench_baseline -- \
    record BENCH_baseline.json "$tmp1" "$tmp4"

echo "Done. Review and commit BENCH_baseline.json."
