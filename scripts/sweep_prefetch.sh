#!/usr/bin/env bash
# Sweep the ELL software-prefetch distance (HPGMXP_PREFETCH) over the
# SpMV motif benches on this machine and print a comparison table.
# The distance is a pure performance hint — results are bit-identical
# at every setting — so the sweep only reads the timing column.
#
#   scripts/sweep_prefetch.sh [distances...]     # default: 0 4 8 16 32 64
#
# Pick the fastest distance for this box and export HPGMXP_PREFETCH in
# the benchmarking environment (the default of 16 was tuned on the
# original recording host; ROADMAP "ELL SpMV tuning, part 2").
set -euo pipefail

distances=("${@:-0 4 8 16 32 64}")
# Re-split the default string if no args were given.
if [ $# -eq 0 ]; then
    # shellcheck disable=SC2206
    distances=(0 4 8 16 32 64)
fi

out_dir=$(mktemp -d /tmp/hpgmxp-prefetch-sweep.XXXXXX)
trap 'rm -rf "$out_dir"' EXIT

for d in "${distances[@]}"; do
    echo "== HPGMXP_PREFETCH=$d =="
    HPGMXP_PREFETCH="$d" RAYON_NUM_THREADS=1 \
        CRITERION_JSON="$out_dir/pf$d.jsonl" \
        cargo bench -p hpgmxp-bench --bench motifs
done

echo
echo "bench / distance:$(printf ' %8s' "${distances[@]}")"
# Benches present in the first run index the table rows.
first="$out_dir/pf${distances[0]}.jsonl"
while IFS= read -r bench; do
    row=$(printf '%-44s' "$bench")
    for d in "${distances[@]}"; do
        med=$(grep -F "\"bench\":\"$bench\"" "$out_dir/pf$d.jsonl" \
              | head -1 \
              | sed -n 's/.*"median_secs":\([0-9.eE+-]*\).*/\1/p')
        row+=$(printf ' %8s' "$(awk -v m="$med" 'BEGIN { printf "%.1f", m * 1e6 }')")
    done
    echo "$row  µs"
done < <(sed -n 's/.*"bench":"\([^"]*\)".*/\1/p' "$first" | grep -i spmv)
