#!/usr/bin/env bash
# One cell of the chaos matrix: inject a scenario from chaos/ into a
# multi-process checkpointing GMRES-IR job and assert the full cycle —
# the fault bites, the job fails *typed* (never hangs), the launcher
# relaunches with HPGMXP_RESTORE=1, the retry restores and finishes.
#
# usage: scripts/chaos_matrix.sh <ranks> <scenario>
#   e.g. scripts/chaos_matrix.sh 4 crash
#
# Environment overrides: LAUNCH and WORKER point at the two binaries
# (default: the release targets). Logs land in chaos-logs/ so CI can
# upload them as artifacts.
set -euo pipefail

P=${1:?usage: chaos_matrix.sh <ranks> <scenario>}
SCENARIO=${2:?usage: chaos_matrix.sh <ranks> <scenario>}
cd "$(dirname "$0")/.."
PLAN="chaos/${SCENARIO}.json"
if [ ! -f "$PLAN" ]; then
    echo "chaos_matrix: no such scenario: $PLAN (have: $(ls chaos))" >&2
    exit 2
fi

LAUNCH=${LAUNCH:-target/release/hpgmxp-launch}
WORKER=${WORKER:-target/release/ckpt_worker}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir -p chaos-logs
LOG="chaos-logs/${SCENARIO}-P${P}.log"

# The recv deadline is the detection mechanism for hangs and dropped
# frames; 5 s is far above any clean-run stall at this problem size.
# The launcher's own timeout is the hard stop for everything else.
set +e
HPGMXP_FAULT_PLAN="$PLAN" \
HPGMXP_CKPT_DIR="$WORK/ckpt" \
HPGMXP_RECV_DEADLINE_MILLIS=5000 \
    "$LAUNCH" -n "$P" --timeout-secs 120 --retries 1 -- "$WORKER" \
    >"$LOG" 2>&1
code=$?
set -e

tail -n 40 "$LOG"
if [ "$code" -ne 0 ]; then
    echo "chaos_matrix: $SCENARIO at P=$P did not recover (exit $code)" >&2
    exit 1
fi
# Exit 0 alone could mean the plan never fired. The launcher logs the
# relaunch, so recovery — not luck — must explain the success.
if ! grep -q "relaunching with restore" "$LOG"; then
    echo "chaos_matrix: $SCENARIO at P=$P: first attempt succeeded — the plan never bit" >&2
    exit 1
fi
echo "chaos_matrix: $SCENARIO at P=$P: detected, relaunched, recovered"
