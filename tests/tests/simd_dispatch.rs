//! SIMD dispatch contract tests: the vector kernels behind
//! `hpgmxp_sparse::simd` must be *bit-identical* to the portable
//! scalar path whenever stored and accumulate precisions coincide, and
//! stay inside the split-precision error bounds the precision-policy
//! suite already pins when they differ. Both dispatch levels are
//! forced in-process (`set_level_override`), so one run exercises both
//! kernel families regardless of `HPGMXP_SIMD`.
//!
//! The end-to-end half enforces the determinism contract at solver
//! granularity: a GMRES-IR solve under a uniform-precision policy
//! produces the same residual history to the last bit on either
//! dispatch path, and the per-motif byte counters (the benchmark's
//! memory-traffic currency) never depend on the dispatch level.

use hpgmxp_comm::{SelfComm, Timeline};
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve_policy;
use hpgmxp_core::motifs::Motif;
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_core::problem::{assemble_with_policy, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_sparse::coloring::greedy_coloring;
use hpgmxp_sparse::csr::{CsrBuilder, CsrMatrix};
use hpgmxp_sparse::gauss_seidel::gs_multicolor;
use hpgmxp_sparse::simd::{self, SimdLevel};
use hpgmxp_sparse::{blas, EllMatrix, Half, Scalar};
use proptest::prelude::*;
use std::sync::Mutex;

/// `set_level_override` is process-global; every test that flips it
/// serializes through this lock (proptest cases included).
static DISPATCH: Mutex<()> = Mutex::new(());

/// Restore environment-resolved dispatch even if a closure panics, so
/// one failing case cannot poison the rest of the binary.
struct ResetDispatch;
impl Drop for ResetDispatch {
    fn drop(&mut self) {
        simd::set_level_override(None);
    }
}

/// Run `f` once per forced dispatch level and return both results
/// (scalar first, avx2 second), or `None` when this host cannot run
/// the avx2 path at all (the contract is then vacuous).
fn on_both_levels<T>(mut f: impl FnMut() -> T) -> Option<(T, T)> {
    if !simd::features().supports_avx2_path() {
        return None;
    }
    let _g = DISPATCH.lock().unwrap();
    let _r = ResetDispatch;
    simd::set_level_override(Some(SimdLevel::Scalar));
    let s = f();
    simd::set_level_override(Some(SimdLevel::Avx2));
    let v = f();
    Some((s, v))
}

/// Lengths that stress every remainder path: 1, the f64 vector width
/// (4) ± 1, the f32 vector width (8) ± 1, and `ROW_BLOCK` (256) ± 1.
fn ragged_len() -> impl Strategy<Value = usize> {
    const LENS: [usize; 11] = [1, 3, 4, 5, 7, 8, 9, 31, 255, 256, 257];
    (0usize..LENS.len()).prop_map(|i| LENS[i])
}

/// Deterministic pseudo-random f64 in roughly [-4, 4) from a seed.
fn lcg(seed: u64, i: usize) -> f64 {
    let h = (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).wrapping_mul(0xbf58476d1ce4e5b9);
    ((h >> 11) as f64) / (1u64 << 50) as f64 - 4.0
}

fn vec_f64(seed: u64, len: usize) -> Vec<f64> {
    (0..len).map(|i| lcg(seed, i)).collect()
}

fn vec_f32(seed: u64, len: usize) -> Vec<f32> {
    (0..len).map(|i| lcg(seed, i) as f32).collect()
}

/// A banded, diagonally dominant matrix with a ragged bandwidth (so
/// the ELL slab has genuinely short rows next to full ones).
fn band_matrix(n: usize, band: usize, seed: u64) -> CsrMatrix<f64> {
    let mut b = CsrBuilder::new(n, n, n * (2 * band + 1));
    for i in 0..n {
        let mut entries: Vec<(u32, f64)> = Vec::new();
        let mut offsum = 0.0;
        let bi = 1 + (i + seed as usize) % band.max(1);
        for j in i.saturating_sub(bi)..(i + bi + 1).min(n) {
            if j != i {
                let v = -lcg(seed, i * 131 + j).abs() - 1e-3;
                offsum += v.abs();
                entries.push((j as u32, v));
            }
        }
        entries.push((i as u32, offsum + 1.0));
        entries.sort_unstable_by_key(|e| e.0);
        b.push_row(entries);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // BLAS-1 streaming kernels: both dispatch paths produce the same
    // bits at every uniform precision, across every remainder length.
    #[test]
    fn blas1_kernels_bit_identical_across_dispatch(len in ragged_len(), seed in 0u64..1000) {
        let got = on_both_levels(|| {
            let x64 = vec_f64(seed, len);
            let mut y64 = vec_f64(seed ^ 1, len);
            let mut w64 = vec![0.0f64; len];
            blas::axpy(1.0 + lcg(seed, 7), &x64, &mut y64);
            blas::waxpby(lcg(seed, 8), &x64, lcg(seed, 9), &y64, &mut w64);
            blas::scal(lcg(seed, 10), &mut w64);

            let x32 = vec_f32(seed, len);
            let mut y32 = vec_f32(seed ^ 2, len);
            let mut w32 = vec![0.0f32; len];
            blas::axpy(1.5f32, &x32, &mut y32);
            blas::waxpby(lcg(seed, 11) as f32, &x32, lcg(seed, 12) as f32, &y32, &mut w32);
            blas::scal(lcg(seed, 13) as f32, &mut w32);

            // Cross-precision accumulating forms (the GMRES-IR handoff).
            let mut acc = vec_f64(seed ^ 3, len);
            blas::axpy_lo_into_f64(lcg(seed, 14), &x32, &mut acc);
            let mut lo = vec![0.0f32; len];
            blas::scale_f64_into_lo(lcg(seed, 15), &x64, &mut lo);

            let bits64: Vec<u64> = y64.iter().chain(&w64).chain(&acc).map(|v| v.to_bits()).collect();
            let bits32: Vec<u32> = y32.iter().chain(&w32).chain(&lo).map(|v| v.to_bits()).collect();
            (bits64, bits32)
        });
        if let Some((s, v)) = got {
            prop_assert_eq!(s, v);
        }
    }

    // Precision converters (the fp16 ghost codec and the GMRES-IR
    // narrow/widen handoff): same bits on both paths.
    #[test]
    fn converters_bit_identical_across_dispatch(len in ragged_len(), seed in 0u64..1000) {
        let got = on_both_levels(|| {
            let x64 = vec_f64(seed, len);
            let mut x32 = vec![0.0f32; len];
            hpgmxp_sparse::scalar::convert_slice(&x64, &mut x32);
            let mut h = vec![Half::ZERO; len];
            hpgmxp_sparse::half::narrow_f32_slice(&x32, &mut h);
            let mut wide = vec![0.0f32; len];
            hpgmxp_sparse::half::widen_f16_slice(&h, &mut wide);
            let mut back64 = vec![0.0f64; len];
            hpgmxp_sparse::scalar::convert_slice(&wide, &mut back64);
            let mut h2 = vec![Half::ZERO; len];
            hpgmxp_sparse::scalar::convert_slice(&x64, &mut h2);
            let bits: Vec<u64> = x32
                .iter()
                .map(|v| v.to_bits() as u64)
                .chain(h.iter().map(|v| v.to_bits() as u64))
                .chain(wide.iter().map(|v| v.to_bits() as u64))
                .chain(back64.iter().map(|v| v.to_bits()))
                .chain(h2.iter().map(|v| v.to_bits() as u64))
                .collect();
            bits
        });
        if let Some((s, v)) = got {
            prop_assert_eq!(s, v);
        }
    }

    // Uniform-precision ELL SpMV and multicolor GS: the tile-batched
    // vector kernels reproduce the scalar bits exactly.
    #[test]
    fn ell_spmv_and_gs_uniform_bit_identical_across_dispatch(
        n in 2usize..40,
        band in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = band_matrix(n, band, seed);
        let coloring = greedy_coloring(&a);
        let got = on_both_levels(|| {
            let ell = EllMatrix::from_csr(&a);
            let x = vec_f64(seed, n);
            let mut y = vec![0.0f64; n];
            ell.spmv(&x, &mut y);
            let r = vec_f64(seed ^ 5, n);
            let mut z = vec![0.1f64; n];
            gs_multicolor(&ell, &coloring, &r, &mut z);

            let a32: CsrMatrix<f32> = a.convert();
            let ell32 = EllMatrix::from_csr(&a32);
            let x32 = vec_f32(seed, n);
            let mut y32 = vec![0.0f32; n];
            ell32.spmv(&x32, &mut y32);
            let r32 = vec_f32(seed ^ 5, n);
            let mut z32 = vec![0.1f32; n];
            gs_multicolor(&ell32, &coloring, &r32, &mut z32);

            let b64: Vec<u64> = y.iter().chain(&z).map(|v| v.to_bits()).collect();
            let b32: Vec<u32> = y32.iter().chain(&z32).map(|v| v.to_bits()).collect();
            (b64, b32)
        });
        if let Some((s, v)) = got {
            prop_assert_eq!(s, v);
        }
    }

    // Split-precision paths (fp32/fp16 stored under f64 accumulation):
    // both dispatch levels stay within the storage-epsilon bound of
    // the pure-f64 result — the same contract the precision-policy
    // suite pins for the scalar path alone.
    #[test]
    fn ell_spmv_split_within_eps_bound_on_both_paths(
        n in 2usize..40,
        band in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = band_matrix(n, band, seed);
        let ell64 = EllMatrix::from_csr(&a);
        let x = vec_f64(seed, n);
        let mut y64 = vec![0.0f64; n];
        ell64.spmv(&x, &mut y64);
        let w = ell64.width() as f64;

        let got = on_both_levels(|| {
            let a32: CsrMatrix<f32> = a.convert();
            let ell32 = EllMatrix::from_csr(&a32);
            let mut y = vec![0.0f64; n];
            ell32.spmv(&x, &mut y);
            y
        });
        if let Some((s, v)) = got {
            for i in 0..n {
                let (_, vals) = a.row(i);
                let row_abs: f64 = vals.iter().map(|av| (av * 4.0).abs()).sum();
                let bound = (2.0 * f32::EPSILON as f64 + 4.0 * w * f64::EPSILON) * row_abs;
                prop_assert!((s[i] - y64[i]).abs() <= bound,
                    "scalar split row {i}: {} vs {} (bound {bound:e})", s[i], y64[i]);
                prop_assert!((v[i] - y64[i]).abs() <= bound,
                    "avx2 split row {i}: {} vs {} (bound {bound:e})", v[i], y64[i]);
            }
        }
    }
}

/// Shipped uniform-precision policies (storage == compute == wire on
/// every level): the dispatch determinism contract promises these
/// solve bit-identically on either kernel family.
fn uniform_policies() -> Vec<PrecisionPolicy> {
    PrecisionPolicy::shipped()
        .into_iter()
        .filter(|p| p.wire == p.compute && p.storage.iter().all(|&s| s == p.compute))
        .collect()
}

fn spec(n: u32, levels: usize) -> ProblemSpec {
    ProblemSpec {
        local: (n, n, n),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::symmetric(),
        mg_levels: levels,
        seed: 23,
    }
}

/// `HPGMXP_SIMD=avx2` vs `=scalar`, end to end: a GMRES-IR solve
/// under every uniform-precision policy walks the exact same residual
/// trajectory — same iteration count, same history to the last bit.
#[test]
fn gmres_ir_residual_history_bit_identical_for_uniform_policies() {
    let policies = uniform_policies();
    assert!(!policies.is_empty(), "shipped() must contain uniform policies");
    for policy in policies {
        let got = on_both_levels(|| {
            let sp = spec(12, 3);
            let prob = assemble_with_policy(&sp, 0, &policy);
            let opts = GmresOptions {
                max_iters: 600,
                tol: 1e-9,
                track_history: true,
                ..Default::default()
            };
            let tl = Timeline::disabled();
            let (x, st) = gmres_ir_solve_policy(&SelfComm, &prob, &policy, &opts, &tl);
            let xbits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            let hbits: Vec<u64> = st.history.iter().map(|v| v.to_bits()).collect();
            (st.iters, st.converged, st.final_relres.to_bits(), hbits, xbits)
        });
        let Some((s, v)) = got else {
            eprintln!("skipping: host cannot run the avx2 path");
            return;
        };
        assert_eq!(
            s, v,
            "policy {}: scalar and avx2 dispatch must solve bit-identically",
            policy.name
        );
    }
}

/// The per-motif byte counters are a property of the *policy*, never
/// of the kernel dispatch: forcing either level measures the same
/// value/total bytes for every motif, on every shipped policy
/// (split-precision ones included).
#[test]
fn byte_counters_do_not_depend_on_dispatch_level() {
    for policy in PrecisionPolicy::shipped() {
        let got = on_both_levels(|| {
            let sp = spec(8, 2);
            let prob = assemble_with_policy(&sp, 0, &policy);
            let opts = GmresOptions { max_iters: 120, tol: 1e-9, ..Default::default() };
            let tl = Timeline::disabled();
            let (_, st) = gmres_ir_solve_policy(&SelfComm, &prob, &policy, &opts, &tl);
            let m = &st.motifs;
            let per_motif: Vec<(f64, f64)> =
                [Motif::SpMV, Motif::GaussSeidel, Motif::Comm, Motif::Restriction]
                    .iter()
                    .map(|&mo| (m.value_bytes(mo), m.bytes(mo)))
                    .collect();
            (st.iters, per_motif, m.total_bytes())
        });
        let Some((s, v)) = got else {
            eprintln!("skipping: host cannot run the avx2 path");
            return;
        };
        assert_eq!(s, v, "policy {}: byte accounting drifted with dispatch level", policy.name);
    }
}
