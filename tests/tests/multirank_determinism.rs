//! Multi-rank GMRES-IR bit-determinism.
//!
//! The comm-v2 halo engine drains neighbors in *arrival order*
//! (`wait_any`), which varies run to run with OS scheduling. That must
//! never leak into the numerics: unpacks write disjoint ghost ranges
//! and reductions run in fixed rank order, so at a fixed decomposition
//! the entire GMRES-IR residual history must replay **bit for bit**
//! across repeated runs — at P ∈ {1, 2, 4} thread-ranks.
//!
//! Across *different* rank counts the histories agree to solver
//! tolerance but not bitwise: the Gauss–Seidel smoother reads
//! pre-sweep ghost values (standard HPCG semantics, §3.2.1), so the
//! preconditioner — like the real benchmark's — depends on the
//! decomposition. The cross-P checks below pin the tolerance-level
//! agreement and the iteration-count band instead.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};

const TOL: f64 = 1e-9;

/// Solve the same 16³ *global* problem decomposed over `p` ranks and
/// return every rank's residual history as exact bit patterns, plus
/// the iteration count and convergence flag.
fn solve_history(p: u32, local: (u32, u32, u32)) -> (Vec<u64>, usize, bool) {
    let procs = ProcGrid::factor(p);
    let results = run_spmd(p as usize, move |c| {
        let prob = assemble(
            &ProblemSpec { local, procs, stencil: Stencil27::symmetric(), mg_levels: 2, seed: 7 },
            c.rank(),
        );
        let opts =
            GmresOptions { max_iters: 60, tol: TOL, track_history: true, ..Default::default() };
        let tl = Timeline::disabled();
        let (_, stats) = gmres_ir_solve(&c, &prob, &opts, &tl);
        (
            stats.history.iter().map(|h| h.to_bits()).collect::<Vec<u64>>(),
            stats.iters,
            stats.converged,
        )
    });
    // Every rank computes the same (all-reduced) residual history.
    for w in results.windows(2) {
        assert_eq!(w[0].0, w[1].0, "ranks disagree on the residual history");
    }
    let (history, iters, converged) = results.into_iter().next().unwrap();
    (history, iters, converged)
}

/// The decompositions of the 16³ global problem at P ∈ {1, 2, 4}
/// under thread-ranks; pinned to the launched mesh size under
/// `HPGMXP_COMM=socket` (the world size is fixed at launch, and the
/// CI matrix covers P ∈ {2, 4}).
fn decompositions() -> Vec<(u32, (u32, u32, u32))> {
    let all = vec![(1, (16, 16, 16)), (2, (8, 16, 16)), (4, (8, 8, 16))];
    match hpgmxp_comm::socket_world_size() {
        Some(p) => {
            let ours: Vec<_> = all.into_iter().filter(|(q, _)| *q as usize == p).collect();
            assert!(!ours.is_empty(), "no 16^3 decomposition for a {p}-rank socket mesh");
            ours
        }
        None => all,
    }
}

#[test]
fn gmres_ir_history_replays_bit_for_bit_at_each_rank_count() {
    for (p, local) in decompositions() {
        let (h1, i1, c1) = solve_history(p, local);
        let (h2, i2, c2) = solve_history(p, local);
        let (h3, i3, c3) = solve_history(p, local);
        assert!(c1 && c2 && c3, "P={p}: all runs must converge");
        assert_eq!(i1, i2);
        assert_eq!(i2, i3);
        assert_eq!(h1, h2, "P={p}: repeated runs must replay the history bit for bit");
        assert_eq!(h2, h3, "P={p}: arrival-order jitter must not reach the numerics");
        assert!(!h1.is_empty());
    }
}

#[test]
fn gmres_ir_converges_identically_well_at_every_rank_count() {
    // Cross-P: same global problem, tolerance-level agreement. The
    // preconditioner is decomposition-dependent (pre-sweep ghosts), so
    // iteration counts may differ by a small band but every
    // decomposition must reach the same 1e-9 target with the same
    // restart-history length.
    let runs: Vec<(u32, Vec<u64>, usize, bool)> = decompositions()
        .into_iter()
        .map(|(p, local)| {
            let (h, i, c) = solve_history(p, local);
            (p, h, i, c)
        })
        .collect();
    let iters: Vec<usize> = runs.iter().map(|r| r.2).collect();
    for (p, history, _, converged) in &runs {
        assert!(converged, "P={p} must converge to {TOL:e}");
        let last = f64::from_bits(*history.last().unwrap());
        assert!(last < TOL, "P={p} final relative residual {last:e}");
        assert_eq!(history.len(), runs[0].1.len(), "P={p}: same number of restart cycles as P=1");
    }
    let (min, max) = (*iters.iter().min().unwrap(), *iters.iter().max().unwrap());
    assert!(
        max - min <= 3,
        "iteration counts across decompositions must stay in a tight band, got {iters:?}"
    );
}
