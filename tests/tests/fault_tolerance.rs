//! End-to-end checkpoint/restart: a 4-rank socket GMRES-IR job is
//! killed mid-solve by a scripted fault plan, relaunched once by the
//! launcher's retry with `HPGMXP_RESTORE=1`, restores from the last
//! committed checkpoint generation, and finishes with a residual
//! history **bit-identical** to an uninterrupted run.

use hpgmxp_comm::launch::{run_job, LaunchConfig};
use std::path::Path;
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_ckpt_worker");

fn job(ckpt_dir: &Path, history: &Path, extra_env: &[(&str, String)]) -> LaunchConfig {
    let mut cfg = LaunchConfig::new(4, vec![WORKER.to_string()]);
    cfg.timeout = Duration::from_secs(120);
    cfg.env = vec![
        ("HPGMXP_CKPT_DIR".into(), ckpt_dir.display().to_string()),
        ("HPGMXP_HISTORY_OUT".into(), history.display().to_string()),
    ];
    cfg.env.extend(extra_env.iter().map(|(k, v)| (k.to_string(), v.clone())));
    cfg
}

#[test]
fn killed_job_restores_and_replays_bit_identical_history() {
    let base = std::env::temp_dir().join(format!("hpgmxp-ft-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Uninterrupted reference run (checkpointing on, no faults).
    let clean_dir = base.join("clean");
    let clean_hist = base.join("clean.bits");
    assert_eq!(run_job(&job(&clean_dir, &clean_hist, &[])), 0, "clean run must succeed");
    let reference = std::fs::read_to_string(&clean_hist).expect("clean history written");
    assert!(reference.lines().count() >= 3, "solve long enough to span checkpoints: {reference}");

    // Chaos run: rank 2 dies at its 400th comm operation — mid-solve,
    // after the first checkpoint generation committed. One retry; the
    // launcher relaunches with HPGMXP_RESTORE=1 and the worker disarms
    // the plan on that attempt.
    let chaos_dir = base.join("chaos");
    let chaos_hist = base.join("chaos.bits");
    let plan =
        r#"{"seed": 4242, "events": [{"kind": "CrashRank", "rank": 2, "at_exchange": 400}]}"#;
    let mut cfg = job(&chaos_dir, &chaos_hist, &[("HPGMXP_FAULT_PLAN", plan.to_string())]);
    cfg.retries = 1;
    assert_eq!(run_job(&cfg), 0, "the retry must recover the job");

    // The relaunch really resumed from a mid-solve generation — it did
    // not start cold (a cold start records generation -1).
    let marker = std::fs::read_to_string(chaos_dir.join("restored.marker"))
        .expect("restore attempt leaves its marker");
    let gen: i64 = marker
        .trim()
        .strip_prefix("restored_gen=")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("malformed marker: {marker:?}"));
    assert!(gen >= 1, "must resume from a committed mid-solve generation, got {gen}");

    // The recovered run's full residual history is bit-identical.
    let recovered = std::fs::read_to_string(&chaos_hist).expect("chaos history written");
    assert_eq!(reference, recovered, "restored run must replay the history bit-identically");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn job_with_exhausted_retries_reports_the_failure() {
    // A plan that kills rank 1 on every attempt (restore attempts
    // rearm nothing — but attempt 1 already used the only retry).
    let base = std::env::temp_dir().join(format!("hpgmxp-ft-fail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let plan = r#"{"seed": 7, "events": [{"kind": "CrashRank", "rank": 1, "at_exchange": 10}]}"#;
    let mut cfg =
        job(&base.join("ckpt"), &base.join("h.bits"), &[("HPGMXP_FAULT_PLAN", plan.to_string())]);
    cfg.retries = 0;
    let code = run_job(&cfg);
    assert_ne!(code, 0, "a dead rank with no retries fails the job");
    let _ = std::fs::remove_dir_all(&base);
}
