//! End-to-end solver behaviour across rank counts, variants, and
//! precisions — the numerical claims of the paper, verified on real
//! (laptop-scale) runs.

use hpgmxp_comm::{run_spmd, Comm, SelfComm, Timeline};
use hpgmxp_core::cg::{cg_solve, CgOptions};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::{gmres_solve_f64, GmresOptions};
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_integration_tests::dist_problem;

#[test]
fn all_three_solvers_agree_on_the_solution() {
    let prob = dist_problem(16, ProcGrid::new(1, 1, 1), 0, 4);
    let tl = Timeline::disabled();
    let g_opts = GmresOptions { max_iters: 600, ..Default::default() };
    let (x_g, st_g) = gmres_solve_f64(&SelfComm, &prob, &g_opts, &tl);
    let (x_ir, st_ir) = gmres_ir_solve(&SelfComm, &prob, &g_opts, &tl);
    let (x_cg, st_cg) = cg_solve(&SelfComm, &prob, &CgOptions::default(), &tl);
    assert!(st_g.converged && st_ir.converged && st_cg.converged);
    for i in 0..prob.n_local() {
        assert!((x_g[i] - x_ir[i]).abs() < 1e-6);
        assert!((x_g[i] - x_cg[i]).abs() < 1e-6);
        assert!((x_g[i] - 1.0).abs() < 1e-6, "exact solution is ones");
    }
}

#[test]
fn gmres_ir_penalty_overhead_is_bounded_by_one_cycle() {
    // The refinement overhead of GMRES-IR is the polish past the f32
    // stall: across problem sizes, n_ir must stay within roughly one
    // extra restart cycle of n_d, keeping the penalty ratio in a sane
    // band (the paper's Table 2 band is 0.958–1.067 at Frontier sizes;
    // at laptop sizes where n_d is tiny the ratio is lower but the
    // absolute gap stays bounded).
    let tl = Timeline::disabled();
    for n in [8u32, 16, 24] {
        let prob = dist_problem(n, ProcGrid::new(1, 1, 1), 0, 2);
        let opts = GmresOptions { max_iters: 3000, ..Default::default() };
        let (_, d) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        let (_, ir) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(d.converged && ir.converged);
        let ratio = d.iters as f64 / ir.iters as f64;
        assert!(
            (0.6..=1.15).contains(&ratio),
            "n={}: nd/nir = {}/{} = {} out of band",
            n,
            d.iters,
            ir.iters,
            ratio
        );
        assert!(
            ir.iters <= d.iters + opts.restart + 2,
            "n={}: overhead beyond one cycle: {} vs {}",
            n,
            ir.iters,
            d.iters
        );
    }
}

#[test]
fn variants_converge_on_every_decomposition() {
    for procs in [ProcGrid::new(2, 1, 1), ProcGrid::new(2, 2, 1)] {
        let p = procs.size() as usize;
        for variant in [ImplVariant::Optimized, ImplVariant::Reference] {
            let results = run_spmd(p, move |c| {
                let prob = dist_problem(8, procs, c.rank(), 2);
                let tl = Timeline::disabled();
                let opts = GmresOptions { max_iters: 600, variant, ..Default::default() };
                let (x, st) = gmres_ir_solve(&c, &prob, &opts, &tl);
                let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
                (st.converged, err)
            });
            for (conv, err) in results {
                assert!(conv, "{:?} on {:?} failed", variant, procs);
                assert!(err < 1e-5);
            }
        }
    }
}

#[test]
fn iteration_counts_identical_across_ranks_within_a_run() {
    // SPMD determinism: every rank must make identical convergence
    // decisions (they share the reduction results).
    let procs = ProcGrid::new(2, 2, 2);
    let results = run_spmd(8, move |c| {
        let prob = dist_problem(8, procs, c.rank(), 2);
        let tl = Timeline::disabled();
        let (_, st) = gmres_solve_f64(&c, &prob, &GmresOptions::default(), &tl);
        (st.iters, st.restarts, st.converged)
    });
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn nonsymmetric_needs_gmres_not_cg() {
    // The nonsymmetric stencil variant: GMRES-IR converges; CG's
    // SPD assumption is violated (pAp may go nonpositive), which is
    // exactly why the benchmark is GMRES-based.
    let spec = ProblemSpec {
        local: (8, 8, 8),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::nonsymmetric(0.9),
        mg_levels: 2,
        seed: 5,
    };
    let prob = assemble(&spec, 0);
    let tl = Timeline::disabled();
    let opts = GmresOptions { max_iters: 800, ..Default::default() };
    let (x, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
    assert!(st.converged);
    for xi in &x {
        assert!((xi - 1.0).abs() < 1e-5);
    }
}

#[test]
fn symmetric_problem_is_at_least_as_hard_for_gmres() {
    // Yamazaki et al.'s observation (§3): the symmetric matrix takes at
    // least as many GMRES iterations as the nonsymmetric variant.
    let tl = Timeline::disabled();
    let iters = |stencil: Stencil27| {
        let spec = ProblemSpec {
            local: (16, 16, 16),
            procs: ProcGrid::new(1, 1, 1),
            stencil,
            mg_levels: 2,
            seed: 5,
        };
        let prob = assemble(&spec, 0);
        let opts = GmresOptions { max_iters: 2000, tol: 1e-8, ..Default::default() };
        let (_, st) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged);
        st.iters
    };
    let sym = iters(Stencil27::symmetric());
    let nonsym = iters(Stencil27::nonsymmetric(0.5));
    assert!(
        sym + 2 >= nonsym,
        "symmetric ({}) should be >= nonsymmetric ({}) - slack",
        sym,
        nonsym
    );
}

#[test]
fn zero_rhs_converges_immediately() {
    let mut prob = dist_problem(8, ProcGrid::new(1, 1, 1), 0, 2);
    prob.b.iter_mut().for_each(|v| *v = 0.0);
    let tl = Timeline::disabled();
    let (x, st) = gmres_solve_f64(&SelfComm, &prob, &GmresOptions::default(), &tl);
    assert!(st.converged);
    assert_eq!(st.iters, 0);
    assert!(x.iter().all(|&v| v == 0.0));
}

#[test]
fn restart_length_one_still_converges() {
    // Degenerate restart: every iteration is its own refinement cycle.
    let prob = dist_problem(8, ProcGrid::new(1, 1, 1), 0, 2);
    let tl = Timeline::disabled();
    let opts = GmresOptions { restart: 1, max_iters: 3000, tol: 1e-6, ..Default::default() };
    let (_, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
    assert!(st.converged, "stalled at {}", st.final_relres);
}
