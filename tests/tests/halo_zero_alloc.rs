//! Steady-state halo exchanges perform **zero heap allocations**.
//!
//! The comm-v2 redesign gives `HaloExchange` persistent per-neighbor
//! staging buffers and the `ThreadWorld` transport a recycled buffer
//! pool, so after a warm-up phase (which grows every buffer to its
//! steady-state capacity) an exchange at any precision touches the
//! allocator exactly zero times. This test pins that property with a
//! counting global allocator: all ranks warm up, synchronize, and then
//! run N more exchanges while the (process-global) allocation counter
//! must not move.
//!
//! This file must stay a single-test binary: the global allocator and
//! its counter are process-wide, and a concurrently running unrelated
//! test would pollute the counted window.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts every allocator entry (alloc/realloc) while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LAST_SIZE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store((1 << 62) | new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_exchange_allocates_nothing() {
    const WARMUP: usize = 100;
    const MEASURED: usize = 50;
    let procs = ProcGrid::new(2, 2, 1);

    let counted = run_spmd(4, move |c| {
        let prob = assemble(
            &ProblemSpec {
                local: (6, 6, 6),
                procs,
                stencil: Stencil27::symmetric(),
                mg_levels: 1,
                seed: 11,
            },
            c.rank(),
        );
        let l = &prob.levels[0];
        let tl = Timeline::disabled();
        let mut x64 = vec![0.5f64; l.vec_len()];
        let mut x32 = vec![0.5f32; l.vec_len()];

        // Warm-up: grow the staging buffers, transport pool, and
        // mailbox deques to steady-state capacity at both precisions.
        // The per-round barrier bounds the number of simultaneously
        // in-flight pool buffers to one round's worth, so the pool's
        // high-water mark reached here deterministically covers the
        // measured phase below (which keeps the same per-round bound);
        // without it a fast rank can set a new in-flight record — and
        // force one pool growth — mid-measurement, scheduler-dependent.
        // `Barrier::wait` itself never touches the allocator.
        for i in 0..WARMUP as u64 {
            l.halo.exchange(&c, 2 * i, &mut x64, &tl);
            l.halo.exchange(&c, 2 * i + 1, &mut x32, &tl);
            c.barrier();
        }

        // Everyone parks between the barriers doing nothing but
        // exchanges, so the process-global counter isolates the
        // steady-state exchange path.
        c.barrier();
        if c.rank() == 0 {
            // The world-shared transport pool may still hold buffers
            // that only ever carried the smaller (f32) messages; grow
            // them to the widest message once, while nothing is in
            // flight, so no stale buffer can trigger a realloc at a
            // scheduler-dependent moment mid-measurement.
            let widest =
                l.halo.plan().neighbors.iter().map(|n| n.staging_bytes(8)).max().unwrap_or(0);
            c.prewarm_pool(widest);
            ALLOCATIONS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        c.barrier();

        for i in 0..MEASURED as u64 {
            let tag = (WARMUP as u64 + i) * 2;
            l.halo.exchange(&c, tag, &mut x64, &tl);
            l.halo.exchange(&c, tag + 1, &mut x32, &tl);
            c.barrier();
        }

        c.barrier();
        let count = if c.rank() == 0 {
            ARMED.store(false, Ordering::SeqCst);
            Some(ALLOCATIONS.load(Ordering::SeqCst))
        } else {
            None
        };
        c.barrier();
        count
    });

    let allocations = counted[0].expect("rank 0 reports the counter");
    assert_eq!(
        allocations,
        0,
        "steady-state halo exchange must not touch the allocator: \
         {allocations} allocations across {MEASURED} exchange rounds on 4 ranks \
         (last size tag: {:#x})",
        LAST_SIZE.load(Ordering::SeqCst)
    );
}
