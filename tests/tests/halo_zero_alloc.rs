//! Steady-state halo exchanges perform **zero heap allocations**.
//!
//! The comm-v2 redesign gives `HaloExchange` persistent per-neighbor
//! staging buffers and both transports recycled buffer pools
//! (`ThreadWorld`: a world-shared pool; `SocketWorld`: per-peer pools
//! plus per-connection staging), so after a warm-up phase (which grows
//! every buffer to its steady-state capacity) an exchange at any
//! precision touches the allocator exactly zero times. This test pins
//! that property with a counting global allocator: all ranks warm up,
//! synchronize, and then run N more exchanges while the allocation
//! counter must not move.
//!
//! The counter is process-global, so *every* rank arms, reads, and
//! asserts it: under `HPGMXP_COMM=thread` the ranks share one counter
//! (arming is idempotent, the barriers fence the measured window);
//! under `HPGMXP_COMM=socket` each rank process has its own counter
//! and independently asserts its own transport stack stayed quiet.
//!
//! This file must stay a single-test binary: the global allocator and
//! its counter are process-wide, and a concurrently running unrelated
//! test would pollute the counted window.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts every allocator entry (alloc/realloc) while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LAST_SIZE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store((1 << 62) | new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_exchange_allocates_nothing() {
    // Span tracing is part of the zero-allocation contract: with the
    // recorder armed, every halo span mirrors into the preallocated
    // global ring and every transport counter is a bare atomic, so
    // the measured window below must stay quiet even while fully
    // instrumented. (Metric/ring registration allocates once, on
    // first use — inside warm-up, never in steady state.)
    hpgmxp_trace::set_mode_override(hpgmxp_trace::Mode::Spans);
    const WARMUP: usize = 100;
    const MEASURED: usize = 50;
    let ranks = hpgmxp_comm::socket_world_size().unwrap_or(4);
    let procs = match ranks {
        2 => ProcGrid::new(2, 1, 1),
        4 => ProcGrid::new(2, 2, 1),
        8 => ProcGrid::new(2, 2, 2),
        p => panic!("no process grid for {p} ranks"),
    };

    let counted = run_spmd(ranks, move |c| {
        let prob = assemble(
            &ProblemSpec {
                local: (6, 6, 6),
                procs,
                stencil: Stencil27::symmetric(),
                mg_levels: 1,
                seed: 11,
            },
            c.rank(),
        );
        let l = &prob.levels[0];
        let tl = Timeline::disabled();
        let mut x64 = vec![0.5f64; l.vec_len()];
        let mut x32 = vec![0.5f32; l.vec_len()];

        // Warm-up: grow the staging buffers, transport pools, and
        // mailbox deques to steady-state capacity at both precisions.
        // The per-round barrier bounds the number of simultaneously
        // in-flight pool buffers to one round's worth, so the pool's
        // high-water mark reached here deterministically covers the
        // measured phase below (which keeps the same per-round bound);
        // without it a fast rank can set a new in-flight record — and
        // force one pool growth — mid-measurement, scheduler-dependent.
        // Neither transport's barrier touches the allocator once warm.
        for i in 0..WARMUP as u64 {
            l.halo.exchange(&c, 2 * i, &mut x64, &tl);
            l.halo.exchange(&c, 2 * i + 1, &mut x32, &tl);
            c.barrier();
        }

        // Transport pools may still hold buffers that only ever
        // carried the smaller (f32) messages; grow them to the widest
        // message once, while nothing is in flight, so no stale buffer
        // can trigger a realloc at a scheduler-dependent moment
        // mid-measurement. Every rank prewarms: under threads the
        // world pool is shared (idempotent), under sockets each
        // process owns its pools and must do its own.
        c.barrier();
        let widest = l.halo.plan().neighbors.iter().map(|n| n.staging_bytes(8)).max().unwrap_or(0);
        c.prewarm_pool(widest);
        c.barrier();
        ALLOCATIONS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        c.barrier();

        for i in 0..MEASURED as u64 {
            let tag = (WARMUP as u64 + i) * 2;
            l.halo.exchange(&c, tag, &mut x64, &tl);
            l.halo.exchange(&c, tag + 1, &mut x32, &tl);
            c.barrier();
        }

        c.barrier();
        ARMED.store(false, Ordering::SeqCst);
        (ALLOCATIONS.load(Ordering::SeqCst), LAST_SIZE.load(Ordering::SeqCst))
    });

    // Thread mode returns all ranks (one shared counter), socket mode
    // this process's rank alone (its own counter) — every entry must
    // be zero either way.
    for (allocations, last_size) in counted {
        assert_eq!(
            allocations, 0,
            "steady-state halo exchange must not touch the allocator: \
             {allocations} allocations across {MEASURED} exchange rounds on {ranks} ranks \
             (last size tag: {last_size:#x})"
        );
    }
}
