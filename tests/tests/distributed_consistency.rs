//! Cross-crate consistency: the distributed kernels (geometry halo
//! plans + comm exchange + sparse kernels) must reproduce the serial
//! results of the same global problem exactly in f64.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::{Motif, MotifStats};
use hpgmxp_core::ops::{dist_dot, dist_gs_sweep, dist_spmv, OpCtx, SweepDir};
use hpgmxp_geometry::{LocalGrid, ProcGrid};
use hpgmxp_integration_tests::{dist_problem, serial_equivalent};

/// Fill a distributed vector with a deterministic function of the
/// global coordinate, so every rank agrees on the intended content.
fn global_fill(lg: &LocalGrid, len: usize) -> Vec<f64> {
    let g = lg.global();
    let mut x = vec![0.0f64; len];
    for (i, xi) in x[..lg.total_points()].iter_mut().enumerate() {
        let (ix, iy, iz) = lg.coords(i);
        let (gx, gy, gz) = lg.to_global(ix, iy, iz);
        let gid = g.index(gx, gy, gz) as f64;
        *xi = (gid * 0.001).sin() + 0.5;
    }
    x
}

fn serial_fill(lg: &LocalGrid, len: usize) -> Vec<f64> {
    global_fill(lg, len)
}

#[test]
fn distributed_spmv_bitwise_matches_serial() {
    for procs in [ProcGrid::new(2, 1, 1), ProcGrid::new(2, 2, 1), ProcGrid::new(2, 2, 2)] {
        let n = 4u32;
        let p = procs.size() as usize;
        let serial = serial_equivalent(n, procs, 1);
        let sl = &serial.levels[0];
        let sx = serial_fill(&sl.grid, sl.vec_len());
        let mut sy = vec![0.0f64; sl.n_local()];
        sl.csr64().spmv(&sx, &mut sy);

        for variant in [ImplVariant::Optimized, ImplVariant::Reference] {
            let results = run_spmd(p, move |c| {
                let prob = dist_problem(n, procs, c.rank(), 1);
                let l = &prob.levels[0];
                let tl = Timeline::disabled();
                let ctx = OpCtx::new(&c, variant, &tl);
                let mut stats = MotifStats::new();
                let mut x = global_fill(&l.grid, l.vec_len());
                let mut y = vec![0.0f64; l.n_local()];
                dist_spmv(&ctx, l, &mut stats, 0, &mut x, &mut y);
                (c.rank(), y)
            });
            let g = sl.grid;
            for (rank, y) in results {
                let lg = LocalGrid::new((n, n, n), procs, rank as u32);
                for (i, &yi) in y.iter().enumerate() {
                    let (ix, iy, iz) = lg.coords(i);
                    let (gx, gy, gz) = lg.to_global(ix, iy, iz);
                    let (sx_, sy_, sz_) = (gx as u32, gy as u32, gz as u32);
                    let si = g.index(sx_, sy_, sz_);
                    // f64 SpMV is performed in identical entry order on
                    // both sides (stencil order), so the match is exact.
                    assert_eq!(yi, sy[si], "{:?} rank {} row {} mismatch", variant, rank, i);
                }
            }
        }
    }
}

#[test]
fn reference_gs_sweep_matches_serial_lexicographic() {
    // The reference (level-scheduled) distributed sweep equals the
    // serial lexicographic sweep *on each rank's subdomain* with ghost
    // values frozen from the exchange — verify against a manual
    // simulation of exactly that semantics.
    let procs = ProcGrid::new(2, 1, 1);
    run_spmd(2, move |c| {
        let prob = dist_problem(4, procs, c.rank(), 1);
        let l = &prob.levels[0];
        let tl = Timeline::disabled();
        let r: Vec<f64> = (0..l.n_local()).map(|i| (i as f64 * 0.37).cos()).collect();

        let ctx = OpCtx::new(&c, ImplVariant::Reference, &tl);
        let mut stats = MotifStats::new();
        let mut z = global_fill(&l.grid, l.vec_len());
        dist_gs_sweep(&ctx, l, &mut stats, 0, SweepDir::Forward, &r, &mut z);

        // Manual: exchange, then sequential in-place relaxation.
        let mut z2 = global_fill(&l.grid, l.vec_len());
        l.halo.exchange(&c, 9, &mut z2, &tl);
        hpgmxp_sparse::gauss_seidel::gs_forward(l.csr64(), &r, &mut z2);

        for (a, b) in z.iter().zip(z2.iter()) {
            assert!((a - b).abs() < 1e-13);
        }
    });
}

#[test]
fn dot_products_are_rank_count_invariant() {
    // The same *global* vector (8×8×8 domain) dotted with itself on
    // 1, 2, 4, 8 ranks must agree to f64 reduction tolerance.
    let mut reference = None;
    for p in [1usize, 2, 4, 8] {
        let procs = ProcGrid::factor(p as u32);
        let local = (8 / procs.px, 8 / procs.py, 8 / procs.pz);
        let results = run_spmd(p, move |c| {
            let lg = LocalGrid::new(local, procs, c.rank() as u32);
            let x = global_fill(&lg, lg.total_points());
            let mut stats = MotifStats::new();
            dist_dot(&c, &mut stats, Motif::Dot, &x, &x)
        });
        let v = results[0];
        for r in &results {
            assert_eq!(*r, v, "all ranks agree on the reduction");
        }
        match reference {
            None => reference = Some(v),
            Some(rv) => assert!((v - rv).abs() < 1e-9 * rv.abs(), "{} ranks: {} vs {}", p, v, rv),
        }
    }
}

#[test]
fn optimized_gs_is_deterministic_across_runs() {
    // The color-parallel sweep writes disjoint rows; repeated runs must
    // be bit-identical (no benign races).
    let procs = ProcGrid::new(2, 2, 1);
    let runs: Vec<Vec<Vec<f64>>> = (0..2)
        .map(|_| {
            run_spmd(4, move |c| {
                let prob = dist_problem(8, procs, c.rank(), 2);
                let l = &prob.levels[0];
                let tl = Timeline::disabled();
                let ctx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
                let mut stats = MotifStats::new();
                let r: Vec<f64> = (0..l.n_local()).map(|i| (i % 29) as f64 * 0.1).collect();
                let mut z = vec![0.25f64; l.vec_len()];
                for tag in 0..3 {
                    dist_gs_sweep(&ctx, l, &mut stats, tag, SweepDir::Forward, &r, &mut z);
                }
                z
            })
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}
