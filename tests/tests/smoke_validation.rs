//! Fast end-to-end smoke test: the standard validation path on a 16³
//! single-rank problem. This is the CI canary — it exercises assembly,
//! the multigrid preconditioner, double-precision GMRES, and
//! mixed-precision GMRES-IR through the public `validate` entry point
//! and must stay fast (a few seconds).

use hpgmxp_core::benchmark::{validate, ValidationMode};
use hpgmxp_core::config::{BenchmarkParams, ImplVariant};

#[test]
fn standard_validation_converges_on_16cubed_single_rank() {
    let params =
        BenchmarkParams { local_dims: (16, 16, 16), validation_ranks: 1, ..Default::default() };
    let result = validate(&params, ImplVariant::Optimized, 1, ValidationMode::Standard);

    assert_eq!(result.mode, ValidationMode::Standard);
    assert_eq!(result.ranks, 1);
    // Both solvers must actually iterate...
    assert!(result.nd > 0, "double-precision GMRES did no iterations");
    assert!(result.nir > 0, "GMRES-IR did no iterations");
    // ...and GMRES-IR must reach the validation tolerance within the cap.
    assert!(
        result.nir < params.validation_max_iters,
        "GMRES-IR hit the {}-iteration cap without converging",
        params.validation_max_iters
    );
    assert!(
        result.achieved_relres <= params.validation_tol * 10.0,
        "GMRES-IR stalled at relative residual {:.3e} (target {:.1e})",
        result.achieved_relres,
        params.validation_tol
    );
    // The penalty metric is a ratio-capped multiplier in (0, 1].
    assert!(result.penalty > 0.0 && result.penalty <= 1.0);
}
