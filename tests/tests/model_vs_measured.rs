//! Links between the performance model and the measured benchmark:
//! both sides use the same FLOP accounting, so cross-checks keep the
//! model honest.

use hpgmxp_core::benchmark::run_phase;
use hpgmxp_core::config::{BenchmarkParams, ImplVariant};
use hpgmxp_core::motifs::Motif;
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::workload::Workload;
use hpgmxp_machine::{MachineModel, NetworkModel};

fn tiny_params() -> BenchmarkParams {
    BenchmarkParams {
        local_dims: (8, 8, 8),
        mg_levels: 2,
        max_iters_per_solve: 30,
        benchmark_solves: 1,
        ..Default::default()
    }
}

#[test]
fn modeled_flops_per_iteration_match_measured_counts() {
    // Run the real double-precision benchmark phase for exactly 30
    // iterations (one full restart cycle) and compare the per-iteration
    // FLOP count against the model built from the same workload shape.
    let params = tiny_params();
    let ranks = 1usize;
    let phase = run_phase(&params, ImplVariant::Optimized, ranks, false);
    let measured_per_iter: f64 =
        phase.motif_flops.iter().map(|(_, v)| v).sum::<f64>() / phase.iters as f64;

    let cfg = SimConfig {
        local: params.local_dims,
        mg_levels: params.mg_levels,
        restart: params.restart,
        variant: ImplVariant::Optimized,
        mixed: false,
        inner_bytes: 4,
        penalty: 1.0,
        policy: None,
    };
    let m = MachineModel::cpu_socket();
    let n = NetworkModel::shared_memory();
    let sim = simulate(&cfg, &m, &n, ranks);
    let modeled_per_iter = sim.per_iter.total_flops();

    let rel = (measured_per_iter - modeled_per_iter).abs() / measured_per_iter;
    assert!(
        rel < 0.25,
        "model {} vs measured {} FLOPs/iter ({}% off)",
        modeled_per_iter,
        measured_per_iter,
        rel * 100.0
    );
}

#[test]
fn workload_shape_matches_measured_problem_dimensions() {
    use hpgmxp_core::problem::{assemble, ProblemSpec};
    let params = tiny_params();
    let spec = ProblemSpec::from_params(&params, 8);
    let procs = spec.procs;
    let mid = procs.rank_of(procs.px / 2, procs.py / 2, procs.pz / 2);
    let prob = assemble(&spec, mid as usize);
    let wl = Workload::build(params.local_dims, params.mg_levels, params.restart, 8);
    for (lvl, shape) in prob.levels.iter().zip(wl.levels.iter()) {
        assert_eq!(lvl.n_local() as f64, shape.n);
        assert_eq!(lvl.nnz() as f64, shape.nnz);
        assert_eq!(lvl.halo.plan().neighbors.len(), shape.halo_msgs);
        assert_eq!(lvl.halo.send_volume() as f64, shape.halo_values);
        assert_eq!(lvl.schedule.num_levels(), shape.sched_stages);
    }
}

#[test]
fn halo_bytes_reconcile_measured_vs_model_per_precision() {
    // One byte accounting for figure 9 and the roofline: the bytes the
    // halo engine actually puts on the wire (timeline overlap records),
    // the bytes `HaloExchange::send_bytes::<S>()` claims, and the bytes
    // the network model is charged (`halo_values × S::BYTES` in
    // trace/simulate) must agree — at fp64, fp32, and fp16 ghosts.
    use hpgmxp_comm::{run_spmd, Comm, Timeline};
    use hpgmxp_core::problem::{assemble, ProblemSpec};
    use hpgmxp_geometry::{ProcGrid, Stencil27};
    use hpgmxp_sparse::{Half, Scalar};

    fn measured_bytes<S: Scalar + 'static>(ranks: u32, local: u32) -> (usize, usize, f64) {
        let procs = ProcGrid::factor(ranks);
        let mid = procs.rank_of(procs.px / 2, procs.py / 2, procs.pz / 2) as usize;
        let results = run_spmd(ranks as usize, move |c| {
            let prob = assemble(
                &ProblemSpec {
                    local: (local, local, local),
                    procs,
                    stencil: Stencil27::symmetric(),
                    mg_levels: 1,
                    seed: 3,
                },
                c.rank(),
            );
            let l = &prob.levels[0];
            let tl = Timeline::enabled();
            let mut x = vec![S::ZERO; l.vec_len()];
            l.halo.exchange(&c, 0, &mut x, &tl);
            let wire: usize = tl.overlap_records().iter().map(|r| r.bytes_sent).sum();
            let recv: usize = tl.overlap_records().iter().map(|r| r.bytes_received).sum();
            assert_eq!(
                wire,
                l.halo.send_bytes::<S>(),
                "engine accounting != wire bytes on rank {}",
                c.rank()
            );
            (c.rank(), wire, recv)
        });
        let wl = Workload::build((local, local, local), 1, 30, ranks as usize);
        let modeled = wl.fine().halo_values * S::BYTES as f64;
        let &(_, wire, recv) = results.iter().find(|(r, _, _)| *r == mid).unwrap();
        (wire, recv, modeled)
    }

    for (wire, recv, modeled) in [
        measured_bytes::<f64>(8, 4),
        measured_bytes::<f32>(8, 4),
        measured_bytes::<Half>(8, 4),
        measured_bytes::<f64>(2, 6),
        measured_bytes::<f32>(4, 3),
    ] {
        assert_eq!(wire as f64, modeled, "wire bytes must equal the network model's charge");
        assert_eq!(recv as f64, modeled, "received bytes must equal sent bytes (congruent boxes)");
    }
}

#[test]
fn model_time_is_monotone_in_problem_size_and_scale() {
    let m = MachineModel::mi250x_gcd();
    let n = NetworkModel::frontier_slingshot();
    let mk = |edge: u32| SimConfig {
        local: (edge, edge, edge),
        mg_levels: 4,
        restart: 30,
        variant: ImplVariant::Optimized,
        mixed: true,
        inner_bytes: 4,
        penalty: 1.0,
        policy: None,
    };
    // More points per rank => more time per iteration.
    let t64 = simulate(&mk(64), &m, &n, 64).time_per_iter;
    let t128 = simulate(&mk(128), &m, &n, 64).time_per_iter;
    let t320 = simulate(&mk(320), &m, &n, 64).time_per_iter;
    assert!(t64 < t128 && t128 < t320);
    // More ranks => no faster per-iteration (weak scaling).
    let base = simulate(&mk(128), &m, &n, 8).time_per_iter;
    for p in [64usize, 512, 8192, 75_264] {
        assert!(simulate(&mk(128), &m, &n, p).time_per_iter >= base);
    }
}

#[test]
fn overlap_never_hurts() {
    // Optimized (overlapped) must never be slower than the same
    // workload with the reference (blocking) communication, all else
    // equal — compare at identical storage via the model's variants.
    let m = MachineModel::mi250x_gcd();
    let n = NetworkModel::frontier_slingshot();
    for p in [8usize, 512, 8192] {
        let opt = simulate(&SimConfig::paper_mxp(), &m, &n, p);
        let rf = simulate(
            &SimConfig { variant: ImplVariant::Reference, ..SimConfig::paper_mxp() },
            &m,
            &n,
            p,
        );
        assert!(opt.time_per_iter < rf.time_per_iter);
    }
}

#[test]
fn measured_motif_flops_agree_between_variants() {
    // Optimized vs reference differ in *time*, not in the benchmark's
    // FLOP accounting — except restriction, where the fused kernel
    // legitimately does ~8x less work (§3.2.4's updated accounting).
    let params = tiny_params();
    let opt = run_phase(&params, ImplVariant::Optimized, 1, false);
    let rf = run_phase(&params, ImplVariant::Reference, 1, false);
    assert_eq!(opt.iters, rf.iters);
    for m in [Motif::GaussSeidel, Motif::SpMV, Motif::Ortho] {
        let fo = opt.flops_of(m);
        let fr = rf.flops_of(m);
        assert!((fo - fr).abs() / fr < 1e-9, "{:?}: {} vs {}", m, fo, fr);
    }
    let restr_ratio = rf.flops_of(Motif::Restriction) / opt.flops_of(Motif::Restriction);
    assert!(
        restr_ratio > 4.0,
        "reference restriction must count ~8x the work, got {}",
        restr_ratio
    );
}
