//! Integration tests of the campaign harness: spec/report serde
//! round-trips, the golden file pinning report schema v5, the Hybrid
//! engine end to end on a tiny world, the unrated (`n/c`) honesty
//! path, and the per-policy weak-scaling monotonicity property.

// The proptest shim's muncher needs headroom for the 4-parameter
// property below.
#![recursion_limit = "512"]

use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_harness::{
    plan, run_campaign, CampaignReport, CampaignSpec, CellReport, CellStatus, HostMeta, PolicyRef,
    SeriesMode, SeriesSpec, REPORT_SCHEMA, SPEC_SCHEMA,
};
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};
use hpgmxp_sparse::PrecKind;
use hpgmxp_trace::{HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;

fn tiny_campaign(mode: SeriesMode, policies: Vec<PolicyRef>) -> CampaignSpec {
    CampaignSpec {
        schema: SPEC_SCHEMA,
        name: "itest".into(),
        description: "integration-test campaign".into(),
        local: (8, 8, 8),
        mg_levels: 2,
        restart: 30,
        iters_per_solve: 10,
        benchmark_solves: 1,
        validation_max_iters: 400,
        machine: "mi250x_gcd".into(),
        network: "frontier_slingshot".into(),
        series: vec![SeriesSpec {
            label: "s".into(),
            mode,
            variant: ImplVariant::Optimized,
            policies,
            ranks: vec![2],
            nodes: vec![1, 8],
            modeled_local: Some((320, 320, 320)),
            penalty: None,
        }],
    }
}

#[test]
fn spec_roundtrips_with_inline_policy_and_all_modes() {
    let mut spec = tiny_campaign(
        SeriesMode::Hybrid,
        vec![
            PolicyRef::by_name("f32s-f64c"),
            PolicyRef::by_name("mxp"),
            PolicyRef::inline(PrecisionPolicy {
                name: "custom".into(),
                storage: vec![PrecKind::F64, PrecKind::F16],
                compute: PrecKind::F32,
                wire: PrecKind::F16,
            }),
        ],
    );
    spec.series.push(SeriesSpec {
        label: "modeled".into(),
        mode: SeriesMode::Modeled,
        variant: ImplVariant::Reference,
        policies: vec![PolicyRef::by_name("double")],
        ranks: vec![],
        nodes: vec![64],
        modeled_local: None,
        penalty: Some(0.5),
    });
    let json = spec.to_json();
    let back = CampaignSpec::from_json(&json).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn hybrid_campaign_end_to_end_reconciles_and_grounds_projections() {
    let spec = tiny_campaign(
        SeriesMode::Hybrid,
        vec![PolicyRef::by_name("f64"), PolicyRef::by_name("f32s-f64c")],
    );
    let report = run_campaign(&spec).unwrap();
    assert_eq!(report.schema, REPORT_SCHEMA);
    // 2 policies × (1 measured + 2 modeled).
    assert_eq!(report.cells.len(), 6);
    assert!(report.host.logical_cores >= 1, "host metadata recorded");

    for policy in ["f64", "f32s-f64c"] {
        let measured = report.find_cell("s", policy, None, Some(2)).unwrap();
        assert_eq!(measured.status, CellStatus::Rated);
        assert_eq!(measured.transport, "thread", "measured cells record their transport");
        assert_eq!(measured.reconciled, Some(true), "Hybrid cells carry the byte verdict");
        assert!(measured.spmv_value_bytes.unwrap() > 0.0);
        assert!(measured.bytes_per_iter_rank.unwrap() > 0.0);
        assert!(measured.gflops_per_rank.unwrap() > 0.0);
        // The projection inherits the measured penalty.
        let modeled = report.find_cell("s", policy, Some(8), None).unwrap();
        assert_eq!(modeled.penalty, measured.penalty);
        assert!(modeled.note.contains("measured validation"));
        assert!(modeled.total_pflops.unwrap() > 0.0);
    }
    // The storage axis claim, measured: fp32 storage halves SpMV
    // matrix-value traffic exactly.
    let v64 = report.find_cell("s", "f64", None, Some(2)).unwrap().spmv_value_bytes.unwrap();
    let v32 = report.find_cell("s", "f32s-f64c", None, Some(2)).unwrap().spmv_value_bytes.unwrap();
    assert!((v64 / v32 - 2.0).abs() < 1e-9, "{v64} / {v32}");

    // And the whole report survives a JSON round-trip.
    let back = CampaignReport::from_json(&report.to_json()).unwrap();
    assert_eq!(report, back);
}

#[test]
fn breakdown_cells_are_unrated_and_render_nc() {
    // A validation cap the stress-fp16 policy cannot meet on this
    // problem forces the honesty path deterministically.
    let mut spec = tiny_campaign(SeriesMode::Measured, vec![PolicyRef::by_name("f16")]);
    spec.series[0].nodes = vec![];
    spec.validation_max_iters = 4;
    let report = run_campaign(&spec).unwrap();
    let cell = &report.cells[0];
    assert_eq!(cell.status, CellStatus::Unrated);
    assert_eq!(cell.gflops_per_rank, None, "no rating for a broken solver");
    assert_eq!(cell.bytes_per_iter_rank, None);
    assert!(cell.nir.is_some(), "where it gave up is carried");
    assert!(cell.note.contains("breakdown"), "note: {}", cell.note);
    let text = report.to_text();
    let row = text.lines().find(|l| l.starts_with("f16")).expect("f16 row rendered");
    assert!(row.contains("n/c"), "unrated row must print n/c: {row}");
}

/// The golden file pinning report schema v5 (v4 + the per-cell
/// `metrics` snapshot delta): a fully-populated report with fixed
/// values must serialize to the exact committed JSON. Any field
/// addition/rename/reorder fails here until `REPORT_SCHEMA` is
/// bumped and the golden regenerated (set `UPDATE_GOLDEN=1` to
/// rewrite, then commit the diff deliberately).
#[test]
fn report_schema_v5_matches_golden_file() {
    let mut rated = CellReport::new("weak-scaling", SeriesMode::Hybrid, "f32s-f64c", 2);
    rated.transport = "thread".into();
    rated.gflops_per_rank = Some(0.5);
    rated.gflops_per_rank_raw = Some(0.5);
    rated.bytes_per_iter_rank = Some(3488729.0);
    rated.nd = Some(22);
    rated.nir = Some(22);
    rated.penalty = Some(1.0);
    rated.overlap_efficiency = Some(0.25);
    rated.motif_gflops = vec![("GS".into(), 0.5), ("SpMV".into(), 0.75)];
    rated.reconciled = Some(true);
    rated.spmv_value_bytes = Some(442368.0);
    // One cell carries a metrics delta so the snapshot layout is
    // pinned too; the others stay `null` like an untraced campaign.
    rated.metrics = Some(MetricsSnapshot {
        counters: vec![("coll.allreduces".into(), 44), ("solver.iters".into(), 22)],
        gauges: vec![],
        histograms: vec![HistogramSnapshot {
            name: "wire.heartbeat_lag_ms".into(),
            count: 3,
            sum: 21,
            buckets: vec![(3, 2), (4, 1)],
        }],
    });
    let mut modeled = CellReport::new("weak-scaling", SeriesMode::Hybrid, "f32s-f64c", 75264);
    modeled.transport = "model".into();
    modeled.nodes = Some(9408);
    modeled.gflops_per_rank = Some(241.0);
    modeled.gflops_per_rank_raw = Some(241.0);
    modeled.total_pflops = Some(18.0);
    modeled.penalty = Some(1.0);
    modeled.note = "penalty from measured validation on this host".into();
    let mut unrated = CellReport::new("stress", SeriesMode::Measured, "f16", 2);
    unrated.transport = "socket".into();
    unrated.status = CellStatus::Unrated;
    unrated.nd = Some(22);
    unrated.nir = Some(88);
    unrated.note = "breakdown at relres NaN after 88 iterations".into();
    let report = CampaignReport {
        schema: REPORT_SCHEMA,
        campaign: "golden".into(),
        description: "schema-pinning fixture (fixed values, no measurement)".into(),
        host: HostMeta {
            logical_cores: 1,
            rayon_threads: 1,
            os: "linux".into(),
            arch: "x86_64".into(),
            simd_features: "avx2+fma+f16c".into(),
            simd_level: "avx2".into(),
            simd_override: None,
            transport: "shmem".into(),
            coll_algo: "rd".into(),
        },
        cells: vec![rated, modeled, unrated],
    };
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/campaign_report_v5.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file present (run with UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        json, golden,
        "campaign report schema v{REPORT_SCHEMA} drifted from the golden file — bump \
         REPORT_SCHEMA and regenerate deliberately (UPDATE_GOLDEN=1)"
    );
    // The golden parses back into the same report.
    assert_eq!(CampaignReport::from_json(&golden).unwrap(), report);
}

#[test]
fn plan_order_feeds_measurement_into_projection() {
    let spec = tiny_campaign(SeriesMode::Hybrid, vec![PolicyRef::by_name("f32")]);
    let cells = plan(&spec).unwrap();
    assert_eq!(cells.len(), 3);
    assert!(
        matches!(cells[0].scale, hpgmxp_harness::CellScale::Measured { .. }),
        "measured first so penalties can ground projections"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The campaign's fig-4 analogue per policy: modeled weak-scaling
    // GF/GCD is monotone non-increasing in node count for every
    // shipped policy (halo surfaces and all-reduce depth only grow
    // with scale). Shrinking (the PR-4 shim) walks any violating
    // node pair down to a minimal counterexample.
    #[test]
    fn modeled_per_policy_weak_scaling_monotone(
        policy_idx in 0usize..6,
        lo in 1usize..4000,
        delta in 1usize..5409,
        penalty in 0.3f64..1.0,
    ) {
        let hi = lo + delta; // strictly larger, ≤ 9408 nodes
        let policies = PrecisionPolicy::shipped();
        let cfg = SimConfig::paper_policy(policies[policy_idx % policies.len()].clone(), penalty);
        let m = MachineModel::mi250x_gcd();
        let n = NetworkModel::frontier_slingshot();
        let g_lo = simulate(&cfg, &m, &n, lo * m.devices_per_node).gflops_per_rank;
        let g_hi = simulate(&cfg, &m, &n, hi * m.devices_per_node).gflops_per_rank;
        prop_assert!(
            g_hi <= g_lo * (1.0 + 1e-12),
            "GF/GCD rose with scale: {} nodes -> {}, {} nodes -> {}",
            lo, g_lo, hi, g_hi
        );
    }
}
