//! The overhead gate's behavioral half: with `HPGMXP_TRACE=off` (the
//! default), every probe in the solver, halo engine, collectives, and
//! transports must leave no observable state behind — the global span
//! ring does not grow, no counter or histogram moves, and no trace
//! file is flushed. (The *timing* half of the gate is CI's
//! bench-baseline job, which runs the criterion benches untraced
//! against the committed baseline under its existing 20% tolerance.)
//!
//! This file must stay a single-test binary: the mode override and
//! the span ring are process-global.

use hpgmxp_comm::{run_spmd, Comm, Stream, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_geometry::ProcGrid;
use hpgmxp_integration_tests::dist_problem;
use hpgmxp_trace::{global, MetricsSnapshot, Mode};

#[test]
fn off_mode_records_nothing() {
    hpgmxp_trace::set_mode_override(Mode::Off);
    let events_before = global().recorded();
    let metrics_before = MetricsSnapshot::capture();

    let procs = ProcGrid::new(2, 1, 1);
    let converged = run_spmd(2, move |c| {
        let prob = dist_problem(8, procs, c.rank(), 2);
        let tl = Timeline::disabled();
        let opts =
            GmresOptions { max_iters: 200, variant: ImplVariant::Optimized, ..Default::default() };
        gmres_ir_solve(&c, &prob, &opts, &tl).1.converged
    });
    assert!(converged.iter().all(|c| *c));

    assert_eq!(global().recorded(), events_before, "span ring must not grow when off");
    let delta = MetricsSnapshot::capture().delta_since(&metrics_before);
    assert!(
        delta.counters.is_empty() && delta.histograms.is_empty(),
        "metrics moved while off: {delta:?}"
    );
    assert!(hpgmxp_trace::flush_global(0).is_none(), "no trace file flush when off");

    // A per-run enabled Timeline is independent of the global mode:
    // its instance ring still records (fig9 and the overlap-efficiency
    // plumbing rely on this), without leaking into the global ring.
    let tl = Timeline::enabled();
    tl.add("local only", Stream::Compute, 0.0, 1e-6);
    assert_eq!(tl.events().len(), 1);
    assert_eq!(global().recorded(), events_before);
}
