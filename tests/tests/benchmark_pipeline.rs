//! The complete benchmark pipeline (validation → mxp phase → double
//! phase → penalty → report), exercised end to end.

use hpgmxp_core::benchmark::{run_benchmark, run_phase, validate, ValidationMode};
use hpgmxp_core::config::{BenchmarkParams, ImplVariant};
use hpgmxp_core::motifs::Motif;

fn tiny() -> BenchmarkParams {
    BenchmarkParams {
        local_dims: (8, 8, 8),
        mg_levels: 2,
        max_iters_per_solve: 15,
        validation_max_iters: 500,
        benchmark_solves: 1,
        ..Default::default()
    }
}

#[test]
fn phases_count_equal_flops_for_equal_iterations() {
    // The GFLOP/s metric is a modeled count over measured time; for the
    // same iteration count the mxp and double phases must count nearly
    // the same FLOPs (mixed adds only the narrow/widen kernels).
    let params = tiny();
    let mxp = run_phase(&params, ImplVariant::Optimized, 2, true);
    let dbl = run_phase(&params, ImplVariant::Optimized, 2, false);
    assert_eq!(mxp.iters, dbl.iters);
    let f_mxp: f64 = mxp.motif_flops.iter().map(|(_, v)| v).sum();
    let f_dbl: f64 = dbl.motif_flops.iter().map(|(_, v)| v).sum();
    let rel = (f_mxp - f_dbl).abs() / f_dbl;
    assert!(rel < 0.02, "FLOP models diverge by {:.3}%", rel * 100.0);
}

#[test]
fn penalty_only_reduces_the_metric() {
    let report = run_benchmark(&tiny(), ImplVariant::Optimized, 2, ValidationMode::Standard);
    assert!(report.validation.penalty <= 1.0);
    assert!(report.penalized_gflops <= report.mxp.gflops_raw * (1.0 + 1e-12));
    if report.validation.ratio >= 1.0 {
        assert_eq!(report.validation.penalty, 1.0);
    }
}

#[test]
fn validation_modes_agree_at_small_scale() {
    // Below the iteration cap both modes chase the same 1e-9 target, so
    // their counts must be identical (Table 2's small-node rows, where
    // std and fullscale ratios match).
    let params = tiny();
    let std = validate(&params, ImplVariant::Optimized, 2, ValidationMode::Standard);
    let fs = validate(&params, ImplVariant::Optimized, 2, ValidationMode::FullScale);
    assert_eq!(std.nd, fs.nd);
    assert_eq!(std.nir, fs.nir);
}

#[test]
fn fullscale_validation_uses_all_ranks_standard_is_capped() {
    let mut params = tiny();
    params.validation_ranks = 2;
    let std = validate(&params, ImplVariant::Optimized, 4, ValidationMode::Standard);
    let fs = validate(&params, ImplVariant::Optimized, 4, ValidationMode::FullScale);
    assert_eq!(std.ranks, 2, "standard mode validates on the configured subset");
    assert_eq!(fs.ranks, 4, "fullscale mode validates on every rank");
    // Larger global problem needs more iterations (the paper's
    // GMRES-iterations-grow-with-scale observation).
    assert!(fs.nd >= std.nd);
}

#[test]
fn reference_variant_runs_the_full_pipeline() {
    let report = run_benchmark(&tiny(), ImplVariant::Reference, 2, ValidationMode::Standard);
    assert!(report.penalized_gflops > 0.0);
    assert!(report.mxp.seconds_of(Motif::GaussSeidel) > 0.0);
    assert!(report.double.seconds_of(Motif::GaussSeidel) > 0.0);
}

#[test]
fn report_serializes_and_renders() {
    let report = run_benchmark(&tiny(), ImplVariant::Optimized, 2, ValidationMode::Standard);
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("penalized_gflops"));
    let text = report.to_text();
    for needle in ["validation", "mxp", "double", "speedup"] {
        assert!(text.contains(needle), "report text missing {}", needle);
    }
}

#[test]
fn gs_dominates_flops_in_both_phases() {
    // Figure 7's structure: the multigrid smoother is the largest FLOP
    // (and usually time) component.
    let params = tiny();
    for mixed in [true, false] {
        let phase = run_phase(&params, ImplVariant::Optimized, 2, mixed);
        let gs = phase.flops_of(Motif::GaussSeidel);
        for m in [Motif::SpMV, Motif::Ortho, Motif::Restriction, Motif::Prolongation] {
            assert!(gs > phase.flops_of(m), "GS must dominate {:?}", m);
        }
    }
}
