//! End-to-end trace round-trip: a 2-rank GMRES-IR solve with span
//! tracing armed, dumped through the binary per-rank trace file and
//! merged into Chrome trace-event JSON, which must be valid by
//! construction — globally time-sorted, every `"B"` balanced by an
//! `"E"` on the same (pid, tid) track, and with span counts that
//! agree with the solver's own `SolveStats` accounting.
//!
//! This file must stay a single-test binary: the span ring and the
//! mode override are process-global, so a concurrently running test
//! would leak spans into the counted window.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_geometry::ProcGrid;
use hpgmxp_integration_tests::dist_problem;
use hpgmxp_trace::chrome::{merge, summary_table, ChromeTrace};
use hpgmxp_trace::{global, read_trace_file, write_trace_file, Mode};
use std::collections::{HashMap, HashSet};

#[test]
fn two_rank_solve_round_trips_into_valid_chrome_json() {
    hpgmxp_trace::set_mode_override(Mode::Spans);
    let procs = ProcGrid::new(2, 1, 1);
    let per_rank = run_spmd(2, move |c| {
        let prob = dist_problem(8, procs, c.rank(), 2);
        let tl = Timeline::disabled();
        let opts =
            GmresOptions { max_iters: 200, variant: ImplVariant::Optimized, ..Default::default() };
        let (_, st) = gmres_ir_solve(&c, &prob, &opts, &tl);
        (st.converged, st.restarts)
    });
    assert!(per_rank.iter().all(|(conv, _)| *conv), "solve must converge: {per_rank:?}");
    let total_restarts: usize = per_rank.iter().map(|(_, r)| r).sum();

    // Under the thread transport both ranks mirror into this process's
    // one global ring (distinct tids), so one trace file holds the
    // whole job.
    let rec = global();
    assert_eq!(rec.dropped(), 0, "ring wrapped; span counts would be partial");
    let dir = std::env::temp_dir().join(format!("hpgmxp-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace-rank0.bin");
    write_trace_file(&path, 0, rec).unwrap();
    let tf = read_trace_file(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let doc = merge(std::slice::from_ref(&tf));
    assert!(!doc.traceEvents.is_empty());

    // Valid JSON by construction: the document survives a serde
    // round-trip unchanged.
    let json = serde_json::to_string(&doc).unwrap();
    let back: ChromeTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(doc, back);

    // Globally sorted by timestamp.
    assert!(doc.traceEvents.windows(2).all(|w| w[0].ts <= w[1].ts), "ts must be monotone");

    // Balanced B/E nesting per (pid, tid) track, legal phases only.
    let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
    for ev in &doc.traceEvents {
        match ev.ph.as_str() {
            "B" => *depth.entry((ev.pid, ev.tid)).or_insert(0) += 1,
            "E" => {
                let d = depth.entry((ev.pid, ev.tid)).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E before B on pid {} tid {}", ev.pid, ev.tid);
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(depth.values().all(|d| *d == 0), "unbalanced spans per track: {depth:?}");

    // The solver's own accounting cross-checks the trace: one
    // "gmres cycle" span per restart cycle per rank.
    let cycles = doc.traceEvents.iter().filter(|e| e.ph == "B" && e.name == "gmres cycle").count();
    assert_eq!(cycles, total_restarts, "span count must match SolveStats.restarts");

    // Every instrumented layer shows up: solver, MG, motif kernels,
    // halo engine, collectives.
    let names: HashSet<&str> = doc.traceEvents.iter().map(|e| e.name.as_str()).collect();
    for expected in
        ["gmres cycle", "MG level 0", "SpMV interior", "halo pack", "halo unpack", "allreduce"]
    {
        assert!(names.contains(expected), "missing span {expected:?}; got {names:?}");
    }

    // And the CLI's summary view aggregates them.
    let table = summary_table(&[tf]);
    assert!(table.contains("gmres cycle"), "{table}");
}
