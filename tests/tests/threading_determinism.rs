//! Cross-thread-count determinism suite.
//!
//! The memory-wall experiments only make sense if changing
//! `RAYON_NUM_THREADS` changes *speed* and nothing else. Every motif
//! kernel is therefore required to produce **bit-identical** results at
//! 1, 2, and 8 threads:
//!
//! * elementwise kernels (axpy, waxpby, scaled narrowing) are chunked
//!   but order-preserving,
//! * dot products use the deterministic blocked-pairwise reduction
//!   (`blas::dot_par`),
//! * SpMV accumulates each row in fixed slab/entry order in every
//!   traversal variant,
//! * the multicolor Gauss–Seidel sweep writes disjoint rows per color,
//!
//! so the GMRES-IR residual history — the quantity the paper's
//! validation criterion is defined on — must replay exactly.

use hpgmxp_comm::{SelfComm, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_sparse::gauss_seidel::gs_multicolor;
use hpgmxp_sparse::{blas, EllMatrix};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run `kernel` under pools of 1, 2, and 8 threads and assert all
/// outcomes equal the 1-thread result.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, kernel: impl Fn() -> T) {
    let mut reference: Option<T> = None;
    for threads in THREAD_COUNTS {
        let pool = rayon::ThreadPool::new(threads);
        let out = pool.install(&kernel);
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                assert_eq!(&out, r, "{what}: result changed between 1 and {threads} threads")
            }
        }
    }
}

fn test_problem(n: u32, levels: usize) -> hpgmxp_core::problem::LocalProblem {
    assemble(
        &ProblemSpec {
            local: (n, n, n),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 3,
        },
        0,
    )
}

#[test]
fn vector_kernels_are_bit_identical_across_thread_counts() {
    let n = 100_003; // prime-ish: exercises ragged tail chunks
    let x: Vec<f64> = (0..n).map(|i| ((i * 31 % 1009) as f64).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| ((i * 17 % 997) as f64).cos()).collect();

    assert_thread_invariant("dot_par", || blas::dot_par(&x, &y).to_bits());
    assert_thread_invariant("axpy", || {
        let mut z = y.clone();
        blas::axpy(1.2345678901234, &x, &mut z);
        z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
    assert_thread_invariant("waxpby", || {
        let mut w = vec![0.0f64; n];
        blas::waxpby(0.3, &x, -1.7, &y, &mut w);
        w.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
    assert_thread_invariant("scale_f64_into_f32", || {
        let mut lo = vec![0.0f32; n];
        blas::scale_f64_into_f32(1.0 / 3.0, &x, &mut lo);
        lo.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
}

#[test]
fn spmv_variants_are_bit_identical_across_thread_counts() {
    let prob = test_problem(16, 1);
    let l = &prob.levels[0];
    let x: Vec<f64> = (0..l.vec_len()).map(|i| ((i * 7 % 411) as f64) * 0.01 - 2.0).collect();

    assert_thread_invariant("csr spmv_par", || {
        let mut y = vec![0.0f64; l.n_local()];
        l.csr64().spmv_par(&x, &mut y);
        y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
    assert_thread_invariant("ell spmv_par (heuristic)", || {
        let mut y = vec![0.0f64; l.n_local()];
        l.ell64().spmv_par(&x, &mut y);
        y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
    assert_thread_invariant("ell spmv_par_rowblock", || {
        let mut y = vec![0.0f64; l.n_local()];
        l.ell64().spmv_par_rowblock(&x, &mut y);
        y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
    // All traversals agree with the sequential column-major walk.
    let mut y_seq = vec![0.0f64; l.n_local()];
    l.ell64().spmv(&x, &mut y_seq);
    let mut y_par = vec![0.0f64; l.n_local()];
    rayon::ThreadPool::new(8).install(|| l.ell64().spmv_par(&x, &mut y_par));
    assert_eq!(y_seq, y_par);
}

#[test]
fn multicolor_gs_sweep_is_bit_identical_across_thread_counts() {
    let prob = test_problem(16, 1);
    let l = &prob.levels[0];
    let ell: &EllMatrix<f64> = l.ell64();
    let r: Vec<f64> = (0..l.n_local()).map(|i| (i % 23) as f64 - 11.0).collect();

    assert_thread_invariant("gs_multicolor", || {
        let mut z = vec![0.25f64; l.vec_len()];
        gs_multicolor(ell, &l.coloring, &r, &mut z);
        z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    });
}

/// The acceptance criterion of this PR: the GMRES-IR smoke solve must
/// replay its residual history bit for bit at 1, 2, and 8 threads.
#[test]
fn gmres_ir_residual_history_is_bit_identical_across_thread_counts() {
    let run = || {
        let prob = test_problem(16, 3);
        let tl = Timeline::disabled();
        let opts = GmresOptions {
            max_iters: 300,
            track_history: true,
            variant: ImplVariant::Optimized,
            ..Default::default()
        };
        let (x, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged, "smoke solve must converge (relres {})", st.final_relres);
        let history_bits: Vec<u64> = st.history.iter().map(|v| v.to_bits()).collect();
        let x_bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        (history_bits, x_bits, st.iters)
    };
    assert_thread_invariant("gmres_ir history", run);
}

/// Same property for the reference implementation variant (CSR +
/// level-scheduled sweeps run through the pool too).
#[test]
fn reference_variant_history_is_bit_identical_across_thread_counts() {
    let run = || {
        let prob = test_problem(8, 2);
        let tl = Timeline::disabled();
        let opts = GmresOptions {
            max_iters: 300,
            track_history: true,
            variant: ImplVariant::Reference,
            ..Default::default()
        };
        let (_, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        st.history.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    };
    assert_thread_invariant("gmres_ir reference history", run);
}
