//! Property-based tests (proptest) of the core data structures and
//! invariants, across randomized shapes and contents.

use hpgmxp_geometry::{GridHierarchy, HaloPlan, LocalGrid, ProcGrid};
use hpgmxp_sparse::blas;
use hpgmxp_sparse::coloring::{greedy_coloring, jpl_coloring};
use hpgmxp_sparse::csr::CsrBuilder;
use hpgmxp_sparse::gauss_seidel::{gs_forward, gs_multicolor, gs_rows_ordered};
use hpgmxp_sparse::ordering::Permutation;
use hpgmxp_sparse::{CsrMatrix, EllMatrix, LevelSchedule};
use proptest::prelude::*;

/// A random sparse, strictly diagonally dominant matrix: always a
/// valid Gauss–Seidel / solver input.
fn arb_dd_matrix(max_n: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(proptest::collection::vec(0..n, 0..6), n),
                proptest::collection::vec(-1.0f64..-0.01, n * 6),
            )
        })
        .prop_map(|(n, adj, vals)| {
            // Symmetrize the adjacency so GS orderings are meaningful.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (i, nbrs) in adj.iter().enumerate() {
                for &j in nbrs {
                    if i != j {
                        pairs.push((i.min(j), i.max(j)));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
            for (vi, &(i, j)) in pairs.iter().enumerate() {
                let v = vals[vi % vals.len()];
                rows[i].push((j as u32, v));
                rows[j].push((i as u32, v));
            }
            let mut b = CsrBuilder::new(n, n, pairs.len() * 2 + n);
            for (i, row) in rows.iter_mut().enumerate() {
                let offsum: f64 = row.iter().map(|(_, v)| v.abs()).sum();
                row.push((i as u32, offsum + 1.0)); // strict dominance
                row.sort_unstable_by_key(|e| e.0);
                b.push_row(row.iter().copied());
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_and_ell_spmv_agree(a in arb_dd_matrix(24), seed in 0u64..1000) {
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) + seed as f64).sin()).collect();
        let ell = EllMatrix::from_csr(&a);
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        ell.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(y2.iter()) {
            prop_assert!((u - v).abs() <= 1e-12 * (1.0 + u.abs()));
        }
    }

    #[test]
    fn colorings_are_always_valid(a in arb_dd_matrix(24), seed in 0u64..1000) {
        let g = greedy_coloring(&a);
        prop_assert!(g.verify(&a));
        let j = jpl_coloring(&a, seed);
        prop_assert!(j.verify(&a));
        // Both partition the rows.
        prop_assert_eq!(g.color_of.len(), a.nrows());
        let total: usize = j.rows_of.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, a.nrows());
    }

    #[test]
    fn multicolor_sweep_equals_color_ordered_sequential(a in arb_dd_matrix(20), seed in 0u64..100) {
        let n = a.nrows();
        let coloring = jpl_coloring(&a, seed);
        let r: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64).cos()).collect();
        let mut z_par = vec![0.1f64; n];
        gs_multicolor(&a, &coloring, &r, &mut z_par);
        let order: Vec<u32> = coloring.rows_of.iter().flatten().copied().collect();
        let mut z_seq = vec![0.1f64; n];
        gs_rows_ordered(&a, &order, &r, &mut z_seq);
        for (p, s) in z_par.iter().zip(z_seq.iter()) {
            prop_assert!((p - s).abs() < 1e-12);
        }
    }

    #[test]
    fn gs_sweep_is_contraction_on_dd_matrices(a in arb_dd_matrix(20)) {
        // Strict diagonal dominance => Gauss-Seidel converges; one sweep
        // from zero must not increase the residual.
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sin()).collect();
        let mut z = vec![0.0f64; n];
        gs_forward(&a, &r, &mut z);
        let mut az = vec![0.0; n];
        a.spmv(&z, &mut az);
        let res: f64 = r.iter().zip(az.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let r0: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(res <= r0 * (1.0 + 1e-12));
    }

    #[test]
    fn level_schedule_is_valid_and_partitions(a in arb_dd_matrix(24)) {
        let s = LevelSchedule::build(&a);
        prop_assert!(s.verify(&a));
        let total: usize = s.levels.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, a.nrows());
    }

    #[test]
    fn permutation_roundtrip(order in proptest::collection::vec(0..64u32, 1..64)) {
        // Build a valid permutation from arbitrary data by sorting-dedup.
        let n = order.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by_key(|&i| (order[i as usize], i));
        let p = Permutation::from_new_order(&idx);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&x)), x.clone());
        let pi = p.inverse();
        prop_assert_eq!(pi.apply(&p.apply(&x)), p.apply(&pi.apply(&x)));
    }

    #[test]
    fn symmetric_permute_preserves_spmv(a in arb_dd_matrix(16), shift in 1usize..7) {
        let n = a.nrows();
        let order: Vec<u32> = (0..n).map(|i| ((i + shift) % n) as u32).collect();
        let p = Permutation::from_new_order(&order);
        let pa = a.symmetric_permute(&p);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut ax = vec![0.0; n];
        a.spmv(&x, &mut ax);
        let px = p.apply(&x);
        let mut pax = vec![0.0; n];
        pa.spmv(&px, &mut pax);
        let expect = p.apply(&ax);
        for (u, v) in pax.iter().zip(expect.iter()) {
            prop_assert!((u - v).abs() < 1e-11);
        }
    }

    #[test]
    fn dot_is_symmetric_and_positive(v in proptest::collection::vec(-100.0f64..100.0, 1..200)) {
        let w: Vec<f64> = v.iter().rev().copied().collect();
        let d1 = blas::dot(&v, &w);
        let d2 = blas::dot(&w, &v);
        prop_assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1.abs()));
        prop_assert!(blas::norm2_sq(&v) >= 0.0);
    }

    #[test]
    fn halo_ghost_ids_are_a_bijection(
        px in 1u32..4, py in 1u32..4, pz in 1u32..3,
        nx in 2u32..5, ny in 2u32..5, nz in 2u32..5,
    ) {
        let procs = ProcGrid::new(px, py, pz);
        for rank in 0..procs.size() {
            let lg = LocalGrid::new((nx, ny, nz), procs, rank);
            let plan = HaloPlan::build(&lg);
            let mut seen = vec![false; plan.num_ghosts];
            for ez in -1..=(nz as i64) {
                for ey in -1..=(ny as i64) {
                    for ex in -1..=(nx as i64) {
                        if let Some(g) = plan.ghost_index(ex, ey, ez) {
                            prop_assert!(!seen[g]);
                            seen[g] = true;
                        }
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
            // Send volume equals ghost volume by symmetry of uniform boxes
            // only when every neighbor relation is mutual — always true here.
            let (interior, boundary) = plan.split_rows();
            prop_assert_eq!(interior.len() + boundary.len(), lg.total_points());
        }
    }

    #[test]
    fn grid_hierarchy_indices_in_range(e in 1u32..4) {
        let n = 8 * e.min(2);
        let lg = LocalGrid::new((n, n, n), ProcGrid::new(1, 1, 1), 0);
        let h = GridHierarchy::build(&lg, 3);
        for (l, map) in h.maps.iter().enumerate() {
            let fine_n = h.grids[l].total_points();
            prop_assert_eq!(map.n_fine, fine_n);
            for &f in &map.c2f {
                prop_assert!((f as usize) < fine_n);
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip_bytes(v in proptest::collection::vec(-1e12f64..1e12, 0..100)) {
        let bytes = hpgmxp_comm::comm::pack(&v);
        let mut out = vec![0.0f64; v.len()];
        hpgmxp_comm::comm::unpack(&bytes, &mut out);
        prop_assert_eq!(out, v.clone());
        // And f32, within rounding.
        let v32: Vec<f32> = v.iter().map(|&x| x as f32).collect();
        let b32 = hpgmxp_comm::comm::pack(&v32);
        prop_assert_eq!(b32.len(), v.len() * 4);
        let mut out32 = vec![0.0f32; v.len()];
        hpgmxp_comm::comm::unpack(&b32, &mut out32);
        prop_assert_eq!(out32, v32);
    }
}

/// Pool-coverage properties of the work-stealing runtime: whatever the
/// slice length, chunk size, and thread count, a parallel mutable
/// traversal must visit every index exactly once, and parallel
/// reductions must agree with their sequential counterparts.
mod pool_properties {
    use proptest::prelude::*;
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn par_iter_mut_visits_every_index_exactly_once(
            len in 1usize..20_000,
            threads in 1usize..9,
        ) {
            let pool = rayon::ThreadPool::new(threads);
            let mut v = vec![0u32; len];
            pool.install(|| {
                v.par_iter_mut().for_each(|x| *x += 1);
            });
            prop_assert!(v.iter().all(|&x| x == 1), "some index missed or repeated");
        }

        #[test]
        fn par_chunks_mut_covers_every_index_exactly_once(
            len in 1usize..20_000,
            chunk in 1usize..500,
            threads in 1usize..9,
        ) {
            let pool = rayon::ThreadPool::new(threads);
            let counters: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            let mut v = vec![0u8; len];
            pool.install(|| {
                v.par_chunks_mut(chunk).enumerate().for_each(|(b, c)| {
                    for (i, _) in c.iter_mut().enumerate() {
                        counters[b * chunk + i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            prop_assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }

        #[test]
        fn par_collect_preserves_order(
            len in 0usize..10_000,
            threads in 1usize..9,
        ) {
            let pool = rayon::ThreadPool::new(threads);
            let out: Vec<usize> =
                pool.install(|| (0..len).into_par_iter().map(|i| i * 3).collect());
            prop_assert_eq!(out, (0..len).map(|i| i * 3).collect::<Vec<_>>());
        }

        #[test]
        fn par_integer_sum_matches_sequential(
            v in proptest::collection::vec(0u64..1_000_000, 0..5_000),
            threads in 1usize..9,
        ) {
            // Integer sums are exact, so even the thread-shaped reduction
            // tree must agree with the sequential sum.
            let pool = rayon::ThreadPool::new(threads);
            let par: u64 = pool.install(|| v.par_iter().map(|&x| x).sum());
            prop_assert_eq!(par, v.iter().sum::<u64>());
        }
    }
}
