//! Backend-conformance suite for the `Comm` v2 contract, run against
//! every backend at several world sizes: `SelfComm` (P = 1) and, via
//! the `HPGMXP_COMM` dispatch in `run_spmd`, `ThreadWorld`
//! (P ∈ {1, 2, 4}) or `SocketWorld` (at the mesh size `hpgmxp-launch`
//! started — the CI matrix covers P ∈ {2, 4}).
//!
//! The contract under test (what the halo engine and solvers rely on):
//! * FIFO delivery per (sender, receiver, tag) triple;
//! * tag matching — receives with a later tag leave earlier-tag
//!   messages parked (MPI's unexpected-message queue), and those
//!   parked messages are still delivered in order;
//! * `wait_any` completes posted receives in *arrival* order, not
//!   post order, and returns `None` once every post is drained;
//! * `try_recv_into` never blocks and never loses parked messages;
//! * collectives (all-reduce, barrier) agree across ranks.

use hpgmxp_comm::{run_spmd, Comm, RecvPost, ReduceOp, SelfComm};

/// World sizes to sweep: free under threads; pinned to the launched
/// mesh under sockets (the world exists before this process ran).
fn world_sizes() -> Vec<usize> {
    match hpgmxp_comm::socket_world_size() {
        Some(p) => vec![p],
        None => vec![1, 2, 4],
    }
}

/// FIFO per (sender, tag) pair even when tags interleave.
fn check_fifo_and_tag_matching<C: Comm>(c: &C) {
    let p = c.size();
    if p == 1 {
        return;
    }
    let me = c.rank();
    let peer = (me + 1) % p;
    let from = (me + p - 1) % p;
    // Two tag streams, interleaved sends: 5 messages per tag.
    for i in 0..5u8 {
        c.send_from(peer, 10, &[i, me as u8]);
        c.send_from(peer, 20, &[i + 100, me as u8]);
    }
    // Drain the *later-sent* tag stream first: earlier-tag messages
    // must park, in order.
    let mut buf = [0u8; 2];
    for i in 0..5u8 {
        c.recv_into(from, 20, &mut buf);
        assert_eq!(buf, [i + 100, from as u8], "tag-20 stream is FIFO");
    }
    for i in 0..5u8 {
        c.recv_into(from, 10, &mut buf);
        assert_eq!(buf, [i, from as u8], "parked tag-10 stream stays FIFO");
    }
}

/// Unexpected messages park across a barrier and try_recv finds them
/// without blocking.
fn check_unexpected_message_parking<C: Comm>(c: &C) {
    let p = c.size();
    if p == 1 {
        return;
    }
    let me = c.rank();
    let peer = (me + 1) % p;
    let from = (me + p - 1) % p;
    c.send_from(peer, 77, &[42]);
    // The barrier guarantees the message has been sent; it sits parked
    // (or queued) until the matching receive.
    c.barrier();
    let mut wrong = [0u8; 1];
    assert!(!c.try_recv_into(from, 78, &mut wrong), "no message with tag 78 exists");
    let mut buf = [0u8; 1];
    assert!(c.try_recv_into(from, 77, &mut buf), "parked message must be pollable");
    assert_eq!(buf, [42]);
}

/// `wait_any` drains whichever posted receive lands first and returns
/// the completed post with its filled buffer.
fn check_wait_any_any_order<C: Comm>(c: &C) {
    let p = c.size();
    let me = c.rank();
    if p == 1 {
        let mut posts: [Option<RecvPost>; 2] = [None, None];
        assert!(c.wait_any(&mut posts).is_none(), "no live posts -> None");
        return;
    }
    // Every rank sends one message to every other rank, then posts one
    // receive per peer and drains with wait_any until exhaustion.
    for to in 0..p {
        if to != me {
            c.send_from(to, 5, &[me as u8]);
        }
    }
    let mut bufs = vec![[0u8; 1]; p];
    let mut posts: Vec<Option<RecvPost>> = bufs
        .iter_mut()
        .enumerate()
        .filter(|(from, _)| *from != me)
        .map(|(from, buf)| Some(RecvPost::new(from, 5, &mut buf[..])))
        .collect();
    let mut seen = vec![false; p];
    while let Some((slot, post)) = c.wait_any(&mut posts) {
        assert!(slot < p - 1);
        let from = post.from;
        assert_eq!(post.buf[0] as usize, from, "payload identifies its sender");
        assert!(!seen[from], "each post completes exactly once");
        seen[from] = true;
    }
    let completed = seen.iter().filter(|&&s| s).count();
    assert_eq!(completed, p - 1, "every peer's message must complete");
}

/// Collectives agree across ranks.
fn check_collectives<C: Comm>(c: &C) {
    let p = c.size();
    let sum = c.allreduce_scalar(c.rank() as f64 + 1.0, ReduceOp::Sum);
    assert_eq!(sum, (p * (p + 1) / 2) as f64);
    let mut v = vec![c.rank() as f64, 1.0];
    c.allreduce(&mut v, ReduceOp::Max);
    assert_eq!(v, vec![(p - 1) as f64, 1.0]);
    c.barrier();
}

fn conformance<C: Comm>(c: &C) {
    check_fifo_and_tag_matching(c);
    check_unexpected_message_parking(c);
    check_wait_any_any_order(c);
    check_collectives(c);
}

#[test]
fn self_comm_conforms() {
    conformance(&SelfComm);
}

#[test]
fn selected_backend_conforms_at_each_world_size() {
    for p in world_sizes() {
        run_spmd(p, |c| conformance(&c));
    }
}

#[test]
fn selected_backend_conformance_is_repeatable() {
    // The any-order completion path must not corrupt mailbox state
    // across repeated rounds in one world.
    let p = hpgmxp_comm::socket_world_size().unwrap_or(4);
    run_spmd(p, |c| {
        for _ in 0..10 {
            conformance(&c);
        }
    });
}
