//! Degenerate and anisotropic configurations: pencil/slab processor
//! grids, non-cubic local boxes, and minimum-size multigrid — the
//! shapes real application runs produce when rank counts don't factor
//! nicely.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::gmres::{gmres_solve_f64, GmresOptions};
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};

fn spec(local: (u32, u32, u32), procs: ProcGrid, levels: usize) -> ProblemSpec {
    ProblemSpec { local, procs, stencil: Stencil27::symmetric(), mg_levels: levels, seed: 77 }
}

#[test]
fn pencil_decomposition_1x1x8() {
    // A prime-ish rank count gives pencils; every rank has at most 2
    // neighbors and the halo is a single face each way.
    let procs = ProcGrid::new(1, 1, 8);
    let results = run_spmd(8, move |c| {
        let prob = assemble(&spec((4, 4, 4), procs, 1), c.rank());
        let l = &prob.levels[0];
        let nbrs = l.halo.plan().neighbors.len();
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 600, ..Default::default() };
        let (x, st) = gmres_solve_f64(&c, &prob, &opts, &tl);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        (nbrs, st.converged, err)
    });
    for (rank, (nbrs, conv, err)) in results.iter().enumerate() {
        let expected = if rank == 0 || rank == 7 { 1 } else { 2 };
        assert_eq!(*nbrs, expected, "rank {} neighbor count", rank);
        assert!(conv);
        assert!(*err < 1e-6);
    }
}

#[test]
fn slab_decomposition_1x4x1() {
    let procs = ProcGrid::new(1, 4, 1);
    let results = run_spmd(4, move |c| {
        let prob = assemble(&spec((4, 4, 4), procs, 2), c.rank());
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 600, ..Default::default() };
        let (_, st) = gmres_ir_solve(&c, &prob, &opts, &tl);
        st.converged
    });
    assert!(results.into_iter().all(|c| c));
}

#[test]
fn anisotropic_local_boxes() {
    // Non-cubic boxes exercise every index-arithmetic path that cubic
    // tests can't tell apart (nx, ny, nz all different).
    for local in [(8u32, 4u32, 2u32), (2, 8, 4), (4, 2, 8)] {
        let prob = assemble(&spec(local, ProcGrid::new(1, 1, 1), 2), 0);
        assert_eq!(prob.n_local(), (local.0 * local.1 * local.2) as usize);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 400, tol: 1e-8, ..Default::default() };
        let (x, st) = gmres_solve_f64(&hpgmxp_comm::SelfComm, &prob, &opts, &tl);
        assert!(st.converged, "{:?} failed", local);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-5);
        }
    }
}

#[test]
fn anisotropic_distributed_boxes() {
    let procs = ProcGrid::new(2, 1, 2);
    let results = run_spmd(4, move |c| {
        let prob = assemble(&spec((4, 8, 2), procs, 1), c.rank());
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 600, ..Default::default() };
        let (x, st) = gmres_solve_f64(&c, &prob, &opts, &tl);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        (st.converged, err)
    });
    for (conv, err) in results {
        assert!(conv);
        assert!(err < 1e-6);
    }
}

#[test]
fn minimum_multigrid_box() {
    // The smallest legal 4-level box: 8^3 (coarsest level is a single
    // point per rank).
    let prob = assemble(&spec((8, 8, 8), ProcGrid::new(1, 1, 1), 4), 0);
    assert_eq!(prob.levels[3].n_local(), 1);
    let tl = Timeline::disabled();
    let (_, st) = gmres_solve_f64(&hpgmxp_comm::SelfComm, &prob, &GmresOptions::default(), &tl);
    assert!(st.converged);
}

#[test]
fn two_point_domain() {
    // Degenerate global domain: 2 points along each axis — every row is
    // a corner row with 8 nonzeros.
    let prob = assemble(&spec((2, 2, 2), ProcGrid::new(1, 1, 1), 1), 0);
    let a = &prob.levels[0].csr64();
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        assert_eq!(cols.len(), 8);
    }
    let tl = Timeline::disabled();
    let (x, st) = gmres_solve_f64(&hpgmxp_comm::SelfComm, &prob, &GmresOptions::default(), &tl);
    assert!(st.converged);
    for xi in &x {
        assert!((xi - 1.0).abs() < 1e-8);
    }
}

#[test]
fn large_rank_count_assembles_consistently() {
    // 3x3x3 ranks: includes the fully-interior middle rank with all 26
    // neighbors — the shape the performance model assumes.
    let procs = ProcGrid::new(3, 3, 3);
    let results = run_spmd(27, move |c| {
        let prob = assemble(&spec((2, 2, 2), procs, 1), c.rank());
        let l = &prob.levels[0];
        (c.rank(), l.halo.plan().neighbors.len(), l.nnz())
    });
    let mid = procs.rank_of(1, 1, 1) as usize;
    let (_, nbrs, nnz) = results[mid];
    assert_eq!(nbrs, 26);
    assert_eq!(nnz, 27 * 8, "interior rank rows all have full stencils");
    // Corner ranks have 7 neighbors.
    assert_eq!(results[0].1, 7);
}
