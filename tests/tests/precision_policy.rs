//! Precision-policy engine tests: split-precision kernel error bounds
//! (property-based, with shrinking) and end-to-end GMRES-IR
//! convergence under every shipped policy.
//!
//! The error-bound properties pin the analytical contract of the split
//! kernels: storing values at fp32 under f64 accumulation perturbs
//! each stored value by at most `eps_f32` *relatively*, so the SpMV
//! result differs from pure f64 by at most
//! `(eps_f32 + O(n·eps_f64)) · Σ|a_ij·x_j|` per row — an
//! `n·eps`-shaped bound in the row length with the *storage*
//! precision's epsilon, not the accumulator's. The solver tests pin
//! the engineering contract: every shipped policy still reaches the
//! benchmark's 1e-9 relative residual, because the outer residual and
//! update remain f64.

use hpgmxp_comm::{run_spmd, Comm, SelfComm, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::{gmres_solve_f64, GmresOptions};
use hpgmxp_core::gmres_ir::gmres_ir_solve_policy;
use hpgmxp_core::motifs::{Motif, MotifStats};
use hpgmxp_core::ops::{dist_gs_sweep, dist_spmv, OpCtx, SweepDir};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_core::problem::{assemble, assemble_with_policy, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_sparse::csr::{CsrBuilder, CsrMatrix};
use hpgmxp_sparse::{EllMatrix, PrecKind};
use proptest::prelude::*;

/// A random banded, weakly diagonally dominant matrix shaped like the
/// benchmark operator (negative off-diagonals, dominant diagonal).
fn arb_band_matrix(max_n: usize, max_band: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (4..max_n, 1..max_band, 0u64..1_000_000).prop_map(|(n, band, seed)| {
        let mut b = CsrBuilder::new(n, n, n * (2 * band + 1));
        for i in 0..n {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            let mut offsum = 0.0;
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                if j != i {
                    // Deterministic pseudo-random magnitudes in (0, 1].
                    let h = (seed ^ ((i * 31 + j) as u64).wrapping_mul(0x9e3779b97f4a7c15))
                        .wrapping_mul(0xbf58476d1ce4e5b9);
                    let v = -(((h >> 11) as f64) / (1u64 << 53) as f64) - 1e-3;
                    offsum += v.abs();
                    entries.push((j as u32, v));
                }
            }
            entries.push((i as u32, offsum + 1.0));
            entries.sort_unstable_by_key(|e| e.0);
            b.push_row(entries);
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // fp32-stored / f64-accumulated SpMV stays within an
    // eps_f32-relative-per-entry bound of the pure-f64 result:
    // |y_split[i] − y64[i]| ≤ (2·eps_f32 + 4·w·eps_f64) · Σ_j |a_ij·x_j|.
    #[test]
    fn split_f32_storage_spmv_error_is_eps_f32_shaped(
        a in arb_band_matrix(64, 6),
        scale in 0.5f64..100.0,
    ) {
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64 * 0.13 - 6.0) * scale).collect();
        let ell64 = EllMatrix::from_csr(&a);
        let a32: CsrMatrix<f32> = a.convert();
        let ell32 = EllMatrix::from_csr(&a32);

        let mut y64 = vec![0.0f64; n];
        let mut y_split = vec![0.0f64; n];
        ell64.spmv(&x, &mut y64);
        ell32.spmv(&x, &mut y_split); // f32 values, f64 vectors/accumulation

        let w = ell64.width() as f64;
        for i in 0..n {
            let row_abs: f64 = (0..ell64.width())
                .map(|k| {
                    let (c, v) = ell64.entry(i, k);
                    (v * x[c as usize]).abs()
                })
                .sum();
            let bound = (2.0 * f32::EPSILON as f64 + 4.0 * w * f64::EPSILON) * row_abs + 1e-300;
            prop_assert!(
                (y64[i] - y_split[i]).abs() <= bound,
                "row {}: |{} - {}| > bound {}",
                i, y64[i], y_split[i], bound
            );
        }

        // CSR and ELL split kernels agree bit-for-bit (same accumulation order).
        let mut y_csr = vec![0.0f64; n];
        a32.spmv(&x, &mut y_csr);
        let mut y_rows = vec![0.0f64; n];
        let rows: Vec<u32> = (0..n as u32).collect();
        ell32.spmv_rows(&rows, &x, &mut y_rows);
        for i in 0..n {
            prop_assert_eq!(y_csr[i].to_bits(), y_split[i].to_bits());
            prop_assert_eq!(y_rows[i].to_bits(), y_split[i].to_bits());
        }
    }

    // The same bound with fp16 storage under f32 accumulation, at
    // fp16's epsilon (2^-10) — the paper's §5 half-precision scenario
    // without a standalone-fp16 accumulator breakdown.
    #[test]
    fn split_f16_storage_spmv_error_is_eps_f16_shaped(a in arb_band_matrix(48, 4)) {
        let n = a.nrows();
        let x: Vec<f32> = (0..n).map(|i| (i * 29 % 83) as f32 * 0.07 - 2.0).collect();
        let a16: CsrMatrix<hpgmxp_sparse::Half> = a.convert();
        let ell16 = EllMatrix::from_csr(&a16);
        let x64: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let ell64 = EllMatrix::from_csr(&a);

        let mut y64 = vec![0.0f64; n];
        ell64.spmv(&x64, &mut y64);
        let mut y_split = vec![0.0f32; n];
        ell16.spmv(&x, &mut y_split); // fp16 values, f32 accumulation

        let eps16 = f64::powi(2.0, -10);
        let w = ell64.width() as f64;
        for i in 0..n {
            let row_abs: f64 = (0..ell64.width())
                .map(|k| {
                    let (c, v) = ell64.entry(i, k);
                    (v * x64[c as usize]).abs()
                })
                .sum();
            let bound = (2.0 * eps16 + 8.0 * w * f32::EPSILON as f64) * row_abs + 1e-30;
            prop_assert!(
                (y64[i] - y_split[i] as f64).abs() <= bound,
                "row {}: |{} - {}| > bound {}",
                i, y64[i], y_split[i], bound
            );
        }
    }
}

fn spec(procs: ProcGrid, n: u32, levels: usize) -> ProblemSpec {
    ProblemSpec {
        local: (n, n, n),
        procs,
        stencil: Stencil27::symmetric(),
        mg_levels: levels,
        seed: 23,
    }
}

/// Every shipped policy converges to the benchmark tolerance, and its
/// nd/nir penalty ratio is reported (printed for the log, ordered for
/// the assertion: more aggressive storage never *helps* iterations).
#[test]
fn every_shipped_policy_reaches_1e9_with_reported_penalty() {
    let sp = spec(ProcGrid::new(1, 1, 1), 16, 4);
    let tl = Timeline::disabled();
    let opts = GmresOptions { max_iters: 8000, tol: 1e-9, ..Default::default() };

    // The double-precision yardstick n_d.
    let prob_full = assemble(&sp, 0);
    let (_, st_d) = gmres_solve_f64(&SelfComm, &prob_full, &opts, &tl);
    assert!(st_d.converged);
    let nd = st_d.iters;

    for policy in PrecisionPolicy::shipped() {
        let prob = assemble_with_policy(&sp, 0, &policy);
        let (x, st) = gmres_ir_solve_policy(&SelfComm, &prob, &policy, &opts, &tl);
        assert!(
            st.converged && st.final_relres < 1e-9,
            "policy {} stalled at relres {:.3e}",
            policy.name,
            st.final_relres
        );
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-5, "policy {}: x = {}", policy.name, xi);
        }
        let ratio = nd as f64 / st.iters as f64;
        println!(
            "policy {:<10} nd = {:>4}, nir = {:>4}, penalty ratio = {:.3}",
            policy.name, nd, st.iters, ratio
        );
        assert!(
            st.iters >= nd,
            "a lower-precision inner solve cannot need fewer iterations than pure f64: {} vs {}",
            st.iters,
            nd
        );
    }
}

/// The standalone-fp16 stress configuration must report honestly: it
/// either genuinely converges (finite, accurate solution) or flags
/// non-convergence — a NaN inner breakdown is never masked as success
/// (the `dist_norm2` NaN-propagation fix).
#[test]
fn stress_f16_policy_reports_honestly() {
    let tl = Timeline::disabled();
    let stress = PrecisionPolicy::stress_f16();
    for n in [8u32, 16] {
        let sp = spec(ProcGrid::new(1, 1, 1), n, 4.min(n as usize / 4));
        let prob = assemble_with_policy(&sp, 0, &stress);
        let opts = GmresOptions { max_iters: 4000, tol: 1e-9, ..Default::default() };
        let (x, st) = gmres_ir_solve_policy(&SelfComm, &prob, &stress, &opts, &tl);
        if st.converged {
            assert!(st.final_relres < 1e-9);
            for xi in &x {
                assert!(xi.is_finite() && (xi - 1.0).abs() < 1e-5, "n={n}: x = {xi}");
            }
        } else {
            // Breakdown (or exhaustion) must be visible, not silent:
            // relres is NaN or above tolerance, never a fake zero.
            assert!(
                st.final_relres.is_nan() || st.final_relres >= 1e-9,
                "n={n}: non-converged solve must not report relres {}",
                st.final_relres
            );
        }
        println!(
            "stress f16 at {n}^3: converged = {}, iters = {}, relres = {:.3e}",
            st.converged, st.iters, st.final_relres
        );
    }
}

/// The storage axis alone (f32-stored matrices, f64 compute) behaves
/// like f64: same iteration count as the pure-f64 solver within one
/// restart, at half the matrix-value traffic.
#[test]
fn f32_storage_under_f64_compute_matches_f64_iterations() {
    let sp = spec(ProcGrid::new(1, 1, 1), 16, 3);
    let tl = Timeline::disabled();
    let opts = GmresOptions { max_iters: 2000, tol: 1e-9, ..Default::default() };

    let prob_full = assemble(&sp, 0);
    let (_, st_d) = gmres_solve_f64(&SelfComm, &prob_full, &opts, &tl);

    let policy = PrecisionPolicy::by_name("f32s-f64c").unwrap();
    let prob = assemble_with_policy(&sp, 0, &policy);
    let (_, st) = gmres_ir_solve_policy(&SelfComm, &prob, &policy, &opts, &tl);
    assert!(st.converged);
    assert!(
        st.iters <= st_d.iters + opts.restart,
        "f32 storage under f64 accumulation must track f64 iterations: {} vs {}",
        st.iters,
        st_d.iters
    );
}

/// Policy-assembled problems materialize exactly the matrix sets the
/// policy needs — the memory-capacity payoff of building each level's
/// matrices once in their policy precision.
#[test]
fn policy_assembly_materializes_only_whats_needed() {
    let sp = spec(ProcGrid::new(1, 1, 1), 8, 2);
    let full = assemble(&sp, 0);
    assert_eq!(
        full.levels[0].store.kinds(),
        vec![PrecKind::F64, PrecKind::F32, PrecKind::F16],
        "kitchen-sink assembly keeps every precision"
    );

    let p32 = assemble_with_policy(&sp, 0, &PrecisionPolicy::by_name("f32").unwrap());
    assert_eq!(p32.levels[0].store.kinds(), vec![PrecKind::F64, PrecKind::F32]);
    assert_eq!(p32.levels[1].store.kinds(), vec![PrecKind::F32]);
    assert!(
        p32.levels[0].store.value_bytes() < full.levels[0].store.value_bytes(),
        "policy assembly must hold strictly fewer value bytes"
    );

    let descent = assemble_with_policy(&sp, 0, &PrecisionPolicy::by_name("descent").unwrap());
    assert_eq!(descent.levels[0].store.kinds(), vec![PrecKind::F64]);
    assert_eq!(descent.levels[1].store.kinds(), vec![PrecKind::F32]);
}

/// Distributed split-storage kernels: a 2-rank fp32-stored/f64-compute
/// SpMV agrees with the all-f64 one within the eps_f32 row bound, and
/// the fp16 wire axis degrades ghosts by at most fp16 rounding.
#[test]
fn distributed_split_and_wire_precision_behave() {
    let procs = ProcGrid::new(2, 1, 1);
    run_spmd(2, move |c| {
        let sp = spec(procs, 8, 1);
        let tl = Timeline::disabled();

        // Baseline: all-f64.
        let prob = assemble(&sp, c.rank());
        let l = &prob.levels[0];
        let n = l.n_local();
        let mk_x =
            |len: usize| -> Vec<f64> { (0..len).map(|i| ((i % 17) as f64) * 0.21 - 1.5).collect() };
        let ctx64 = OpCtx::new(&c, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let mut x64 = mk_x(l.vec_len());
        let mut y64 = vec![0.0f64; n];
        dist_spmv(&ctx64, l, &mut stats, 0, &mut x64, &mut y64);

        // Split storage: fp32 values under f64 compute.
        let policy = PrecisionPolicy::by_name("f32s-f64c").unwrap();
        let prob_s = assemble_with_policy(&sp, c.rank(), &policy);
        let ls = &prob_s.levels[0];
        let ctx_s = OpCtx::with_prec(&c, ImplVariant::Optimized, &tl, policy.ctx());
        let mut xs = mk_x(ls.vec_len());
        let mut ys = vec![0.0f64; n];
        dist_spmv(&ctx_s, ls, &mut stats, 1, &mut xs, &mut ys);
        for i in 0..n {
            let scale = 27.0 * 26.0 * 1.5; // width × max|a| × max|x|
            assert!(
                (y64[i] - ys[i]).abs() <= 4.0 * f32::EPSILON as f64 * scale,
                "rank {} row {}: {} vs {}",
                c.rank(),
                i,
                y64[i],
                ys[i]
            );
        }
        // Measured matrix-value traffic halved, exactly.
        assert_eq!(
            stats.value_bytes(Motif::SpMV),
            (8 + 4) as f64 * l.ell64().stored_entries() as f64
        );

        // Wire axis: fp16 ghosts under f32 compute still smooth fine.
        let w16 = PrecisionPolicy::by_name("f32-w16").unwrap();
        let prob_w = assemble_with_policy(&sp, c.rank(), &w16);
        let lw = &prob_w.levels[0];
        let ctx_w = OpCtx::with_prec(&c, ImplVariant::Optimized, &tl, w16.ctx());
        let mut sw = MotifStats::new();
        let r: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        let mut z = vec![0.1f32; lw.vec_len()];
        dist_gs_sweep(&ctx_w, lw, &mut sw, 2, SweepDir::Forward, &r, &mut z);
        // Wire bytes: one 8x8 face at 2 bytes per value, measured.
        assert_eq!(sw.bytes(Motif::Comm), (64 * 2) as f64);
        // Ghosts hold fp16-rounded copies of the peer's 0.1f32 values.
        let ghost = z[n];
        assert!((ghost - 0.1).abs() < 1e-3, "fp16-rounded ghost, got {ghost}");
        assert_ne!(ghost, 0.1f32, "fp16 wire must actually round (0.1 is inexact in fp16)");
    });
}
