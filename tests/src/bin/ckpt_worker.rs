//! Socket-rank workload for the checkpoint/restart end-to-end test
//! and the chaos CI matrix: a mixed-precision GMRES-IR solve with
//! write-ahead checkpointing, run under `hpgmxp-launch` at P ∈
//! {1, 2, 4} (the world size follows the launcher's
//! `HPGMXP_RANKS`; default 4).
//!
//! Environment contract (beyond the launcher's socket variables):
//!
//! * `HPGMXP_CKPT_DIR` / `HPGMXP_CKPT_INTERVAL` / `HPGMXP_RESTORE` —
//!   the core crate's [`CheckpointSpec::from_env`] knobs;
//! * `HPGMXP_FAULT_PLAN` — a chaos plan, armed **only on the first
//!   attempt** (when `HPGMXP_RESTORE` is unset): the launcher's retry
//!   relaunches with `HPGMXP_RESTORE=1`, so the retry runs clean and
//!   proves the restore path;
//! * `HPGMXP_HISTORY_OUT` — rank 0 writes the solve's full residual
//!   history there as one `f64::to_bits` hex word per line, the
//!   bit-exact artifact the test diffs across runs.
//!
//! With `HPGMXP_CKPT_VERBOSE=1` each rank reports its total exchange
//! count — used once to calibrate the crash index in the test's fault
//! plan.

use hpgmxp_comm::{run_spmd, Comm, FaultPlan, FaultyComm, Timeline};
use hpgmxp_core::checkpoint::CheckpointSpec;
use hpgmxp_core::gmres_ir::gmres_ir_solve_ckpt;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_core::GmresOptions;
use hpgmxp_geometry::{ProcGrid, Stencil27};

fn main() {
    let restoring = std::env::var("HPGMXP_RESTORE").map(|v| v == "1").unwrap_or(false);
    // FaultPlan::from_env disarms itself on a restore attempt (the
    // launcher's retry sets HPGMXP_RESTORE=1) — the same rule the
    // socket transport's frame interposer follows — so the retry runs
    // clean and proves recovery.
    let plan = FaultPlan::from_env();
    let ckpt = CheckpointSpec::from_env();
    let ranks: usize = std::env::var("HPGMXP_RANKS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let procs = match ranks {
        1 => ProcGrid::new(1, 1, 1),
        2 => ProcGrid::new(2, 1, 1),
        4 => ProcGrid::new(2, 2, 1),
        p => panic!("ckpt_worker supports 1, 2, or 4 ranks, not {p}"),
    };
    let spec = ProblemSpec {
        local: (8, 8, 8),
        procs,
        stencil: Stencil27::symmetric(),
        mg_levels: 3,
        seed: 11,
    };

    let codes = run_spmd(ranks, |c| {
        let rank = c.rank();
        // The wrapper scripts rank-level events only; probabilistic
        // wire faults are the socket interposer's job (it flips bytes
        // after the frame CRC, so every corruption is detectable —
        // a pre-framing flip here would slip past the checksum).
        let wrapper_plan =
            plan.clone().map(FaultPlan::without_wire_faults).unwrap_or_else(|| FaultPlan::clean(0));
        let c = FaultyComm::new(c, wrapper_plan).with_process_exit();
        let prob = assemble(&spec, rank);
        // On a restore attempt, peek at the committed checkpoint and
        // leave bit-exact evidence of the generation actually resumed
        // from — the e2e test asserts it is a mid-solve generation, not
        // a cold start. The chaos plan is disarmed on this attempt, so
        // the extra agreement all-reduces cannot shift fault indices.
        if restoring {
            if let Some(cspec) = &ckpt {
                let n = prob.levels[0].n_local();
                let restored = hpgmxp_core::checkpoint::restore(&c, cspec, n)
                    .unwrap_or_else(|e| panic!("rank {rank}: restore peek failed: {e}"));
                if rank == 0 {
                    let gen = restored.map(|s| s.restarts as i64).unwrap_or(-1);
                    println!("restore peek: generation {gen}");
                    std::fs::create_dir_all(&cspec.dir).expect("create checkpoint dir");
                    std::fs::write(
                        cspec.dir.join("restored.marker"),
                        format!("restored_gen={gen}\n"),
                    )
                    .expect("write restore marker");
                }
            }
        }
        let tl = Timeline::disabled();
        // A short restart length forces many outer iterations, so the
        // solve crosses several checkpoint generations and a mid-solve
        // crash always lands between two commits.
        let opts =
            GmresOptions { restart: 4, max_iters: 400, track_history: true, ..Default::default() };
        match gmres_ir_solve_ckpt(&c, &prob, &opts, &tl, ckpt.as_ref()) {
            Ok((_, stats)) => {
                if std::env::var("HPGMXP_CKPT_VERBOSE").is_ok() {
                    println!("rank {rank}: {} exchanges total", c.exchanges());
                }
                if rank == 0 {
                    println!(
                        "converged={} iters={} restarts={} history_len={}",
                        stats.converged,
                        stats.iters,
                        stats.restarts,
                        stats.history.len()
                    );
                    if let Ok(path) = std::env::var("HPGMXP_HISTORY_OUT") {
                        let bits: Vec<String> =
                            stats.history.iter().map(|v| format!("{:016x}", v.to_bits())).collect();
                        std::fs::write(&path, bits.join("\n") + "\n")
                            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                    }
                }
                0
            }
            Err(e) => {
                eprintln!("rank {rank}: solve failed: {e}");
                9
            }
        }
    });
    std::process::exit(codes.into_iter().max().unwrap_or(0));
}
