//! Integration-test crate: cross-crate tests live in `tests/`.
//!
//! Shared helpers for building matched serial/distributed problem pairs.

use hpgmxp_core::problem::{assemble, LocalProblem, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};

/// Assemble rank `rank` of an `procs`-decomposed problem with cubic
/// `n`^3 local boxes and `levels` multigrid levels.
pub fn dist_problem(n: u32, procs: ProcGrid, rank: usize, levels: usize) -> LocalProblem {
    assemble(
        &ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 1234,
        },
        rank,
    )
}

/// The equivalent single-rank problem covering the same global domain
/// as `procs` ranks of `n`^3 boxes.
pub fn serial_equivalent(n: u32, procs: ProcGrid, levels: usize) -> LocalProblem {
    assemble(
        &ProblemSpec {
            local: (n * procs.px, n * procs.py, n * procs.pz),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 1234,
        },
        0,
    )
}
