//! The work-stealing thread pool behind every `par_*` entry point.
//!
//! One [`Registry`] owns N spawn-once worker threads. Each worker has a
//! private deque of jobs: it pushes and pops at the back (LIFO, so the
//! hot end stays cache-warm) while idle workers steal from the front
//! (FIFO, so thieves take the largest unsplit pieces). Jobs created by
//! threads outside the pool go through a shared injector queue and the
//! injecting thread blocks until its job tree completes — so
//! `RAYON_NUM_THREADS=N` means exactly N compute threads, regardless of
//! how many application threads drive parallel operations.
//!
//! The deques are mutex-protected rather than lock-free Chase–Lev
//! deques: every job here is a *chunk* of a kernel (thousands of rows
//! or vector elements), so queue operations are orders of magnitude
//! rarer than in a task-per-item design and the mutex is never the
//! bottleneck. What matters for the memory-wall experiments is that
//! stealing balances uneven chunk costs across cores, and it does.
//!
//! Panics inside jobs are caught, carried back to the thread that owns
//! the corresponding `join`/`scope`/drive, and resumed there.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Type-erased pointer to a job owned by some stack frame (`StackJob`)
/// or heap allocation (`HeapJob`). The owner guarantees the pointee
/// outlives execution.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the job types it
// points at synchronize hand-off through `done`/queue mutexes.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. Must be called exactly once.
    pub(crate) unsafe fn execute(self) {
        (self.execute)(self.data)
    }

    fn points_at(&self, data: *const ()) -> bool {
        std::ptr::eq(self.data, data)
    }
}

/// A job whose closure and result live on the stack of the thread that
/// created it. That thread MUST NOT return before `done()` is true.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

// SAFETY: `func`/`result` are touched by exactly one thread at a time —
// the thief (or inline executor) before `done` flips, the owner after
// observing `done` with Acquire ordering.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef { data: self as *const Self as *const (), execute: Self::execute_in_place }
    }

    pub(crate) fn done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    unsafe fn execute_in_place(ptr: *const ()) {
        let job = &*(ptr as *const Self);
        let f = (*job.func.get()).take().expect("job executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        *job.result.get() = Some(res);
        job.done.store(true, Ordering::Release);
    }

    /// Take the result after `done()` returned true, resuming any panic
    /// the job raised.
    pub(crate) fn into_result(self) -> R {
        debug_assert!(self.done());
        match self.result.into_inner().expect("job finished without storing a result") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by `scope::spawn`; the
/// scope's completion counter keeps the spawner alive until it ran).
pub(crate) struct HeapJob {
    f: Option<Box<dyn FnOnce() + Send>>,
}

impl HeapJob {
    pub(crate) fn new(f: Box<dyn FnOnce() + Send>) -> Box<Self> {
        Box::new(HeapJob { f: Some(f) })
    }

    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef { data: Box::into_raw(self) as *const (), execute: Self::execute_boxed }
    }

    unsafe fn execute_boxed(ptr: *const ()) {
        let mut job = Box::from_raw(ptr as *mut HeapJob);
        // The closure does its own panic containment (scope stores the
        // payload); a stray panic here would abort via unwind-in-drop.
        (job.f.take().expect("heap job executed twice"))();
    }
}

/// One worker's deque. The owner pushes/pops at the back; thieves pop
/// at the front.
struct Shard {
    deque: Mutex<VecDeque<JobRef>>,
}

/// A pool instance: worker threads + injector + sleep machinery.
pub(crate) struct Registry {
    shards: Vec<Shard>,
    injected: Mutex<VecDeque<JobRef>>,
    /// Guards check-then-wait in sleepers; pairs with `cv`.
    sleep: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
    num_threads: usize,
    terminate: AtomicBool,
}

thread_local! {
    /// Set for the lifetime of a worker thread: its registry + index.
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
    /// `ThreadPool::install` override for non-worker threads.
    static INSTALLED: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// The registry (+ worker index) of the current thread, if it is a pool
/// worker.
pub(crate) fn current_worker() -> Option<(Arc<Registry>, usize)> {
    WORKER.with(|w| w.borrow().clone())
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(threads_from_env()))
}

/// Thread count policy: `RAYON_NUM_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
fn threads_from_env() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl Registry {
    /// Build a registry with `num_threads` compute threads. At 1 the
    /// registry spawns no workers and every operation runs inline on
    /// the calling thread (the sequential fallback).
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let n = num_threads.max(1);
        let workers = if n >= 2 { n } else { 0 };
        let registry = Arc::new(Registry {
            shards: (0..workers).map(|_| Shard { deque: Mutex::new(VecDeque::new()) }).collect(),
            injected: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            num_threads: n,
            terminate: AtomicBool::new(false),
        });
        for index in 0..workers {
            let reg = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("hpgmxp-rayon-{index}"))
                .spawn(move || worker_loop(reg, index))
                .expect("failed to spawn pool worker");
        }
        registry
    }

    /// The registry parallel operations on this thread dispatch into:
    /// the thread's own pool if it is a worker, else an installed
    /// override, else the global pool.
    pub(crate) fn current() -> Arc<Registry> {
        if let Some((reg, _)) = current_worker() {
            return reg;
        }
        if let Some(reg) = INSTALLED.with(|c| c.borrow().clone()) {
            return reg;
        }
        Arc::clone(global_registry())
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Ask workers to exit (used by `ThreadPool::drop`). Outstanding
    /// work is impossible by construction: every parallel operation
    /// blocks its caller until completion.
    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        let _g = self.sleep.lock().unwrap();
        self.cv.notify_all();
    }

    /// Wake sleeping waiters after out-of-band completion bookkeeping
    /// (scope task counters).
    pub(crate) fn notify_done(&self) {
        self.notify_all();
    }

    fn notify_all(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Lock-then-notify serializes with a sleeper's
            // check-then-wait, closing the lost-wakeup window.
            let _g = self.sleep.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Enqueue a job from outside the pool.
    fn inject(&self, job: JobRef) {
        self.injected.lock().unwrap().push_back(job);
        self.notify_all();
    }

    /// Enqueue a job on worker `index`'s own deque.
    fn push_local(&self, index: usize, job: JobRef) {
        self.shards[index].deque.lock().unwrap().push_back(job);
        self.notify_all();
    }

    /// Pop our own newest job, steal an injected job, or steal the
    /// oldest job of another worker (round-robin from our right-hand
    /// neighbor, spreading contention).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.shards[index].deque.lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injected.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.shards.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = self.shards[victim].deque.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injected.lock().unwrap().is_empty() {
            return true;
        }
        self.shards.iter().any(|s| !s.deque.lock().unwrap().is_empty())
    }

    /// Run `op` with the pool's full thread count: directly if the
    /// current thread already is a worker of this registry, otherwise
    /// injected as a root job while the caller blocks. Sequential
    /// registries run inline.
    pub(crate) fn in_worker<R, OP>(self: &Arc<Self>, op: OP) -> R
    where
        R: Send,
        OP: FnOnce() -> R + Send,
    {
        if self.num_threads <= 1 {
            return op();
        }
        if let Some((reg, _)) = current_worker() {
            if Arc::ptr_eq(&reg, self) {
                return op();
            }
        }
        let job = StackJob::new(op);
        self.inject(job.as_job_ref());
        self.wait_blocked(|| job.done());
        job.into_result()
    }

    /// Parallel `join` on worker `index` of this registry: offer `b` to
    /// thieves, run `a` ourselves, then run or await `b`.
    pub(crate) fn join_here<A, RA, B, RB>(self: &Arc<Self>, index: usize, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        self.push_local(index, job_b.as_job_ref());

        let result_a = panic::catch_unwind(AssertUnwindSafe(a));

        // LIFO discipline: everything `a` pushed has completed, so the
        // back of our deque is either `b` (retract and run inline) or
        // empty/foreign (b was stolen — execute other work until the
        // thief finishes it).
        let data = &job_b as *const _ as *const ();
        let retracted = {
            let mut q = self.shards[index].deque.lock().unwrap();
            match q.back() {
                Some(job) if job.points_at(data) => {
                    q.pop_back();
                    true
                }
                _ => false,
            }
        };
        if retracted {
            unsafe { job_b.as_job_ref().execute() };
        } else {
            self.wait_stealing(index, || job_b.done());
        }

        match result_a {
            Ok(ra) => (ra, job_b.into_result()),
            Err(payload) => {
                // `a` panicked: b's result (or panic) is already in; drop
                // it and propagate a's panic, like rayon.
                panic::resume_unwind(payload)
            }
        }
    }

    /// Block a non-worker thread until `cond` holds (completion
    /// notifications wake it; a timeout bounds any residual race).
    pub(crate) fn wait_blocked(&self, cond: impl Fn() -> bool) {
        let mut idle = 0u32;
        while !cond() {
            idle += 1;
            if idle < 8 {
                std::thread::yield_now();
                continue;
            }
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let g = self.sleep.lock().unwrap();
                if !cond() {
                    let _ = self.cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
                }
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Busy-wait on worker `index` until `cond` holds, executing any
    /// available work instead of spinning whenever possible.
    pub(crate) fn wait_stealing(self: &Arc<Self>, index: usize, cond: impl Fn() -> bool) {
        let mut idle = 0u32;
        while !cond() {
            if let Some(job) = self.find_work(index) {
                unsafe { job.execute() };
                self.notify_all();
                idle = 0;
                continue;
            }
            idle += 1;
            if idle < 32 {
                std::hint::spin_loop();
            } else if idle < 128 {
                std::thread::yield_now();
            } else {
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                {
                    let g = self.sleep.lock().unwrap();
                    if !cond() && !self.has_work() {
                        let _ = self.cv.wait_timeout(g, Duration::from_micros(500)).unwrap();
                    }
                }
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Push a heap job from any thread (worker-local when possible).
    pub(crate) fn spawn_job(self: &Arc<Self>, job: JobRef) {
        if let Some((reg, index)) = current_worker() {
            if Arc::ptr_eq(&reg, self) {
                self.push_local(index, job);
                return;
            }
        }
        self.inject(job);
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&registry), index)));
    while !registry.terminate.load(Ordering::SeqCst) {
        if let Some(job) = registry.find_work(index) {
            unsafe { job.execute() };
            // A completed job may be what a sleeping waiter needs.
            registry.notify_all();
            continue;
        }
        registry.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let g = registry.sleep.lock().unwrap();
            if !registry.has_work() && !registry.terminate.load(Ordering::SeqCst) {
                let _ = registry.cv.wait_timeout(g, Duration::from_millis(2)).unwrap();
            }
        }
        registry.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    WORKER.with(|w| *w.borrow_mut() = None);
}

/// Install `registry` as the current thread's dispatch target for the
/// duration of `op` (restored on exit, panic-safe).
pub(crate) fn with_installed<R>(registry: &Arc<Registry>, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Registry>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(INSTALLED.with(|c| c.replace(Some(Arc::clone(registry)))));
    op()
}
