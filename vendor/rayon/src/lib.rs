//! Vendored work-stealing data-parallelism runtime, API-compatible with
//! the subset of `rayon` this workspace uses.
//!
//! Until PR 2 this crate was a sequential shim; it is now a real
//! thread pool (see [`registry`]) driving real splittable parallel
//! iterators (see [`iter`]):
//!
//! * **spawn-once workers** — the global pool starts its threads on
//!   first use and keeps them; [`ThreadPool`] instances own their
//!   workers and stop them on drop;
//! * **per-worker deques with stealing** — owners push/pop LIFO at the
//!   back, idle workers steal FIFO from the front, so the biggest
//!   unsplit pieces migrate to idle cores;
//! * **`join`/`scope`** with panic propagation;
//! * **thread count** from `RAYON_NUM_THREADS` (default: available
//!   parallelism), with a true sequential fallback at 1 thread — no
//!   worker threads are spawned and every operation runs inline.
//!
//! Determinism contract relied on by the solver layer: `collect`
//! preserves sequential order regardless of thread count, and every
//! `for_each` over disjoint mutable data is trivially deterministic.
//! Only `sum`/`reduce` have thread-count-dependent float rounding;
//! kernels that feed residual norms avoid them (see
//! `hpgmxp-sparse::blas::dot_par`).

mod iter;
mod registry;

use registry::{current_worker, HeapJob, Registry};
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

pub use iter::{
    Enumerate, Filter, FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, Map,
    ParChunks, ParChunksMut, ParRange, ParSlice, ParSliceMut, ParVec, ParallelIterator,
    ParallelSlice, ParallelSliceMut, Zip,
};

/// Everything kernels import: the iterator traits.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

/// Number of compute threads parallel work on this thread will use.
pub fn current_num_threads() -> usize {
    Registry::current().num_threads()
}

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `b` is offered to thieves while the calling context runs `a`; if
/// nobody stole it, it runs inline (sequential order preserved). A
/// panic in either closure propagates after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // A worker joins on its own registry even if another pool is
    // "installed" — its deque is where children must go.
    if let Some((reg, index)) = current_worker() {
        return reg.join_here(index, a, b);
    }
    let reg = Registry::current();
    if reg.num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    reg.in_worker(move || {
        let (wreg, index) = current_worker().expect("in_worker must run on a pool worker");
        wreg.join_here(index, a, b)
    })
}

/// A scope for spawning borrowing tasks; all spawned tasks complete
/// before `scope` returns. Panics from tasks propagate to the caller.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// Pointer to a scope that may cross threads (validity guaranteed by
/// the completion counter: `scope` does not return while jobs live).
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> Scope<'scope> {
    /// Spawn `f` to run on the pool before the scope ends. `f` may
    /// borrow from outside the scope and may itself spawn.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        if self.registry.num_threads() <= 1 {
            self.run_task(f);
            return;
        }
        let ptr = ScopePtr(self as *const Scope<'scope>);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Capture the whole Send wrapper, not its raw-pointer field
            // (edition-2021 closures capture disjoint fields by default).
            let ptr = ptr;
            // SAFETY: the scope stays alive until `pending` hits zero,
            // and `run_task`'s final decrement is the LAST access to it
            // — the moment it lands, `scope()` may return and free the
            // Scope, so the completion notification must go through a
            // registry handle cloned beforehand, never through `scope`.
            let registry = unsafe { Arc::clone(&(*ptr.0).registry) };
            unsafe { (*ptr.0).run_task(f) };
            registry.notify_done();
        });
        // SAFETY: lifetime erasure to queue the job; `scope` blocks on
        // the counter before any borrowed data can die.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        self.registry.spawn_job(HeapJob::new(task).into_job_ref());
    }

    fn run_task<F: FnOnce(&Scope<'scope>)>(&self, f: F) {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(self))) {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    fn wait(&self) {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let done = || self.pending.load(Ordering::SeqCst) == 0;
        if let Some((reg, index)) = current_worker() {
            if Arc::ptr_eq(&reg, &self.registry) {
                reg.wait_stealing(index, done);
                return;
            }
        }
        self.registry.wait_blocked(done);
    }
}

/// Create a [`Scope`], run `f` in it, and wait for every spawned task.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        registry: Registry::current(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    s.wait();
    if let Some(payload) = s.panic.lock().unwrap().take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// An explicitly sized pool. Parallel operations started while
/// [`ThreadPool::install`] is active dispatch into this pool instead of
/// the global one — how the determinism suite runs the same kernel at
/// 1, 2, and 8 threads inside one process.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Build a pool with exactly `num_threads` compute threads
    /// (1 = sequential, no threads spawned).
    pub fn new(num_threads: usize) -> ThreadPool {
        ThreadPool { registry: Registry::new(num_threads) }
    }

    /// Run `op` on the calling thread with this pool as the dispatch
    /// target for all parallel work `op` starts. Restores the previous
    /// target on exit (including on panic).
    ///
    /// Unlike real rayon the closure itself stays on the calling
    /// thread, and the override does not propagate to threads `op`
    /// spawns.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        registry::with_installed(&self.registry, op)
    }

    /// This pool's compute thread count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
    }
}

/// Builder-style constructor mirroring rayon's API.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request an exact thread count (default: `RAYON_NUM_THREADS` or
    /// available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Infallible in this implementation.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let n = self
            .num_threads
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Ok(ThreadPool::new(n))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    #[test]
    fn chains_match_sequential() {
        let v: Vec<u64> = (0..100u64).collect();
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 9900);
        let picked: Vec<u64> = (0..100u64).into_par_iter().filter(|x| x % 7 == 0).collect();
        assert_eq!(picked.len(), 15);
        let mut w = [0u64; 8];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64);
        assert_eq!(w[7], 7);
        let c: Vec<u64> = v.par_chunks(32).map(|c| c.iter().sum()).collect();
        assert_eq!(c.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn collect_preserves_order_on_a_multithread_pool() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.install(|| (0..10_000usize).into_par_iter().collect());
        assert_eq!(out, (0..10_000).collect::<Vec<_>>());
        let filtered: Vec<usize> =
            pool.install(|| (0..10_000usize).into_par_iter().filter(|x| x % 3 == 0).collect());
        assert_eq!(filtered, (0..10_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn pool_actually_uses_multiple_threads() {
        let pool = ThreadPool::new(4);
        let ids = std::sync::Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Slow items give thieves a window even on a one-core
                // host, where workers only run when the OS preempts.
                std::thread::sleep(std::time::Duration::from_micros(500));
            });
        });
        let n = ids.lock().unwrap().len();
        assert!(n >= 2, "expected work on >= 2 worker threads, saw {n}");
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let pool = ThreadPool::new(8);
        let n = 100_000;
        let counters: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.install(|| {
            counters.par_iter().for_each(|c| {
                c.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let pool = ThreadPool::new(2);
        let (a, b) =
            pool.install(|| join(|| (0..1000u64).sum::<u64>(), || (0..100u64).product::<u64>()));
        assert_eq!(a, 499_500);
        assert_eq!(b, 0);
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || panic!("boom-b")))
        }));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| panic!("boom-a"), || 2))
        }));
        assert!(r.is_err());
        // The pool survives a propagated panic.
        let (x, y) = pool.install(|| join(|| 1, || 2));
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn for_each_propagates_panics() {
        let pool = ThreadPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1000usize).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("item panic");
                    }
                })
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn scope_completes_all_spawns() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..64 {
                    s.spawn(|s2| {
                        hits.fetch_add(1, Ordering::SeqCst);
                        s2.spawn(|_| {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                }
            })
        });
        assert_eq!(hits.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| scope(|s| s.spawn(|_| panic!("scoped panic"))))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.current_num_threads(), 1);
        let tid = std::thread::current().id();
        pool.install(|| {
            (0..100usize).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), tid);
            })
        });
    }

    #[test]
    fn install_is_scoped_and_nested_pools_work() {
        let pool2 = ThreadPool::new(2);
        let pool3 = ThreadPool::new(3);
        pool2.install(|| {
            assert_eq!(current_num_threads(), 2);
            pool3.install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn mutable_chunks_split_disjointly() {
        let pool = ThreadPool::new(4);
        let mut v = vec![0u32; 10_000];
        pool.install(|| {
            v.par_chunks_mut(128).enumerate().for_each(|(b, chunk)| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (b * 128 + i) as u32;
                }
            })
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn zip_of_mut_and_shared_slices() {
        let pool = ThreadPool::new(4);
        let x: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let mut y = vec![1.0f64; 50_000];
        pool.install(|| {
            y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, xi)| *yi += xi);
        });
        assert!(y.iter().enumerate().all(|(i, &v)| v == 1.0 + i as f64));
    }

    #[test]
    fn reduce_and_count() {
        let pool = ThreadPool::new(4);
        let m = pool.install(|| (1..1001u64).into_par_iter().reduce(|| 0, |a, b| a.max(b)));
        assert_eq!(m, 1000);
        let c = pool.install(|| (0..999usize).into_par_iter().filter(|x| x % 2 == 0).count());
        assert_eq!(c, 500);
    }
}
