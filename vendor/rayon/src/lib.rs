//! Shim for `rayon` that executes **sequentially**.
//!
//! Every `par_*` entry point returns the corresponding `std` iterator,
//! so downstream adapter chains (`.zip`, `.enumerate`, `.filter`,
//! `.map`, `.sum`, `.collect`, `.for_each`) type-check and run with
//! identical results — on one thread. Kernels written against this
//! shim keep their data-parallel-safe structure (no cross-iteration
//! dependencies), so swapping in the real rayon later is purely a
//! manifest change.

pub mod prelude {
    /// `par_iter`/`par_chunks` on slices (sequential shim).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` on slices (sequential shim).
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `into_par_iter` on owned collections and ranges (sequential shim).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn shim_chains_match_sequential() {
        let v: Vec<u64> = (0..100u64).collect();
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 9900);
        let picked: Vec<u64> = (0..100u64).into_par_iter().filter(|x| x % 7 == 0).collect();
        assert_eq!(picked.len(), 15);
        let mut w = [0u64; 8];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64);
        assert_eq!(w[7], 7);
        let c: Vec<u64> = v.par_chunks(32).map(|c| c.iter().sum()).collect();
        assert_eq!(c.iter().sum::<u64>(), 4950);
    }
}
