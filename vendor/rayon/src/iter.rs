//! Parallel iterators with real splitting semantics.
//!
//! A [`ParallelIterator`] here is a *splittable producer*: it knows the
//! length of its index domain, can split itself at any interior point
//! ([`ParallelIterator::split_at`]), and can fold a leaf piece
//! sequentially ([`ParallelIterator::fold_with`]). The drivers
//! (`for_each`, `sum`, `reduce`, `collect`, `count`) recursively split
//! the producer into roughly `8 × num_threads` pieces via
//! [`crate::join`], so idle workers steal the large untouched front
//! halves while busy ones chew through their own back halves.
//!
//! Ranges split by index arithmetic; slices split with
//! `split_at`/`split_at_mut`; chunk producers split on chunk
//! boundaries. `collect` concatenates leaf vectors strictly
//! left-to-right, so **element order — and therefore any
//! order-sensitive reduction built on `collect` — is independent of
//! the thread count**. That invariant is what the deterministic
//! blocked dot products in the sparse crate are built on.
//!
//! [`IndexedParallelIterator`] marks producers with exact per-index
//! correspondence (slices, ranges, chunks, and their `zip`/`enumerate`
//! compositions); `filter` drops the marker, exactly as in rayon.

use crate::join;
use crate::registry::Registry;
use std::iter::Sum;
use std::ops::Range;
use std::sync::Arc;

/// A splittable, sequentially-foldable parallel producer.
///
/// The three `#[doc(hidden)]` plumbing methods (`par_len`, `split_at`,
/// `fold_with`) define the producer; everything else is provided.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Length of the index domain (an upper bound on produced items —
    /// exact except downstream of `filter`).
    #[doc(hidden)]
    fn par_len(&self) -> usize;

    /// Split into `[0, mid)` and `[mid, len)` halves of the domain.
    #[doc(hidden)]
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Sequentially fold this (leaf) piece.
    #[doc(hidden)]
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A;

    /// Apply `f` to every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self, &|piece: Self| piece.fold_with((), |(), item| f(item)), &|(), ()| ());
    }

    /// Lazily map every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { inner: self, f: Arc::new(f) }
    }

    /// Lazily keep only items satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { inner: self, p: Arc::new(p) }
    }

    /// Sum all items. The reduction tree depends on the split points,
    /// so floating-point results may vary with thread count; kernels
    /// that need run-to-run determinism use `collect` + a fixed-shape
    /// pairwise sum instead (see `hpgmxp-sparse::blas::dot_par`).
    fn sum<S>(self) -> S
    where
        S: Send + Sum<Self::Item> + Sum<S>,
    {
        let total = drive(
            self,
            &|piece: Self| {
                piece.fold_with(None::<S>, |acc, item| {
                    let v: S = std::iter::once(item).sum();
                    Some(match acc {
                        None => v,
                        Some(a) => [a, v].into_iter().sum(),
                    })
                })
            },
            &|a, b| match (a, b) {
                (Some(a), Some(b)) => Some([a, b].into_iter().sum()),
                (x, None) | (None, x) => x,
            },
        );
        total.unwrap_or_else(|| std::iter::empty::<Self::Item>().sum())
    }

    /// Reduce with an associative operator and an identity constructor.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self, &|piece: Self| piece.fold_with(identity(), &op), &|a, b| op(a, b))
    }

    /// Collect into a container, preserving the sequential order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let parts = drive(
            self,
            &|piece: Self| {
                let mut v = Vec::with_capacity(piece.par_len());
                v = piece.fold_with(v, |mut v, item| {
                    v.push(item);
                    v
                });
                v
            },
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        C::from_par_vec(parts)
    }

    /// Count the produced items.
    fn count(self) -> usize {
        drive(self, &|piece: Self| piece.fold_with(0usize, |n, _| n + 1), &|a, b| a + b)
    }
}

/// Conversion into a container from an order-preserving parallel
/// collection.
pub trait FromParallelIterator<T> {
    /// Build from the in-order item vector.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Producers whose domain indices correspond one-to-one with produced
/// items, enabling `zip` and `enumerate`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The sequential iterator a leaf piece lowers to.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Lower this piece to its sequential iterator.
    #[doc(hidden)]
    fn into_seq(self) -> Self::SeqIter;

    /// Iterate two producers in lockstep (truncating to the shorter).
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, offset: 0 }
    }
}

/// Recursively split `iter` and run the pieces on the pool.
///
/// Entered through `Registry::in_worker`, so a call from outside the
/// pool injects exactly one root job and blocks; all splitting then
/// happens on worker threads. With one thread (or a trivial domain)
/// the whole fold runs inline — the sequential fallback.
fn drive<I, R, L, C>(iter: I, leaf: &L, combine: &C) -> R
where
    I: ParallelIterator,
    R: Send,
    L: Fn(I) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    let registry = Registry::current();
    let len = iter.par_len();
    if registry.num_threads() <= 1 || len <= 1 {
        return leaf(iter);
    }
    let grain = (len / (registry.num_threads() * 8)).max(1);
    registry.in_worker(move || drive_rec(iter, grain, leaf, combine))
}

fn drive_rec<I, R, L, C>(iter: I, grain: usize, leaf: &L, combine: &C) -> R
where
    I: ParallelIterator,
    R: Send,
    L: Fn(I) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    let len = iter.par_len();
    if len <= grain {
        return leaf(iter);
    }
    let (left, right) = iter.split_at(len / 2);
    let (ra, rb) =
        join(|| drive_rec(left, grain, leaf, combine), || drive_rec(right, grain, leaf, combine));
    combine(ra, rb)
}

// ---------------------------------------------------------------------
// Base producers: slices, mutable slices, chunks, ranges, vectors.
// ---------------------------------------------------------------------

/// Parallel shared-slice producer (`[T]::par_iter`).
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (ParSlice { slice: l }, ParSlice { slice: r })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
        self.slice.iter().fold(acc, g)
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParSlice<'a, T> {
    type SeqIter = std::slice::Iter<'a, T>;
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Parallel mutable-slice producer (`[T]::par_iter_mut`), split with
/// `split_at_mut`.
pub struct ParSliceMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParSliceMut<'a, T> {
    type Item = &'a mut T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(mid);
        (ParSliceMut { slice: l }, ParSliceMut { slice: r })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
        self.slice.iter_mut().fold(acc, g)
    }
}

impl<'a, T: Send> IndexedParallelIterator for ParSliceMut<'a, T> {
    type SeqIter = std::slice::IterMut<'a, T>;
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Parallel chunk producer (`[T]::par_chunks`); splits on chunk
/// boundaries so chunk contents match the sequential `chunks` exactly.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid * self.chunk);
        (ParChunks { slice: l, chunk: self.chunk }, ParChunks { slice: r, chunk: self.chunk })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
        self.slice.chunks(self.chunk).fold(acc, g)
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {
    type SeqIter = std::slice::Chunks<'a, T>;
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel mutable chunk producer (`[T]::par_chunks_mut`).
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(mid * self.chunk);
        (ParChunksMut { slice: l, chunk: self.chunk }, ParChunksMut { slice: r, chunk: self.chunk })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
        self.slice.chunks_mut(self.chunk).fold(acc, g)
    }
}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Parallel integer-range producer, split by index arithmetic.
pub struct ParRange<T> {
    range: Range<T>,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.range.end.saturating_sub(self.range.start) as usize
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let m = self.range.start + mid as $t;
                (
                    ParRange { range: self.range.start..m },
                    ParRange { range: m..self.range.end },
                )
            }
            fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
                self.range.fold(acc, g)
            }
        }

        impl IndexedParallelIterator for ParRange<$t> {
            type SeqIter = Range<$t>;
            fn into_seq(self) -> Self::SeqIter {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

impl_par_range!(usize, u8, u16, u32, u64);

/// Parallel owning producer for vectors; splitting moves the tail into
/// a fresh vector.
pub struct ParVec<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, ParVec { vec: tail })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, g: G) -> A {
        self.vec.into_iter().fold(acc, g)
    }
}

impl<T: Send> IndexedParallelIterator for ParVec<T> {
    type SeqIter = std::vec::IntoIter<T>;
    fn into_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { vec: self }
    }
}

// ---------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------

/// Lazily mapped producer (closure shared across splits via `Arc`).
pub struct Map<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (Map { inner: l, f: Arc::clone(&self.f) }, Map { inner: r, f: self.f })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, mut g: G) -> A {
        let f = self.f;
        self.inner.fold_with(acc, move |a, x| g(a, f(x)))
    }
}

/// Lazily filtered producer. Not indexed: the domain length becomes an
/// upper bound on produced items.
pub struct Filter<I, P> {
    inner: I,
    p: Arc<P>,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (Filter { inner: l, p: Arc::clone(&self.p) }, Filter { inner: r, p: self.p })
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, mut g: G) -> A {
        let p = self.p;
        self.inner.fold_with(acc, move |a, x| if p(&x) { g(a, x) } else { a })
    }
}

/// Lockstep pairing of two indexed producers.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn fold_with<A2, G: FnMut(A2, Self::Item) -> A2>(self, acc: A2, g: G) -> A2 {
        self.a.into_seq().zip(self.b.into_seq()).fold(acc, g)
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Index-pairing adapter; the base offset survives splitting so every
/// item sees its global index.
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

impl<I: IndexedParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (
            Enumerate { inner: l, offset: self.offset },
            Enumerate { inner: r, offset: self.offset + mid },
        )
    }
    fn fold_with<A, G: FnMut(A, Self::Item) -> A>(self, acc: A, mut g: G) -> A {
        let (acc, _) = self.inner.fold_with((acc, self.offset), |(a, i), x| (g(a, (i, x)), i + 1));
        acc
    }
}

/// Sequential counterpart of [`Enumerate`] carrying the split offset.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type SeqIter = EnumerateSeq<I::SeqIter>;
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { inner: self.inner.into_seq(), next: self.offset }
    }
}

// ---------------------------------------------------------------------
// Entry-point traits on std types.
// ---------------------------------------------------------------------

/// `par_iter`/`par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParSlice<'_, T>;
    /// Parallel iteration over `chunk_size`-element pieces.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk: chunk_size }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutable iteration.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
    /// Parallel mutable iteration over `chunk_size`-element pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk: chunk_size }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The producer type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel producer.
    fn into_par_iter(self) -> Self::Iter;
}
