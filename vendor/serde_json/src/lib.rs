//! Shim for `serde_json`: compact and pretty writers plus a strict
//! recursive-descent parser, over the serde shim's [`Value`] tree.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        // JSON has no NaN; emit null (reads back as NaN for floats).
        out.push_str("null");
    } else if f.is_infinite() {
        // Overflows every finite f64 on parse, recovering the infinity.
        out.push_str(if f > 0.0 { "1e999" } else { "-1e999" });
    } else {
        // Rust's shortest-roundtrip Display is valid JSON.
        out.push_str(&f.to_string());
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::msg(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::msg(e.to_string()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error::msg(format!("bad integer `{text}`: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<f64>)> = vec![
            ("alpha \"quoted\"".into(), vec![1.0, -2.5, 1e-30]),
            ("beta\nline".into(), vec![]),
        ];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(String, Vec<f64>)> = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parses_standard_json() {
        let (n, x, f): (u64, String, f64) =
            from_str("[ 18446744073709551615 , \"\\u0041ok\" , -2.5e3 ]").unwrap();
        assert_eq!(n, u64::MAX);
        assert_eq!(x, "Aok");
        assert_eq!(f, -2500.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<f64>("{unquoted: 1}").is_err());
    }

    #[test]
    fn nonfinite_floats_stay_parseable() {
        let s = to_string(&f64::INFINITY).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_infinite() && back > 0.0);
        let s = to_string(&f64::NAN).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }
}
