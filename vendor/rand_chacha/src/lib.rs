//! Shim for `rand_chacha`: [`ChaCha8Rng`] drives a genuine 8-round
//! ChaCha keystream. The word stream is deterministic per seed but not
//! bit-identical to the upstream crate (seed expansion differs);
//! nothing in the workspace depends on the exact stream.

use rand::{RngCore, SeedableRng};

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    next_word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal passes.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.next_word = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.next_word >= 16 {
            self.refill();
        }
        let w = self.buffer[self.next_word];
        self.next_word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the word into a 256-bit key with splitmix64 (the same
        // scheme rand_core uses for seed_from_u64).
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        ChaCha8Rng { state, buffer: [0; 16], next_word: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..40).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..40).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Crude uniformity sanity: both halves of the word space hit.
        assert!(xs.iter().any(|&x| x > u64::MAX / 2));
        assert!(xs.iter().any(|&x| x < u64::MAX / 2));
    }
}
