//! Shim for `crossbeam`: the `channel` module's unbounded MPSC
//! channel, backed by `std::sync::mpsc`.
//!
//! The workspace uses one receiver per rank (never cloned), so std's
//! single-consumer channel provides the same FIFO-per-sender ordering
//! guarantees crossbeam's MPMC channel would.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; errors only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    ///
    /// crossbeam's receiver is `Sync` (MPMC); std's is not, so the
    /// shim serializes access through a mutex. The workspace never
    /// receives from two threads concurrently, so the lock is
    /// uncontended.
    pub struct Receiver<T>(std::sync::Mutex<std::sync::mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = std::sync::mpsc::channel();
        (Sender(s), Receiver(std::sync::Mutex::new(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_per_sender() {
        let (s, r) = unbounded();
        let s2 = s.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                s2.send(i).unwrap();
            }
        })
        .join()
        .unwrap();
        for i in 0..100 {
            assert_eq!(r.recv().unwrap(), i);
        }
        assert!(matches!(r.try_recv(), Err(TryRecvError::Empty)));
    }
}
