//! Shim for `proptest`: `Strategy` with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `collection::vec`, `Just`, the
//! `proptest!` macro, and `prop_assert*`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (no persisted failure corpus), and
//! failing inputs are reported but **not shrunk**. Each failure
//! message includes the case number so a run is reproducible by
//! construction.

use std::ops::Range;

/// Deterministic split-mix generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator (tests derive this from name + case index).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed property (carried by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr);
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    // Stable per-test seed: test name hash + case index.
                    let mut seed = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64) << 17);
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let outcome = (|| -> Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e.0
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let strat = (1usize..5)
            .prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)))
            .prop_map(|(n, v)| (n, v));
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_up(x in 0u64..100, v in collection::vec(-1.0f64..1.0, 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
