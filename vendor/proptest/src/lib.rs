//! Shim for `proptest`: `Strategy` with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `collection::vec`, `Just`, the
//! `proptest!` macro, and `prop_assert*`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (no persisted failure corpus). Failing
//! inputs are **shrunk** by a greedy loop over [`Strategy::shrink`]
//! candidates — integer and float ranges bisect toward their lower
//! bound, vectors drop elements and shrink survivors, tuples shrink
//! one component at a time — and the minimal still-failing input is
//! reported. `prop_map`/`prop_flat_map` outputs are not invertible and
//! do not shrink further. Each failure message includes the case
//! number so a run is reproducible by construction.

use std::ops::Range;

/// Deterministic split-mix generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator (tests derive this from name + case index).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing value, "simplest" first.
    /// The harness greedily walks these while the property keeps
    /// failing, so the reported counterexample is locally minimal.
    /// Default: no candidates (unshrinkable strategy).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Bisect toward the range's lower bound: lo, then the
                // midpoint, then the predecessor.
                let v = *value as i128;
                let lo = self.start as i128;
                let mut out = Vec::new();
                if v > lo {
                    out.push(self.start);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid as $t);
                    }
                    if v - 1 != mid && v - 1 != lo {
                        out.push((v - 1) as $t);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Candidates are strictly "simpler" than the value
                // (smaller magnitude when the range straddles zero,
                // closer to the lower bound otherwise), so the greedy
                // walk is monotone and can never cycle.
                let mut out = Vec::new();
                if self.start < 0.0 && 0.0 < self.end {
                    if *value != 0.0 {
                        out.push(0.0);
                        let half = *value / 2.0;
                        if half != 0.0 && half != *value {
                            out.push(half);
                        }
                    }
                } else if *value != self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Forwarding impl so strategy tuples can hold references (the
/// `proptest!` harness borrows the per-arg strategies).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first: halve, then drop the last
            // element — both respecting the minimum length.
            if value.len() > self.size.lo {
                let half = (value.len() / 2).max(self.size.lo);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then element-wise: each position's first candidate.
            for (i, v) in value.iter().enumerate() {
                if let Some(cand) = self.element.shrink(v).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// A failed property (carried by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drive one property: `cases` deterministic generated inputs from
/// `strat`, checked by `check`; on failure, greedily shrink to a
/// locally minimal counterexample and panic with it. This is the
/// engine behind the [`proptest!`] macro (a named function so closure
/// parameter types are pinned by the signature).
pub fn run_cases<S: Strategy>(
    name: &str,
    cases: u32,
    strat: &S,
    check: impl Fn(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: std::fmt::Debug,
{
    for case in 0..cases {
        // Stable per-test seed: test name hash + case index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng::new(seed ^ (case as u64) << 17);
        let vals = strat.generate(&mut rng);
        if let Err(e) = check(&vals) {
            // Greedy shrink: keep the first candidate that still
            // fails; stop when no candidate does (locally minimal).
            let mut best = vals;
            let mut best_err = e;
            let mut steps = 0usize;
            'shrinking: while steps < 10_000 {
                for cand in strat.shrink(&best) {
                    steps += 1;
                    if let Err(e2) = check(&cand) {
                        best = cand;
                        best_err = e2;
                        continue 'shrinking;
                    }
                }
                break;
            }
            panic!(
                "property `{}` failed at case {}/{}: {}\nminimal counterexample (after {} shrink steps): {:?}",
                name, case, cases, best_err.0, steps, best
            );
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr);
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)+
                // All per-arg strategies as one tuple strategy, so a
                // failing input shrinks one component at a time.
                let __strats = ($(&$arg,)+);
                $crate::run_cases(stringify!($name), config.cases, &__strats, |__vals| {
                    let ($($arg,)+) = __vals;
                    $(let $arg = ::std::clone::Clone::clone($arg);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let strat = (1usize..5)
            .prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)))
            .prop_map(|(n, v)| (n, v));
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_up(x in 0u64..100, v in collection::vec(-1.0f64..1.0, 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn integer_shrink_bisects_toward_lower_bound() {
        let strat = 0u64..1000;
        let cands = strat.shrink(&800);
        assert_eq!(cands, vec![0, 400, 799]);
        assert!(strat.shrink(&0).is_empty(), "lower bound is minimal");
        // Walking candidates greedily reaches the boundary of any
        // monotone predicate: here "fails iff >= 37" must shrink to 37.
        let mut v = 900u64;
        while let Some(c) = strat.shrink(&v).into_iter().find(|c| *c >= 37) {
            v = c;
        }
        assert_eq!(v, 37);
    }

    #[test]
    fn vec_shrink_drops_and_simplifies() {
        let strat = collection::vec(0u32..10, 0..16);
        let cands = strat.shrink(&vec![5, 7, 9]);
        // Halving, dropping the tail, then element-wise candidates.
        assert!(cands.contains(&vec![5]));
        assert!(cands.contains(&vec![5, 7]));
        assert!(cands.contains(&vec![0, 7, 9]));
        assert!(strat.shrink(&Vec::new()).is_empty());
    }

    #[test]
    fn failing_property_reports_minimal_counterexample() {
        // A property failing for x >= 25 must shrink exactly to 25.
        let result = std::panic::catch_unwind(|| {
            let strat = (0u64..1000,);
            crate::run_cases("shrink_demo", 64, &strat, |&(x,)| {
                if x >= 25 {
                    Err(crate::TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("(25,)"), "expected minimal counterexample 25, got: {msg}");
    }
}
