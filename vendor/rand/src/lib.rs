//! Shim for `rand`: the trait surface the workspace uses
//! (`Rng::gen`, `SeedableRng::seed_from_u64`).

/// Core 64-bit random source.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling convenience over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw 64-bit draws (the shim's stand-in for
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Draw one uniform value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full RNG state from one word.
    fn seed_from_u64(state: u64) -> Self;
}
