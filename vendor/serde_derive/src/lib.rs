//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim, written against `proc_macro` directly (the build environment
//! has no `syn`/`quote`).
//!
//! Supported input shapes — exactly what the workspace derives:
//!
//! * structs with named fields (any visibility, no generics);
//!   `Option<…>`-typed fields tolerate a missing key on deserialize
//!   (`None`), matching real serde, so hand-authored JSON may omit
//!   optional fields;
//! * enums whose variants all carry no data.
//!
//! Anything else produces a compile error naming the limitation, so a
//! future change that outgrows the shim fails loudly rather than
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Shape {
    /// Struct name + named fields `(identifier, type_is_option)`.
    /// `Option`-typed fields tolerate a missing key on deserialize
    /// (treated as JSON `null` → `None`), matching real serde.
    Struct(String, Vec<(String, bool)>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

/// Skip one `#[...]` attribute if the cursor is on one.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse named struct fields (and whether each type is `Option<…>`)
/// from a brace group.
fn parse_named_fields(body: &TokenTree) -> Vec<(String, bool)> {
    let TokenTree::Group(g) = body else {
        panic!("serde shim derive: expected a braced body");
    };
    assert!(
        g.delimiter() == Delimiter::Brace,
        "serde shim derive: only structs with named fields are supported"
    );
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!("serde shim derive: expected field name, got {:?}", tokens.get(i));
        };
        let field_name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        // The workspace writes `Option<…>` bare (no path prefix), so
        // the head token of the type decides optionality.
        let is_option =
            matches!(tokens.get(i), Some(TokenTree::Ident(t)) if t.to_string() == "Option");
        fields.push((field_name, is_option));
        // Consume the type: everything up to a comma at angle-depth 0.
        // Generic argument lists are bare `<`/`>` puncts, so commas
        // inside them must not terminate the field.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parse the names of unit enum variants from a brace group.
fn parse_unit_variants(body: &TokenTree) -> Vec<String> {
    let TokenTree::Group(g) = body else {
        panic!("serde shim derive: expected a braced enum body");
    };
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!("serde shim derive: expected variant name, got {:?}", tokens.get(i));
        };
        variants.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive: enum variants with data are not supported")
            }
            other => panic!("serde shim derive: unexpected token {other:?} in enum"),
        }
    }
    variants
}

/// Parse a derive input into its supported shape.
fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (on `{name}`)");
        }
    }
    let body = tokens.get(i).unwrap_or_else(|| panic!("serde shim derive: `{name}` has no body"));
    match kind.as_str() {
        "struct" => Shape::Struct(name, parse_named_fields(body)),
        "enum" => Shape::Enum(name, parse_unit_variants(body)),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct(name, fields) => {
            let pairs: String = fields
                .iter()
                .map(|(f, _)| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|(f, is_option)| {
                    let getter = if *is_option { "field_opt" } else { "field" };
                    format!("{f}: ::serde::{getter}(v, \"{f}\")?,")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::msg(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code must parse")
}
