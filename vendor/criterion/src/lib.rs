//! Shim for `criterion`: the `criterion_group!`/`criterion_main!`
//! macros, `Criterion`/`BenchmarkGroup`/`Bencher`, `BenchmarkId`, and
//! `Throughput`, backed by a simple warmup-then-measure timing loop.
//!
//! No statistics, plots, or baseline files — each benchmark prints one
//! line with the mean wall time per iteration (and derived throughput
//! when one was declared). Honors `--quick` (or the `CRITERION_QUICK`
//! env var) by capping measurement at one sample, which is what the CI
//! bench-smoke job uses to keep bench binaries from rotting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark label (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
}

impl Bencher {
    /// Run the routine repeatedly and record its mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each sample to roughly fill measure/samples.
        let budget = self.measure.as_secs_f64() / self.samples.max(1) as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().clamp(1.0, 1e7) as u64;
        let mut total = 0.0;
        let mut iters = 0u64;
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            total += t0.elapsed().as_secs_f64();
            iters += iters_per_sample;
        }
        self.mean_secs = total / iters as f64;
    }
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            samples: 10,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Register a free-standing benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let quick = self.quick;
        run_one(
            "",
            &id.to_string(),
            quick,
            Duration::from_millis(300),
            Duration::from_secs(1),
            10,
            None,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the warmup duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Set the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.quick,
            self.warm_up,
            self.measure,
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

#[allow(clippy::too_many_arguments)]
fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut b = Bencher {
        mean_secs: 0.0,
        warm_up: if quick { Duration::from_millis(10) } else { warm_up },
        measure: if quick { Duration::from_millis(10) } else { measure },
        samples: if quick { 1 } else { samples },
    };
    f(&mut b);
    let per_iter = b.mean_secs;
    let extra = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.3} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / per_iter / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {:>12.3} µs/iter{extra}", per_iter * 1e6);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of `std::hint::black_box` (criterion's own lives here).
pub use std::hint::black_box;
