//! Shim for `criterion`: the `criterion_group!`/`criterion_main!`
//! macros, `Criterion`/`BenchmarkGroup`/`Bencher`, `BenchmarkId`, and
//! `Throughput`, backed by a warmup-then-measure timing loop.
//!
//! Reporting is built for the tracked perf baselines in
//! `BENCH_baseline.json`:
//!
//! * each benchmark takes N timed samples and reports the **median**
//!   per-iteration time (robust against scheduler noise, unlike a
//!   plain mean), plus derived throughput (GiB/s for
//!   [`Throughput::Bytes`], Melem/s for [`Throughput::Elements`]);
//! * when the `CRITERION_JSON` env var names a file, one JSON object
//!   per benchmark is appended to it (label, median seconds, sample
//!   count, thread count, declared per-iteration work, derived
//!   throughput) — the raw material `bench_baseline record/compare`
//!   works from;
//! * `--quick` (or `CRITERION_QUICK`) caps measurement at one sample,
//!   which is what the CI bench-smoke job uses.
//!
//! No plots and no statistics beyond the median; see vendor/README.md
//! for the swap-back-to-real-criterion path.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark label (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Per-iteration seconds of each timed sample, filled in by `iter`.
    sample_secs: Vec<f64>,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
}

impl Bencher {
    /// Run the routine repeatedly, recording one per-iteration time per
    /// sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each sample to roughly fill measure/samples.
        let budget = self.measure.as_secs_f64() / self.samples.max(1) as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().clamp(1.0, 1e7) as u64;
        self.sample_secs.clear();
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.sample_secs.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Median per-iteration seconds across samples (midpoint average
    /// for even counts).
    fn median_secs(&self) -> f64 {
        let mut s = self.sample_secs.clone();
        if s.is_empty() {
            return 0.0;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            0.5 * (s[n / 2 - 1] + s[n / 2])
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            samples: 10,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Register a free-standing benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let quick = self.quick;
        run_one(
            "",
            &id.to_string(),
            quick,
            Duration::from_millis(300),
            Duration::from_secs(1),
            10,
            None,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the warmup duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Set the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.quick,
            self.warm_up,
            self.measure,
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The SIMD dispatch descriptor for baseline records:
/// `"<level>/<features>"`, e.g. `"avx2/avx2+fma+f16c"` or
/// `"scalar/none"`. Mirrors the sparse crate's `HPGMXP_SIMD`
/// resolution policy (this shim cannot depend on it directly); numbers
/// recorded under different descriptors are not comparable.
fn resolved_simd() -> String {
    #[cfg(target_arch = "x86_64")]
    let features = {
        let mut parts = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            parts.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            parts.push("fma");
        }
        if std::arch::is_x86_feature_detected!("f16c") {
            parts.push("f16c");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    };
    #[cfg(not(target_arch = "x86_64"))]
    let features = "none".to_string();
    let env = std::env::var("HPGMXP_SIMD").ok().filter(|v| !v.is_empty());
    let level = match env.as_deref() {
        Some("scalar") => "scalar",
        Some("avx2") => "avx2",
        _ => {
            if features == "avx2+fma+f16c" {
                "avx2"
            } else {
                "scalar"
            }
        }
    };
    format!("{level}/{features}")
}

/// The thread-count the pool will resolve to, mirroring the vendored
/// rayon's policy (this crate cannot depend on it directly).
fn resolved_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

#[allow(clippy::too_many_arguments)]
fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut b = Bencher {
        sample_secs: Vec::new(),
        warm_up: if quick { Duration::from_millis(10) } else { warm_up },
        measure: if quick { Duration::from_millis(10) } else { measure },
        samples: if quick { 1 } else { samples },
    };
    f(&mut b);
    let median = b.median_secs();
    let n_samples = b.sample_secs.len();

    let gib_per_s = match throughput {
        Some(Throughput::Bytes(bytes)) if median > 0.0 => {
            Some(bytes as f64 / median / (1u64 << 30) as f64)
        }
        _ => None,
    };
    let extra = match throughput {
        Some(Throughput::Bytes(_)) => {
            format!("  {:>10.3} GiB/s", gib_per_s.unwrap_or(0.0))
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {:>12.3} µs/iter (median of {n_samples}){extra}", median * 1e6);

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_record(&path, &label, median, n_samples, throughput, gib_per_s);
        }
    }
}

/// Append one machine-readable record for `bench_baseline`. Fields are
/// written by hand (this shim deliberately has no dependencies); the
/// label is group/id text under our control plus user parameter labels,
/// so quotes and backslashes are escaped defensively.
fn append_json_record(
    path: &str,
    label: &str,
    median_secs: f64,
    samples: usize,
    throughput: Option<Throughput>,
    gib_per_s: Option<f64>,
) {
    let esc: String = label.chars().fold(String::new(), |mut s, c| {
        if c == '"' || c == '\\' {
            s.push('\\');
        }
        s.push(c);
        s
    });
    let (bytes, elems) = match throughput {
        Some(Throughput::Bytes(b)) => (b.to_string(), "null".to_string()),
        Some(Throughput::Elements(e)) => ("null".to_string(), e.to_string()),
        None => ("null".to_string(), "null".to_string()),
    };
    let gib = gib_per_s.map_or("null".to_string(), |g| format!("{g:.6}"));
    let line = format!(
        "{{\"bench\":\"{esc}\",\"median_secs\":{median_secs:e},\"samples\":{samples},\
         \"threads\":{},\"host_cores\":{},\"host_simd\":\"{}\",\"bytes_per_iter\":{bytes},\
         \"elems_per_iter\":{elems},\"gib_per_s\":{gib}}}\n",
        resolved_threads(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        resolved_simd()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut fh| fh.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: could not append to CRITERION_JSON={path}: {e}");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of `std::hint::black_box` (criterion's own lives here).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_outliers() {
        let b = Bencher {
            sample_secs: vec![1.0, 1.1, 0.9, 50.0, 1.05],
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            samples: 5,
        };
        assert!((b.median_secs() - 1.05).abs() < 1e-12);
        let even = Bencher { sample_secs: vec![1.0, 3.0], ..b };
        assert!((even.median_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_records_append_and_escape() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let p = path.to_str().unwrap();
        append_json_record(
            p,
            "spmv/csr/fp64",
            1.5e-3,
            10,
            Some(Throughput::Bytes(1024)),
            Some(0.6),
        );
        append_json_record(p, "odd \"label\"", 2.0e-6, 1, None, None);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\":\"spmv/csr/fp64\""));
        assert!(lines[0].contains("\"bytes_per_iter\":1024"));
        assert!(lines[0].contains("\"host_cores\":"), "records carry host metadata");
        assert!(lines[0].contains("\"host_simd\":\""), "records carry the SIMD descriptor");
        assert!(lines[1].contains("\\\"label\\\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
