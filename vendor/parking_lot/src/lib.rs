//! Shim for `parking_lot`: `Mutex`/`RwLock` with parking_lot's
//! non-poisoning, guard-returning API, backed by `std::sync`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex whose `lock()` returns the guard directly (no poison result).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking; `None` if held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        {
            let held = m.try_lock().expect("uncontended try_lock succeeds");
            assert_eq!(held.len(), 3);
            assert!(m.try_lock().is_none(), "second try_lock while held fails");
        }
        assert!(m.try_lock().is_some());
        let r = RwLock::new(5);
        assert_eq!(*r.read(), 5);
        *r.write() = 6;
        assert_eq!(*r.read(), 6);
    }
}
