//! Shim for `serde`: a self-describing value tree plus `Serialize` /
//! `Deserialize` traits and derive macros.
//!
//! Unlike the real serde's visitor architecture, this shim converts
//! every type to and from a [`Value`] tree. That is all the workspace
//! needs: the only serialization format in use is JSON (see the
//! `serde_json` shim), and the only derived shapes are structs with
//! named fields and enums with unit variants.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (stored wide enough for every primitive int in use).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, failing on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON (`serde_json::from_str::<Value>`) and walk it with `get`/`as_*`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Helper used by derived code: extract and deserialize a struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(x) => T::from_value(x),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Helper used by derived code for `Option`-typed fields: a missing
/// key deserializes as `null` (→ `None`), matching real serde, so
/// hand-authored JSON may simply omit optional fields.
pub fn field_opt<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(x) => T::from_value(x),
        None => T::from_value(&Value::Null),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected tuple of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0)];
        assert_eq!(Vec::<(String, f64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn missing_field_errors() {
        let obj = Value::Obj(vec![("x".into(), Value::Int(1))]);
        assert!(field::<i64>(&obj, "x").is_ok());
        assert!(field::<i64>(&obj, "y").is_err());
    }
}
