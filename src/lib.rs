//! Meta-crate for the HPG-MxP reproduction: re-exports every workspace
//! crate under one roof and hosts the runnable examples.
pub use hpgmxp_comm as comm;
pub use hpgmxp_core as core;
pub use hpgmxp_geometry as geometry;
pub use hpgmxp_harness as harness;
pub use hpgmxp_machine as machine;
pub use hpgmxp_sparse as sparse;
