//! Analytic performance models of the machines the paper ran on.
//!
//! The paper's headline results were produced on Frontier (9 408 nodes,
//! 75 264 MI250x GCDs) and a small NVIDIA K80 cluster — hardware this
//! reproduction does not have. Per the substitution methodology in
//! DESIGN.md, this crate models those machines from first principles
//! and *re-derives* every at-scale figure from the actual data
//! structures and operation counts of our implementation:
//!
//! * [`model`] — device models (memory bandwidth, peak FLOP rates,
//!   kernel-launch overhead) with calibrated presets for an MI250x GCD,
//!   a K80 die, and a generic CPU core;
//! * [`network`] — interconnect model (message latency, per-rank
//!   bandwidth, log₂(P) all-reduce cost);
//! * [`kernels`] — per-kernel byte/FLOP volumes for both storage
//!   formats, both precisions, and both implementation variants,
//!   including the reference code's extra passes and host round-trips;
//! * [`workload`] — the per-iteration operation inventory of
//!   GMRES/GMRES-IR (how many sweeps, exchanges, reductions, and GEMV
//!   passes one iteration costs at each multigrid level);
//! * [`simulate`] — the execution-time simulator: per-motif seconds and
//!   GFLOP/s per rank as functions of scale (figures 4, 5, 6, 7);
//! * [`memory`] — device-memory footprints of the stored-double,
//!   stored-mixed, and matrix-free-mixed configurations (the
//!   conclusion's capacity trade-off);
//! * [`roofline`] — arithmetic-intensity/throughput points for the ten
//!   most expensive kernels (figure 8);
//! * [`trace`] — a discrete-event overlap simulator producing
//!   rocprof-style timelines of the smoother's halo exchange
//!   (figure 9).
//!
//! Every byte count comes from the concrete layouts in
//! `hpgmxp-sparse` (ELL padding, CSR row pointers, 4-byte column ids)
//! and every FLOP count from `hpgmxp_core::flops` — the same accounting
//! the measured benchmark uses — so model and measurement are directly
//! comparable.

pub mod kernels;
pub mod memory;
pub mod model;
pub mod network;
pub mod roofline;
pub mod simulate;
pub mod trace;
pub mod workload;

pub use model::MachineModel;
pub use network::{CollModel, NetworkModel};
pub use simulate::{SimConfig, SimResult};
pub use workload::Workload;
