//! Interconnect model: halo messages and all-reduces.
//!
//! HPG-MxP's communication has two shapes (§2): nearest-neighbor halo
//! exchanges whose volume scales as the subdomain surface (bandwidth
//! plus per-message latency for up to 26 neighbors), and the global
//! all-reduces behind every inner product, whose cost grows with
//! log₂(P) — the term the paper blames for the weak-scaling efficiency
//! loss near full system (§4.1: "the scaling efficiency decreases due
//! to the many inner products required by the GMRES algorithm").

use serde::{Deserialize, Serialize};

/// Which collective algorithm the model prices — the modeled twin of
/// the comm crate's `HPGMXP_COLL` engine selector (this crate cannot
/// depend on the comm crate, so the tiny env parse is duplicated here
/// with identical semantics: `star`, `rd`, default `rd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollModel {
    /// Rank 0 serializes P-1 receives, reduces, and sends P-1 copies
    /// back: O(P) latency *and* O(P·bytes) root bandwidth.
    Star,
    /// Recursive doubling / tree: ceil(log2 P) rounds, every rank
    /// carrying the same load.
    RecursiveDoubling,
}

impl CollModel {
    /// Stable lowercase name (matches `HPGMXP_COLL` values).
    pub fn name(self) -> &'static str {
        match self {
            CollModel::Star => "star",
            CollModel::RecursiveDoubling => "rd",
        }
    }

    /// Read `HPGMXP_COLL` once (default: recursive doubling, like the
    /// measured engine). Unknown values are a loud error.
    pub fn from_env() -> CollModel {
        static CACHED: std::sync::OnceLock<CollModel> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| match std::env::var("HPGMXP_COLL") {
            Ok(v) if v == "star" => CollModel::Star,
            Ok(v) if v == "rd" || v.is_empty() => CollModel::RecursiveDoubling,
            Ok(v) => panic!("unknown HPGMXP_COLL={v:?} (expected \"star\" or \"rd\")"),
            Err(_) => CollModel::RecursiveDoubling,
        })
    }
}

/// A cluster interconnect as seen by one rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Name for reports.
    pub name: String,
    /// Point-to-point message latency, seconds.
    pub latency: f64,
    /// Per-rank injection bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Per-hop latency of the all-reduce tree, seconds (includes
    /// software stack and switch traversal).
    pub allreduce_hop: f64,
    /// Synchronization-skew / congestion coefficient, seconds per
    /// √rank. An ideal tree all-reduce costs `O(log P)`, but measured
    /// small-message all-reduces on real systems degrade faster at
    /// scale because every participant must also absorb OS noise and
    /// network congestion; a √P term reproduces the published Frontier
    /// MPI_Allreduce measurements (hundreds of µs to ms at full
    /// system) and the weak-scaling droop of the paper's figure 4.
    pub congestion: f64,
}

impl NetworkModel {
    /// Frontier's Slingshot-11: ~2 µs MPI latency, 4×25 GB/s NICs per
    /// node shared by 8 GCDs (~12.5 GB/s per rank), measured large-scale
    /// all-reduce hop cost ~6 µs (tuned so that a scalar all-reduce at
    /// 75 264 ranks costs ~100 µs, consistent with published Frontier
    /// MPI measurements).
    pub fn frontier_slingshot() -> Self {
        NetworkModel {
            name: "HPE Slingshot-11 (Frontier)".into(),
            latency: 2.0e-6,
            bandwidth: 12.5e9,
            allreduce_hop: 6.0e-6,
            congestion: 7.0e-6,
        }
    }

    /// A commodity FDR InfiniBand cluster of the K80 era.
    pub fn commodity_ib() -> Self {
        NetworkModel {
            name: "FDR InfiniBand (commodity)".into(),
            latency: 3.0e-6,
            bandwidth: 6.0e9,
            allreduce_hop: 8.0e-6,
            congestion: 4.0e-6,
        }
    }

    /// Shared-memory "network" for single-node studies.
    pub fn shared_memory() -> Self {
        NetworkModel {
            name: "shared memory".into(),
            latency: 0.3e-6,
            bandwidth: 50.0e9,
            allreduce_hop: 0.5e-6,
            congestion: 0.0,
        }
    }

    /// Time for one halo exchange: `msgs` messages totalling `bytes`
    /// (both directions are concurrent; the per-rank injection
    /// bandwidth bounds the send side).
    pub fn halo_time(&self, msgs: usize, bytes: f64) -> f64 {
        if msgs == 0 {
            return 0.0;
        }
        msgs as f64 * self.latency + bytes / self.bandwidth
    }

    /// Time for one all-reduce of `bytes` over `ranks` ranks under the
    /// `HPGMXP_COLL`-selected algorithm (see
    /// [`NetworkModel::allreduce_time_with`]).
    pub fn allreduce_time(&self, ranks: usize, bytes: f64) -> f64 {
        self.allreduce_time_with(ranks, bytes, CollModel::from_env())
    }

    /// Time for one all-reduce of `bytes` over `ranks` ranks under an
    /// explicit collective algorithm:
    ///
    /// * recursive doubling — reduce + broadcast over `2·⌈log₂P⌉`
    ///   hops, plus the bandwidth term (negligible for the scalar
    ///   reductions of GMRES but kept for the blocked CGS2
    ///   reductions);
    /// * star — the root serializes `P−1` receives and `P−1` sends
    ///   (`2·(P−1)` hop costs) and moves `(P−1)·bytes` through its own
    ///   NIC each way, so both terms scale linearly in `P`.
    ///
    /// Both shapes share the `√P` congestion term — it models OS noise
    /// and fabric contention every participant absorbs, independent of
    /// the schedule.
    pub fn allreduce_time_with(&self, ranks: usize, bytes: f64, algo: CollModel) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let p = ranks as f64;
        let congestion = self.congestion * p.sqrt();
        match algo {
            CollModel::RecursiveDoubling => {
                let hops = 2.0 * p.log2().ceil();
                hops * self.allreduce_hop + congestion + bytes / self.bandwidth
            }
            CollModel::Star => {
                let hops = 2.0 * (p - 1.0);
                hops * self.allreduce_hop + congestion + (p - 1.0) * bytes / self.bandwidth
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_time_scales_with_messages_and_volume() {
        let n = NetworkModel::frontier_slingshot();
        let t1 = n.halo_time(6, 1e6);
        let t2 = n.halo_time(26, 1e6);
        let t3 = n.halo_time(6, 2e6);
        assert!(t2 > t1);
        assert!(t3 > t1);
        assert_eq!(n.halo_time(0, 0.0), 0.0);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::frontier_slingshot();
        let t8 = n.allreduce_time(8, 8.0);
        let t64 = n.allreduce_time(64, 8.0);
        let t75k = n.allreduce_time(75_264, 8.0);
        assert!(t64 > t8);
        // 34 tree hops (~204 µs) plus √75264 · 7 µs of congestion
        // (~1.9 ms): the millisecond-scale full-system all-reduce the
        // paper blames for its efficiency loss.
        assert!(t75k > 1.0e-3 && t75k < 4.0e-3, "got {}", t75k);
        assert_eq!(n.allreduce_time(1, 8.0), 0.0);
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let n = NetworkModel::shared_memory();
        assert_eq!(n.allreduce_time(1, 1e9), 0.0);
        assert_eq!(n.allreduce_time_with(1, 1e9, CollModel::Star), 0.0);
    }

    #[test]
    fn star_costs_linearly_more_than_recursive_doubling() {
        let n = NetworkModel::frontier_slingshot();
        for p in [4usize, 64, 1024] {
            let star = n.allreduce_time_with(p, 8.0, CollModel::Star);
            let rd = n.allreduce_time_with(p, 8.0, CollModel::RecursiveDoubling);
            assert!(star > rd, "P={p}: star {star} must exceed rd {rd}");
        }
        // The gap is the point: linear vs logarithmic hop counts.
        let star = n.allreduce_time_with(1024, 8.0, CollModel::Star);
        let rd = n.allreduce_time_with(1024, 8.0, CollModel::RecursiveDoubling);
        let hop_ratio = (star - n.congestion * 32.0) / (rd - n.congestion * 32.0);
        assert!(hop_ratio > 20.0, "1023 hops vs 10 rounds, got ratio {hop_ratio}");
        // P=2 is the degenerate case where the schedules coincide.
        let s2 = n.allreduce_time_with(2, 8.0, CollModel::Star);
        let r2 = n.allreduce_time_with(2, 8.0, CollModel::RecursiveDoubling);
        assert_eq!(s2, r2);
    }

    #[test]
    fn coll_model_names_are_stable() {
        assert_eq!(CollModel::Star.name(), "star");
        assert_eq!(CollModel::RecursiveDoubling.name(), "rd");
    }
}
