//! Interconnect model: halo messages and all-reduces.
//!
//! HPG-MxP's communication has two shapes (§2): nearest-neighbor halo
//! exchanges whose volume scales as the subdomain surface (bandwidth
//! plus per-message latency for up to 26 neighbors), and the global
//! all-reduces behind every inner product, whose cost grows with
//! log₂(P) — the term the paper blames for the weak-scaling efficiency
//! loss near full system (§4.1: "the scaling efficiency decreases due
//! to the many inner products required by the GMRES algorithm").

use serde::{Deserialize, Serialize};

/// A cluster interconnect as seen by one rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Name for reports.
    pub name: String,
    /// Point-to-point message latency, seconds.
    pub latency: f64,
    /// Per-rank injection bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Per-hop latency of the all-reduce tree, seconds (includes
    /// software stack and switch traversal).
    pub allreduce_hop: f64,
    /// Synchronization-skew / congestion coefficient, seconds per
    /// √rank. An ideal tree all-reduce costs `O(log P)`, but measured
    /// small-message all-reduces on real systems degrade faster at
    /// scale because every participant must also absorb OS noise and
    /// network congestion; a √P term reproduces the published Frontier
    /// MPI_Allreduce measurements (hundreds of µs to ms at full
    /// system) and the weak-scaling droop of the paper's figure 4.
    pub congestion: f64,
}

impl NetworkModel {
    /// Frontier's Slingshot-11: ~2 µs MPI latency, 4×25 GB/s NICs per
    /// node shared by 8 GCDs (~12.5 GB/s per rank), measured large-scale
    /// all-reduce hop cost ~6 µs (tuned so that a scalar all-reduce at
    /// 75 264 ranks costs ~100 µs, consistent with published Frontier
    /// MPI measurements).
    pub fn frontier_slingshot() -> Self {
        NetworkModel {
            name: "HPE Slingshot-11 (Frontier)".into(),
            latency: 2.0e-6,
            bandwidth: 12.5e9,
            allreduce_hop: 6.0e-6,
            congestion: 7.0e-6,
        }
    }

    /// A commodity FDR InfiniBand cluster of the K80 era.
    pub fn commodity_ib() -> Self {
        NetworkModel {
            name: "FDR InfiniBand (commodity)".into(),
            latency: 3.0e-6,
            bandwidth: 6.0e9,
            allreduce_hop: 8.0e-6,
            congestion: 4.0e-6,
        }
    }

    /// Shared-memory "network" for single-node studies.
    pub fn shared_memory() -> Self {
        NetworkModel {
            name: "shared memory".into(),
            latency: 0.3e-6,
            bandwidth: 50.0e9,
            allreduce_hop: 0.5e-6,
            congestion: 0.0,
        }
    }

    /// Time for one halo exchange: `msgs` messages totalling `bytes`
    /// (both directions are concurrent; the per-rank injection
    /// bandwidth bounds the send side).
    pub fn halo_time(&self, msgs: usize, bytes: f64) -> f64 {
        if msgs == 0 {
            return 0.0;
        }
        msgs as f64 * self.latency + bytes / self.bandwidth
    }

    /// Time for one all-reduce of `bytes` over `ranks` ranks:
    /// a reduce + broadcast tree of `2·log₂(P)` hops, plus the
    /// bandwidth term (negligible for the scalar reductions of GMRES
    /// but kept for the blocked CGS2 reductions).
    pub fn allreduce_time(&self, ranks: usize, bytes: f64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let hops = 2.0 * (ranks as f64).log2().ceil();
        hops * self.allreduce_hop + self.congestion * (ranks as f64).sqrt() + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_time_scales_with_messages_and_volume() {
        let n = NetworkModel::frontier_slingshot();
        let t1 = n.halo_time(6, 1e6);
        let t2 = n.halo_time(26, 1e6);
        let t3 = n.halo_time(6, 2e6);
        assert!(t2 > t1);
        assert!(t3 > t1);
        assert_eq!(n.halo_time(0, 0.0), 0.0);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::frontier_slingshot();
        let t8 = n.allreduce_time(8, 8.0);
        let t64 = n.allreduce_time(64, 8.0);
        let t75k = n.allreduce_time(75_264, 8.0);
        assert!(t64 > t8);
        // 34 tree hops (~204 µs) plus √75264 · 7 µs of congestion
        // (~1.9 ms): the millisecond-scale full-system all-reduce the
        // paper blames for its efficiency loss.
        assert!(t75k > 1.0e-3 && t75k < 4.0e-3, "got {}", t75k);
        assert_eq!(n.allreduce_time(1, 8.0), 0.0);
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let n = NetworkModel::shared_memory();
        assert_eq!(n.allreduce_time(1, 1e9), 0.0);
    }
}
