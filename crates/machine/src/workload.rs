//! The shape of one rank's work: exact row/nonzero/halo counts for the
//! "typical" (middle) rank of a decomposition, on every multigrid
//! level.
//!
//! All counts are closed-form, derived from the same geometry code the
//! real solver uses, so the model never drifts from the implementation:
//! the 27-point row counts factorize per dimension (a row at position
//! `x` has 3 in-domain x-neighbors unless it sits on the global
//! boundary), halo volumes are the subdomain surface areas, and the
//! level-scheduled stage count of a lexicographic sweep is
//! `nx + 2(ny−1) + 4(nz−1)`: the 27-point stencil's diagonal couplings
//! let dependency chains zigzag (a `+x` run can re-enter the next `y`
//! row via the `(−1,+1,0)` offset, costing 2 levels per `y` step and 4
//! per `z` step), so the critical path is much longer than the 7-point
//! stencil's `nx+ny+nz−2` anti-diagonal count. The formula is verified
//! against the real `LevelSchedule` in the integration tests.

use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_geometry::ProcGrid;
use serde::{Deserialize, Serialize};

/// Work shape of one multigrid level on the middle rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelShape {
    /// Local box dimensions.
    pub dims: (u32, u32, u32),
    /// Owned rows.
    pub n: f64,
    /// Stored nonzeros of the local operator.
    pub nnz: f64,
    /// ELL width (padded row length).
    pub ell_width: f64,
    /// Halo neighbor count of the middle rank (0–26).
    pub halo_msgs: usize,
    /// Values sent per halo exchange (sum over neighbors).
    pub halo_values: f64,
    /// Stages of a level-scheduled lexicographic sweep.
    pub sched_stages: usize,
    /// Colors of the multicolor sweep (8 for the 27-point stencil).
    pub colors: usize,
    /// Fraction of rows not adjacent to an inter-rank face.
    pub interior_frac: f64,
    /// Rows of the next coarser level (0 on the coarsest).
    pub n_coarse: f64,
    /// Fine-matrix nonzeros in coarse-collocated rows (fused
    /// restriction work); 0 on the coarsest level.
    pub nnz_coarse_rows: f64,
}

/// Per-dimension sum of in-domain neighbor counts over the local range.
fn dim_sum(n: u32, touches_low: bool, touches_high: bool) -> f64 {
    let mut s = 3.0 * n as f64;
    if touches_low {
        s -= 1.0;
    }
    if touches_high {
        s -= 1.0;
    }
    s
}

impl LevelShape {
    /// Build the shape of the middle rank's level with local box `dims`
    /// on processor grid `procs`.
    pub fn build(dims: (u32, u32, u32), procs: ProcGrid) -> Self {
        let (nx, ny, nz) = dims;
        let n = nx as f64 * ny as f64 * nz as f64;
        let mid = (procs.px / 2, procs.py / 2, procs.pz / 2);
        let mid_rank = procs.rank_of(mid.0, mid.1, mid.2);

        // Global-boundary contact of the middle rank, per dimension.
        let touches = |c: u32, p: u32| (c == 0, c + 1 == p);
        let (xl, xh) = touches(mid.0, procs.px);
        let (yl, yh) = touches(mid.1, procs.py);
        let (zl, zh) = touches(mid.2, procs.pz);
        let nnz = dim_sum(nx, xl, xh) * dim_sum(ny, yl, yh) * dim_sum(nz, zl, zh);

        // Halo messages and volume: probe the 26 directions.
        let mut halo_msgs = 0usize;
        let mut halo_values = 0.0f64;
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    if procs.neighbor(mid_rank, dx, dy, dz).is_some() {
                        halo_msgs += 1;
                        let fx = if dx == 0 { nx as f64 } else { 1.0 };
                        let fy = if dy == 0 { ny as f64 } else { 1.0 };
                        let fz = if dz == 0 { nz as f64 } else { 1.0 };
                        halo_values += fx * fy * fz;
                    }
                }
            }
        }

        // Interior rows: per dimension, positions adjacent to an
        // inter-rank face are boundary.
        let safe = |n: u32, c: u32, p: u32| -> f64 {
            let mut s = n as f64;
            if c > 0 {
                s -= 1.0; // -side neighbor exists
            }
            if c + 1 < p {
                s -= 1.0; // +side neighbor exists
            }
            s.max(0.0)
        };
        let interior =
            safe(nx, mid.0, procs.px) * safe(ny, mid.1, procs.py) * safe(nz, mid.2, procs.pz);

        LevelShape {
            dims,
            n,
            nnz,
            ell_width: 27.0,
            halo_msgs,
            halo_values,
            sched_stages: (nx + 2 * (ny - 1) + 4 * (nz - 1)) as usize,
            colors: 8,
            interior_frac: interior / n,
            n_coarse: 0.0,
            nnz_coarse_rows: 0.0,
        }
    }
}

/// The complete per-rank workload: all levels plus solver parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Multigrid levels, finest first.
    pub levels: Vec<LevelShape>,
    /// GMRES restart length.
    pub restart: usize,
    /// World size.
    pub ranks: usize,
    /// Pre-smoothing sweeps.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps.
    pub post_smooth: usize,
}

impl Workload {
    /// Build the workload for `ranks` ranks of `local`-sized boxes with
    /// `mg_levels` multigrid levels and restart length `restart`.
    pub fn build(local: (u32, u32, u32), mg_levels: usize, restart: usize, ranks: usize) -> Self {
        let procs = ProcGrid::factor(ranks as u32);
        let div = 1u32 << (mg_levels - 1);
        assert!(
            local.0.is_multiple_of(div)
                && local.1.is_multiple_of(div)
                && local.2.is_multiple_of(div),
            "local dims must be divisible by 2^(levels-1)"
        );
        let mut levels = Vec::with_capacity(mg_levels);
        let mut dims = local;
        for l in 0..mg_levels {
            let mut shape = LevelShape::build(dims, procs);
            if l + 1 < mg_levels {
                let nc = (dims.0 / 2) as f64 * (dims.1 / 2) as f64 * (dims.2 / 2) as f64;
                shape.n_coarse = nc;
                // Coarse-collocated rows are a 1/8 sample of the fine
                // rows; their average nonzero count matches the level's.
                shape.nnz_coarse_rows = shape.nnz / shape.n * nc;
            }
            levels.push(shape);
            dims = (dims.0 / 2, dims.1 / 2, dims.2 / 2);
        }
        Workload { levels, restart, ranks, pre_smooth: 1, post_smooth: 1 }
    }

    /// Total owned rows per rank (all levels).
    pub fn total_rows(&self) -> f64 {
        self.levels.iter().map(|l| l.n).sum()
    }

    /// Fine-level shape.
    pub fn fine(&self) -> &LevelShape {
        &self.levels[0]
    }

    /// Modeled matrix bytes (values + 4-byte indices) of one ELL SpMV
    /// or GS pass on `level` under `policy` — the deterministic share
    /// that must reconcile *exactly* with the measured
    /// `MotifStats::bytes` matrix term of the policy's stored operator.
    pub fn policy_matrix_bytes(&self, policy: &PrecisionPolicy, level: usize) -> f64 {
        let s = &self.levels[level];
        crate::kernels::ell_matrix_bytes(s, policy.storage_at(level).bytes())
    }

    /// Modeled matrix-*value* bytes of one pass on `level` under
    /// `policy` (the share the storage axis shrinks; reconciles with
    /// the measured `MotifStats::value_bytes`).
    pub fn policy_value_bytes(&self, policy: &PrecisionPolicy, level: usize) -> f64 {
        let s = &self.levels[level];
        crate::kernels::ell_value_bytes(s, policy.storage_at(level).bytes())
    }

    /// Modeled wire bytes of one halo exchange on `level` under
    /// `policy` (middle-rank surface × wire width; reconciles with the
    /// measured `MotifStats::bytes` under the Comm motif per
    /// exchange).
    pub fn policy_wire_bytes(&self, policy: &PrecisionPolicy, level: usize) -> f64 {
        crate::kernels::halo_wire_bytes(&self.levels[level], policy.wire.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_shape_matches_assembled_matrix() {
        // The closed form must agree exactly with the real assembly.
        let wl = Workload::build((8, 8, 8), 1, 30, 1);
        let shape = wl.fine();
        assert_eq!(shape.n, 512.0);
        // (3*8-2)^3 for a box spanning the whole domain.
        assert_eq!(shape.nnz, 22.0 * 22.0 * 22.0);
        assert_eq!(shape.halo_msgs, 0);
        assert_eq!(shape.halo_values, 0.0);
        assert_eq!(shape.interior_frac, 1.0);
        // 8 + 2*7 + 4*7: the zigzag critical path of the 27-pt DAG.
        assert_eq!(shape.sched_stages, 50);
    }

    #[test]
    fn nnz_closed_form_matches_real_assembly_distributed() {
        use hpgmxp_core::problem::{assemble, ProblemSpec};
        use hpgmxp_geometry::Stencil27;
        // 27 ranks: the middle rank is fully interior.
        let procs = ProcGrid::factor(27);
        let mid = procs.rank_of(procs.px / 2, procs.py / 2, procs.pz / 2);
        let spec = ProblemSpec {
            local: (4, 4, 4),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 1,
        };
        let prob = assemble(&spec, mid as usize);
        let wl = Workload::build((4, 4, 4), 1, 30, 27);
        assert_eq!(wl.fine().nnz, prob.levels[0].nnz() as f64);
        assert_eq!(wl.fine().halo_msgs, 26);
        assert_eq!(wl.fine().halo_values, prob.levels[0].halo.send_volume() as f64);
        let (interior, _) = prob.levels[0].halo.plan().split_rows();
        assert_eq!(wl.fine().interior_frac, interior.len() as f64 / 64.0);
    }

    #[test]
    fn interior_rank_has_27n_nonzeros() {
        // The middle rank of a large decomposition sees no global
        // boundary: every row has the full 27-point stencil.
        let wl = Workload::build((16, 16, 16), 1, 30, 27);
        assert_eq!(wl.fine().nnz, 27.0 * 4096.0);
    }

    #[test]
    fn halo_surface_formula() {
        // Fully interior rank of a 4³ box: 6 faces + 12 edges + 8 corners.
        let wl = Workload::build((4, 4, 4), 1, 30, 27);
        assert_eq!(wl.fine().halo_values, 6.0 * 16.0 + 12.0 * 4.0 + 8.0);
    }

    #[test]
    fn hierarchy_shapes() {
        let wl = Workload::build((32, 32, 32), 4, 30, 8);
        assert_eq!(wl.levels.len(), 4);
        let sizes: Vec<f64> = wl.levels.iter().map(|l| l.n).collect();
        assert_eq!(sizes, vec![32768.0, 4096.0, 512.0, 64.0]);
        // Coarse-row work is an eighth of the level's rows.
        assert_eq!(wl.levels[0].n_coarse, 4096.0);
        assert!(wl.levels[3].n_coarse == 0.0);
        // Communication surface shrinks with the level.
        assert!(wl.levels[1].halo_values < wl.levels[0].halo_values);
    }

    #[test]
    fn policy_traffic_reconciles_with_kernel_formulas() {
        use hpgmxp_core::policy::PrecisionPolicy;
        let wl = Workload::build((16, 16, 16), 2, 30, 2);
        let f64p = PrecisionPolicy::by_name("f64").unwrap();
        let split = PrecisionPolicy::by_name("f32s-f64c").unwrap();
        // fp32 storage halves exactly the value share, per level.
        for l in 0..2 {
            assert_eq!(wl.policy_value_bytes(&f64p, l), 2.0 * wl.policy_value_bytes(&split, l));
            let idx = wl.levels[l].ell_width * wl.levels[l].n * 4.0;
            assert_eq!(wl.policy_matrix_bytes(&split, l), wl.policy_value_bytes(&split, l) + idx);
        }
        // Wire bytes follow the policy's wire kind.
        let w16 = PrecisionPolicy::by_name("f32-w16").unwrap();
        assert_eq!(wl.policy_wire_bytes(&f64p, 0), 4.0 * wl.policy_wire_bytes(&w16, 0));
        // The descent policy keys storage per level.
        let descent = PrecisionPolicy::by_name("descent").unwrap();
        assert_eq!(descent.storage_at(0).bytes(), 8);
        assert_eq!(descent.storage_at(1).bytes(), 4);
    }

    #[test]
    fn paper_operating_point() {
        // 320³ per GCD, 4 levels, as on Frontier.
        let wl = Workload::build((320, 320, 320), 4, 30, 75_264);
        assert_eq!(wl.fine().n, 32_768_000.0);
        assert_eq!(wl.fine().nnz, 27.0 * 32_768_000.0);
        assert_eq!(wl.fine().halo_msgs, 26);
        assert_eq!(wl.fine().sched_stages, 320 + 2 * 319 + 4 * 319);
        // Surface-to-volume: ~1.9% of rows are boundary.
        assert!(wl.fine().interior_frac > 0.97);
    }
}
