//! Device performance models.
//!
//! The benchmark's kernels are memory-bandwidth bound (the paper's
//! figure 8 shows every hot kernel sitting at the HBM ceiling), so the
//! model that matters is a roofline: a kernel's runtime is
//! `max(bytes / achievable_bandwidth, flops / peak_rate)` plus a launch
//! overhead. Launch overhead is what ruins the reference
//! implementation's level-scheduled triangular solves (hundreds of
//! dependent micro-kernels), so it is a first-class model parameter.

use hpgmxp_sparse::PrecKind;
use serde::{Deserialize, Serialize};

/// A single accelerator device (one MI250x GCD, one K80 die, …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable device name.
    pub name: String,
    /// Achievable (STREAM-like) memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Vendor-claimed peak memory bandwidth, bytes/second (the roofline
    /// ceiling the paper plots).
    pub mem_bw_peak: f64,
    /// Peak FP64 vector throughput, FLOP/s.
    pub peak_fp64: f64,
    /// Peak FP32 vector throughput, FLOP/s.
    pub peak_fp32: f64,
    /// Kernel launch/dispatch overhead, seconds.
    pub launch_overhead: f64,
    /// Devices per node (Frontier: 8 GCDs).
    pub devices_per_node: usize,
    /// Host↔device copy bandwidth, bytes/second (PCIe/Infinity
    /// Fabric) — the path the reference code's host-side
    /// mixed-precision ops take (§3.1 item 6).
    pub host_copy_bw: f64,
    /// Effective amplification of input-vector traffic in stencil
    /// gathers (27-point reuse is imperfect in L2; 1.0 = perfect reuse
    /// of each cached element, 27.0 = no reuse at all).
    pub gather_factor: f64,
    /// Rows a dependent kernel stage needs to saturate the memory
    /// system. Level-scheduled triangular solves process one dependency
    /// level at a time; stages smaller than this run at proportionally
    /// lower bandwidth — the dominant cost of the reference
    /// implementation's Gauss–Seidel (§3.1 item 1).
    pub stage_ramp_rows: f64,
}

impl MachineModel {
    /// One Graphics Compute Die of an AMD MI250x as deployed in
    /// Frontier: 64 GB HBM2e at a claimed 1.6 TB/s (§4), ~1.3 TB/s
    /// achievable, 23.9 TF FP64/FP32 vector peak, ~4 µs launch latency.
    pub fn mi250x_gcd() -> Self {
        MachineModel {
            name: "AMD MI250x GCD (Frontier)".into(),
            mem_bw: 1.30e12,
            mem_bw_peak: 1.60e12,
            peak_fp64: 23.9e12,
            peak_fp32: 23.9e12,
            launch_overhead: 4.0e-6,
            devices_per_node: 8,
            host_copy_bw: 36.0e9,
            gather_factor: 1.8,
            stage_ramp_rows: 120_000.0,
        }
    }

    /// One GK210 die of an NVIDIA Tesla K80 (the paper's figure 6
    /// cluster): 12 GB GDDR5 at a claimed 240 GB/s per die, ~160 GB/s
    /// achievable, 1.45 TF FP64 (with boost) / 4.37 TF FP32 peak.
    pub fn k80_die() -> Self {
        MachineModel {
            name: "NVIDIA K80 (GK210 die)".into(),
            mem_bw: 160.0e9,
            mem_bw_peak: 240.0e9,
            peak_fp64: 1.45e12,
            peak_fp32: 4.37e12,
            launch_overhead: 8.0e-6,
            devices_per_node: 4,
            host_copy_bw: 12.0e9,
            gather_factor: 2.2,
            stage_ramp_rows: 30_000.0,
        }
    }

    /// A generic modern CPU socket (useful for relating the model to
    /// the measured numbers this repository produces on a workstation).
    pub fn cpu_socket() -> Self {
        MachineModel {
            name: "generic CPU socket".into(),
            mem_bw: 80.0e9,
            mem_bw_peak: 100.0e9,
            peak_fp64: 1.0e12,
            peak_fp32: 2.0e12,
            launch_overhead: 0.0,
            devices_per_node: 1,
            host_copy_bw: 80.0e9,
            gather_factor: 1.5,
            stage_ramp_rows: 64.0,
        }
    }

    /// Peak FLOP rate for a precision given its byte width.
    pub fn peak_flops(&self, scalar_bytes: usize) -> f64 {
        if scalar_bytes <= 4 {
            self.peak_fp32
        } else {
            self.peak_fp64
        }
    }

    /// Roofline kernel time: bandwidth or compute bound, plus launch.
    pub fn kernel_time(&self, bytes: f64, flops: f64, scalar_bytes: usize) -> f64 {
        (bytes / self.mem_bw).max(flops / self.peak_flops(scalar_bytes)) + self.launch_overhead
    }

    /// [`MachineModel::kernel_time`] keyed by a precision kind (the
    /// policy engine's compute axis); fp16 currently shares the fp32
    /// vector peak — these kernels are bandwidth-bound anyway, so the
    /// byte side dominates.
    pub fn kernel_time_kind(&self, bytes: f64, flops: f64, kind: PrecKind) -> f64 {
        self.kernel_time(bytes, flops, kind.bytes())
    }

    /// Time for `n` dependent micro-kernel launches moving `bytes`
    /// total — the level-scheduled triangular solve pattern.
    pub fn staged_kernel_time(
        &self,
        stages: usize,
        bytes: f64,
        flops: f64,
        scalar_bytes: usize,
    ) -> f64 {
        (bytes / self.mem_bw).max(flops / self.peak_flops(scalar_bytes))
            + stages as f64 * self.launch_overhead
    }

    /// Host↔device transfer time for `bytes`.
    pub fn host_copy_time(&self, bytes: f64) -> f64 {
        bytes / self.host_copy_bw + self.launch_overhead
    }

    /// Achieved-bandwidth fraction of a dependent kernel stage that
    /// covers `rows_per_stage` rows (clamped below at 2% — even a
    /// one-row stage moves a cache line).
    pub fn stage_bandwidth_efficiency(&self, rows_per_stage: f64) -> f64 {
        if self.stage_ramp_rows <= 1.0 {
            1.0
        } else {
            (rows_per_stage / self.stage_ramp_rows).clamp(0.02, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let gcd = MachineModel::mi250x_gcd();
        assert!(gcd.mem_bw < gcd.mem_bw_peak);
        assert_eq!(gcd.devices_per_node, 8);
        // The paper's headline bandwidth: 1.6 TB/s claimed per GCD.
        assert_eq!(gcd.mem_bw_peak, 1.6e12);

        let k80 = MachineModel::k80_die();
        assert!(k80.mem_bw < gcd.mem_bw / 5.0, "K80 is an order slower than a GCD");
        assert!(k80.peak_fp32 > 2.0 * k80.peak_fp64, "K80 FP64:FP32 is 1:3");
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let m = MachineModel::mi250x_gcd();
        // A streaming kernel: 1 GB moved, trivial flops.
        let t = m.kernel_time(1e9, 1e6, 8);
        assert!((t - (1e9 / m.mem_bw + m.launch_overhead)).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_kernel() {
        let m = MachineModel::mi250x_gcd();
        // A GEMM-like kernel: tiny bytes, many flops.
        let t = m.kernel_time(1e3, 1e12, 8);
        assert!(t > 0.04, "10^12 flops at 23.9 TF/s takes ~42 ms");
    }

    #[test]
    fn fp32_peak_selected_by_width() {
        let m = MachineModel::k80_die();
        assert_eq!(m.peak_flops(4), m.peak_fp32);
        assert_eq!(m.peak_flops(8), m.peak_fp64);
    }

    #[test]
    fn kind_keyed_kernel_time_matches_byte_widths() {
        let m = MachineModel::mi250x_gcd();
        assert_eq!(m.kernel_time_kind(1e9, 1e6, PrecKind::F64), m.kernel_time(1e9, 1e6, 8));
        assert_eq!(m.kernel_time_kind(1e9, 1e6, PrecKind::F16), m.kernel_time(1e9, 1e6, 2));
        // fp16 shares the fp32 vector peak.
        assert_eq!(m.peak_flops(PrecKind::F16.bytes()), m.peak_fp32);
    }

    #[test]
    fn staged_kernels_pay_per_stage() {
        let m = MachineModel::mi250x_gcd();
        let single = m.kernel_time(1e6, 1e6, 8);
        let staged = m.staged_kernel_time(958, 1e6, 1e6, 8);
        // 958 anti-diagonal levels of a 320³ box: launches dominate.
        assert!(staged > single * 100.0);
    }

    #[test]
    fn host_copy_is_slow_path() {
        let m = MachineModel::mi250x_gcd();
        assert!(m.host_copy_time(1e9) > 10.0 * (1e9 / m.mem_bw));
    }
}
