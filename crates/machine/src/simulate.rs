//! The execution-time simulator: per-motif modeled seconds per GMRES /
//! GMRES-IR iteration as a function of machine, network, scale,
//! precision mode, and implementation variant.
//!
//! The simulator walks the exact operation inventory of one inner
//! iteration of the solver in `hpgmxp-core` — the V-cycle's sweeps,
//! exchanges, restrictions and prolongations per level, the Arnoldi
//! SpMV, the CGS2 passes and reductions, and the restart-amortized
//! outer work — and prices each against the device roofline
//! ([`crate::model`]) and network ([`crate::network`]) models. Overlap
//! (§3.2.3) is modeled by crediting each halo exchange with the
//! interior-compute window it can hide under; the reference variant
//! exposes its communication in full.

use crate::kernels::{self, KernelCost};
use crate::model::MachineModel;
use crate::network::NetworkModel;
use crate::workload::{LevelShape, Workload};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::{Motif, MotifStats};
use serde::{Deserialize, Serialize};

/// What to simulate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Local box per rank.
    pub local: (u32, u32, u32),
    /// Multigrid levels.
    pub mg_levels: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Implementation variant.
    pub variant: ImplVariant,
    /// Mixed-precision (GMRES-IR) vs pure double GMRES.
    pub mixed: bool,
    /// Scalar width of the inner solve when `mixed` (4 = f32, the
    /// benchmark; 2 = fp16, the paper's §5 future-work projection).
    pub inner_bytes: usize,
    /// Iteration-ratio penalty `min(1, n_d/n_ir)` applied to the final
    /// rating (only meaningful for mixed runs; the paper measured
    /// 0.968 at 1 node).
    pub penalty: f64,
}

impl SimConfig {
    /// The paper's Frontier operating point (Table 1), optimized
    /// implementation, mixed precision, measured 1-node penalty.
    pub fn paper_mxp() -> Self {
        SimConfig {
            local: (320, 320, 320),
            mg_levels: 4,
            restart: 30,
            variant: ImplVariant::Optimized,
            mixed: true,
            inner_bytes: 4,
            penalty: 2305.0 / 2382.0,
        }
    }

    /// The §5 future-work configuration: the inner solve at fp16.
    /// The penalty is the measured fp16/f32 iteration-ratio product
    /// from this repository's real fp16 runs (fp16 needs more
    /// refinement cycles than f32; see the half_precision_future
    /// example).
    pub fn paper_mxp_fp16() -> Self {
        SimConfig { inner_bytes: 2, penalty: 0.85, ..Self::paper_mxp() }
    }

    /// Same operating point, pure double (the "double" phase).
    pub fn paper_double() -> Self {
        SimConfig { mixed: false, penalty: 1.0, ..Self::paper_mxp() }
    }
}

/// Simulation outcome for one scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// World size.
    pub ranks: usize,
    /// Modeled per-iteration seconds and FLOPs per motif (per rank).
    pub per_iter: MotifStats,
    /// Modeled wall time of one inner iteration.
    pub time_per_iter: f64,
    /// Unpenalized GFLOP/s per rank.
    pub gflops_per_rank_raw: f64,
    /// Penalized GFLOP/s per rank (the benchmark's reported metric).
    pub gflops_per_rank: f64,
    /// Penalized machine total, PFLOP/s.
    pub total_pflops: f64,
}

/// Seconds a kernel needs, including per-color / per-stage launches.
fn kernel_secs(m: &MachineModel, stages: usize, kc: KernelCost, sb: usize) -> f64 {
    m.staged_kernel_time(stages.max(1), kc.bytes, kc.flops, sb)
}

/// Cost of one halo exchange's data handling (pack + unpack kernels).
fn pack_unpack_secs(m: &MachineModel, s: &LevelShape, sb: usize) -> f64 {
    if s.halo_msgs == 0 {
        return 0.0;
    }
    2.0 * (s.halo_values * sb as f64 * 2.0 / m.mem_bw) + 2.0 * m.launch_overhead
}

/// One Gauss–Seidel sweep: (seconds attributed to GS, flops).
fn gs_sweep(
    cfg: &SimConfig,
    s: &LevelShape,
    sb: usize,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = net.halo_time(s.halo_msgs, s.halo_values * sb as f64) + pack_unpack_secs(m, s, sb);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::gs_multicolor_ell(s, sb, m.gather_factor);
            let compute = kernel_secs(m, s.colors, kc, sb);
            // The first color's interior rows run while messages fly.
            let window = compute * s.interior_frac / s.colors as f64;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            let kc = kernels::gs_reference_csr(s, sb, m.gather_factor);
            // Level-scheduled triangular solve: one dependent stage per
            // dependency level, each too small to saturate the memory
            // system, plus a launch+sync per stage (§3.1 item 1 — the
            // reference code "does not fully utilize the GPU").
            let rows_per_stage = s.n / s.sched_stages as f64;
            let eff = m.stage_bandwidth_efficiency(rows_per_stage);
            let compute = kc.bytes / (m.mem_bw * eff)
                + (s.sched_stages as f64 + 1.0) * 2.0 * m.launch_overhead;
            (compute + comm, kc.flops)
        }
    }
}

/// One fine-operator SpMV: (seconds, flops).
fn spmv(
    cfg: &SimConfig,
    s: &LevelShape,
    sb: usize,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = net.halo_time(s.halo_msgs, s.halo_values * sb as f64) + pack_unpack_secs(m, s, sb);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::spmv_ell(s, sb, m.gather_factor);
            let compute = kernel_secs(m, 2, kc, sb);
            let window = compute * s.interior_frac;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            let kc = kernels::spmv_csr(s, sb, m.gather_factor);
            (kernel_secs(m, 1, kc, sb) + comm, kc.flops)
        }
    }
}

/// Restriction (fused or reference): (seconds, flops).
fn restrict(
    cfg: &SimConfig,
    s: &LevelShape,
    sb: usize,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = net.halo_time(s.halo_msgs, s.halo_values * sb as f64) + pack_unpack_secs(m, s, sb);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::fused_restrict(s, sb, m.gather_factor);
            let compute = kernel_secs(m, 2, kc, sb);
            let window = compute * s.interior_frac;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            let kc = kernels::reference_restrict(s, sb, m.gather_factor);
            (kernel_secs(m, 2, kc, sb) + comm, kc.flops)
        }
    }
}

/// Simulate one configuration at one scale.
pub fn simulate(
    cfg: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    ranks: usize,
) -> SimResult {
    let wl = Workload::build(cfg.local, cfg.mg_levels, cfg.restart, ranks);
    let mut acc = MotifStats::new();
    let n = wl.fine().n;
    let m = cfg.restart as f64;
    let kbar = (m + 1.0) / 2.0;
    let amortized = 1.0 / m; // per-restart work, per iteration
    let sb_in: usize = if cfg.mixed { cfg.inner_bytes } else { 8 };

    // --- Multigrid preconditioner: one apply per iteration plus the
    // restart-time apply of line 47 (amortized).
    let mg_applies = 1.0 + amortized;
    let nlev = wl.levels.len();
    for (l, shape) in wl.levels.iter().enumerate() {
        let coarsest = l + 1 == nlev;
        let sweeps = if coarsest { wl.pre_smooth } else { wl.pre_smooth + wl.post_smooth } as f64;
        let (gs_s, gs_f) = gs_sweep(cfg, shape, sb_in, machine, net);
        acc.record(Motif::GaussSeidel, gs_s * sweeps * mg_applies, gs_f * sweeps * mg_applies);
        if !coarsest {
            let (r_s, r_f) = restrict(cfg, shape, sb_in, machine, net);
            acc.record(Motif::Restriction, r_s * mg_applies, r_f * mg_applies);
            let pk = kernels::prolong(shape, sb_in);
            acc.record(
                Motif::Prolongation,
                kernel_secs(machine, 1, pk, sb_in) * mg_applies,
                pk.flops * mg_applies,
            );
        }
    }

    // --- Arnoldi SpMV (inner precision), once per iteration.
    let (sp_s, sp_f) = spmv(cfg, wl.fine(), sb_in, machine, net);
    acc.record(Motif::SpMV, sp_s, sp_f);
    // Outer residual SpMV (always f64), once per restart.
    let (osp_s, osp_f) = spmv(cfg, wl.fine(), 8, machine, net);
    acc.record(Motif::SpMV, osp_s * amortized, osp_f * amortized);

    // --- CGS2 orthogonalization: GEMV passes plus its reductions
    // (two blocked ones and the norm), attributed to Ortho as in the
    // paper's breakdown.
    let oc = kernels::cgs2_step(n, kbar, sb_in);
    let ortho_compute = kernel_secs(machine, 5, oc, sb_in);
    let ortho_comm = 2.0 * net.allreduce_time(ranks, kbar * 8.0) + net.allreduce_time(ranks, 8.0);
    acc.record(Motif::Ortho, ortho_compute + ortho_comm, oc.flops);
    // Restart-amortized basis combination and small dense solves.
    let bc = kernels::basis_combine(n, m, sb_in);
    acc.record(
        Motif::Ortho,
        kernel_secs(machine, 1, bc, sb_in) * amortized,
        (bc.flops + hpgmxp_core::flops::hessenberg_solve(cfg.restart)) * amortized,
    );

    // --- Outer (restart-amortized) vector work, in f64.
    let wx = kernels::waxpby(n, 8);
    acc.record(Motif::Waxpby, kernel_secs(machine, 1, wx, 8) * amortized, wx.flops * amortized);
    let dt = kernels::dot(n, 8);
    acc.record(
        Motif::Dot,
        (kernel_secs(machine, 1, dt, 8) + net.allreduce_time(ranks, 8.0)) * amortized,
        dt.flops * amortized,
    );
    if cfg.mixed {
        let sn = kernels::scale_narrow(n);
        let ax = kernels::axpy_mixed(n);
        let mut secs = kernel_secs(machine, 1, sn, 4) + kernel_secs(machine, 1, ax, 8);
        if cfg.variant == ImplVariant::Reference {
            // §3.1 item 6: the reference code does mixed vector ops on
            // the host — four vector transits over the host link.
            secs += machine.host_copy_time(4.0 * n * 8.0);
        }
        acc.record(Motif::Waxpby, secs * amortized, (sn.flops + ax.flops) * amortized);
    } else {
        let ax = kernels::waxpby(n, 8);
        acc.record(Motif::Waxpby, kernel_secs(machine, 1, ax, 8) * amortized, ax.flops * amortized);
    }

    let time_per_iter = acc.total_seconds();
    let gflops_raw = acc.total_flops() / time_per_iter / 1e9;
    let penalty = if cfg.mixed { cfg.penalty.min(1.0) } else { 1.0 };
    let gflops = gflops_raw * penalty;
    SimResult {
        ranks,
        per_iter: acc,
        time_per_iter,
        gflops_per_rank_raw: gflops_raw,
        gflops_per_rank: gflops,
        total_pflops: gflops * ranks as f64 / 1e6,
    }
}

/// Weak-scaling sweep (figure 4): the same per-rank problem at a list
/// of scales.
pub fn weak_scaling(
    cfg: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    rank_counts: &[usize],
) -> Vec<SimResult> {
    rank_counts.iter().map(|&p| simulate(cfg, machine, net, p)).collect()
}

/// Per-motif penalized speedups of mixed over double at one scale
/// (figure 5's bars), plus the total.
pub fn motif_speedups(
    base: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    ranks: usize,
) -> Vec<(String, f64)> {
    let mxp = simulate(&SimConfig { mixed: true, ..*base }, machine, net, ranks);
    let dbl = simulate(&SimConfig { mixed: false, penalty: 1.0, ..*base }, machine, net, ranks);
    let penalty = base.penalty.min(1.0);
    let mut out = Vec::new();
    for m in [Motif::GaussSeidel, Motif::SpMV, Motif::Ortho, Motif::Restriction] {
        let gm = mxp.per_iter.flops(m) / mxp.per_iter.seconds(m) * penalty;
        let gd = dbl.per_iter.flops(m) / dbl.per_iter.seconds(m);
        out.push((m.label().to_string(), gm / gd));
    }
    out.push(("Total".to_string(), mxp.gflops_per_rank_raw * penalty / dbl.gflops_per_rank_raw));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> (MachineModel, NetworkModel) {
        (MachineModel::mi250x_gcd(), NetworkModel::frontier_slingshot())
    }

    #[test]
    fn paper_operating_point_magnitude() {
        // §4.1: 17.23 PF penalized over 75 264 GCDs → 229 GF/GCD; at
        // 1 node with 78% full-system efficiency the per-GCD number is
        // ~300 GF. The model must land in that ballpark.
        let (m, n) = frontier();
        let r8 = simulate(&SimConfig::paper_mxp(), &m, &n, 8);
        assert!(
            r8.gflops_per_rank > 150.0 && r8.gflops_per_rank < 450.0,
            "1-node mixed GF/GCD = {}",
            r8.gflops_per_rank
        );
        let d8 = simulate(&SimConfig::paper_double(), &m, &n, 8);
        assert!(
            d8.gflops_per_rank > 100.0 && d8.gflops_per_rank < 300.0,
            "1-node double GF/GCD = {}",
            d8.gflops_per_rank
        );
        assert!(r8.gflops_per_rank > d8.gflops_per_rank);
    }

    #[test]
    fn full_system_total_matches_paper_scale() {
        // The modeled full-system mixed number should be within a
        // factor ~1.5 of the paper's 17.23 PF.
        let (m, n) = frontier();
        let r = simulate(&SimConfig::paper_mxp(), &m, &n, 75_264);
        assert!(
            r.total_pflops > 10.0 && r.total_pflops < 30.0,
            "full-system = {} PF",
            r.total_pflops
        );
    }

    #[test]
    fn weak_scaling_efficiency_band() {
        // Figure 4: ~78% from 1 node to 9408 nodes.
        let (m, n) = frontier();
        let cfg = SimConfig::paper_mxp();
        let results = weak_scaling(&cfg, &m, &n, &[8, 75_264]);
        let eff = results[1].gflops_per_rank / results[0].gflops_per_rank;
        assert!(eff > 0.60 && eff < 0.92, "efficiency = {}", eff);
        // And it is monotone in between.
        let mid = simulate(&cfg, &m, &n, 8192);
        assert!(mid.gflops_per_rank <= results[0].gflops_per_rank);
        assert!(mid.gflops_per_rank >= results[1].gflops_per_rank);
    }

    #[test]
    fn mixed_speedup_in_paper_band() {
        // Figure 5: ~1.6x overall, <2x theoretical.
        let (m, n) = frontier();
        let sp = motif_speedups(&SimConfig::paper_mxp(), &m, &n, 512);
        let total = sp.iter().find(|(l, _)| l == "Total").unwrap().1;
        assert!(total > 1.35 && total < 1.95, "total speedup = {}", total);
        // Ortho enjoys the best speedup (pure value traffic).
        let ortho = sp.iter().find(|(l, _)| l == "Ortho").unwrap().1;
        let gs = sp.iter().find(|(l, _)| l == "GS").unwrap().1;
        assert!(ortho > gs, "ortho {} must beat GS {}", ortho, gs);
        assert!(ortho <= 2.05, "nothing beats the 2x bandwidth bound: {}", ortho);
    }

    #[test]
    fn reference_variant_is_much_slower() {
        // Figure 4: the xsdk (reference) curve sits several times below
        // the optimized one.
        let (m, n) = frontier();
        let opt = simulate(&SimConfig::paper_mxp(), &m, &n, 512);
        let xsdk = simulate(
            &SimConfig { variant: ImplVariant::Reference, ..SimConfig::paper_mxp() },
            &m,
            &n,
            512,
        );
        let ratio = opt.gflops_per_rank / xsdk.gflops_per_rank;
        assert!(ratio > 2.0 && ratio < 15.0, "optimized/reference = {}", ratio);
    }

    #[test]
    fn ortho_share_grows_at_scale() {
        // Figure 7: orthogonalization takes a larger share at 9408
        // nodes because of the all-reduces.
        let (m, n) = frontier();
        let cfg = SimConfig::paper_mxp();
        let small = simulate(&cfg, &m, &n, 8);
        let large = simulate(&cfg, &m, &n, 75_264);
        let share = |r: &SimResult| r.per_iter.seconds(Motif::Ortho) / r.time_per_iter;
        assert!(share(&large) > share(&small), "{} vs {}", share(&large), share(&small));
    }

    #[test]
    fn k80_also_speeds_up() {
        // Figure 6: the same shape on a K80 cluster.
        let m = MachineModel::k80_die();
        let n = NetworkModel::commodity_ib();
        let cfg = SimConfig {
            local: (64, 64, 64),
            mg_levels: 4,
            restart: 30,
            variant: ImplVariant::Optimized,
            mixed: true,
            inner_bytes: 4,
            penalty: 0.97,
        };
        let sp = motif_speedups(&cfg, &m, &n, 8);
        let total = sp.iter().find(|(l, _)| l == "Total").unwrap().1;
        assert!(total > 1.2 && total < 2.0, "K80 total speedup = {}", total);
    }

    #[test]
    fn gs_dominates_time_breakdown() {
        // Figure 7: GS is the largest bar at small scale.
        let (m, n) = frontier();
        let r = simulate(&SimConfig::paper_mxp(), &m, &n, 8);
        let gs = r.per_iter.seconds(Motif::GaussSeidel);
        for motif in [Motif::SpMV, Motif::Restriction, Motif::Prolongation, Motif::Waxpby] {
            assert!(gs > r.per_iter.seconds(motif), "GS must dominate {:?}", motif);
        }
    }

    #[test]
    fn fp16_inner_projects_higher_speedup_than_fp32() {
        // The §5 future-work projection: quarter-width values push the
        // bandwidth-bound motifs further, but the 4-byte index arrays
        // and f64 outer work cap the gain well below 4x.
        let (m, n) = frontier();
        let r32 = simulate(&SimConfig::paper_mxp(), &m, &n, 512);
        let r16 = simulate(&SimConfig::paper_mxp_fp16(), &m, &n, 512);
        let d = simulate(&SimConfig::paper_double(), &m, &n, 512);
        let s32 = r32.gflops_per_rank_raw / d.gflops_per_rank_raw;
        let s16 = r16.gflops_per_rank_raw / d.gflops_per_rank_raw;
        assert!(s16 > s32, "fp16 raw speedup {} must beat fp32 {}", s16, s32);
        assert!(s16 < 3.0, "index traffic and f64 outer work cap fp16 at {}", s16);
    }

    #[test]
    fn double_solver_unaffected_by_penalty_field() {
        let (m, n) = frontier();
        let a = simulate(&SimConfig { penalty: 0.5, ..SimConfig::paper_double() }, &m, &n, 8);
        let b = simulate(&SimConfig::paper_double(), &m, &n, 8);
        assert_eq!(a.gflops_per_rank, b.gflops_per_rank);
    }
}
