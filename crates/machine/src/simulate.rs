//! The execution-time simulator: per-motif modeled seconds per GMRES /
//! GMRES-IR iteration as a function of machine, network, scale,
//! precision mode, and implementation variant.
//!
//! The simulator walks the exact operation inventory of one inner
//! iteration of the solver in `hpgmxp-core` — the V-cycle's sweeps,
//! exchanges, restrictions and prolongations per level, the Arnoldi
//! SpMV, the CGS2 passes and reductions, and the restart-amortized
//! outer work — and prices each against the device roofline
//! ([`crate::model`]) and network ([`crate::network`]) models. Overlap
//! (§3.2.3) is modeled by crediting each halo exchange with the
//! interior-compute window it can hide under; the reference variant
//! exposes its communication in full.
//!
//! **Precision resolution.** Each level's kernels are priced at three
//! independent widths (matrix-value storage, vector/accumulate, halo
//! wire), resolved per level from either the classic
//! `mixed`/`inner_bytes` pair (all three follow the inner width — the
//! pre-policy behavior, bit-compatible) or from a runtime
//! [`PrecisionPolicy`] via [`SimConfig::policy`]: storage per multigrid
//! level through the split kernels ([`kernels::spmv_ell_split`] /
//! [`kernels::gs_multicolor_ell_split`] / [`kernels::
//! fused_restrict_split`]), peak rates keyed by the compute kind
//! ([`MachineModel::kernel_time_kind`]), and halo volume at the wire
//! width (the same byte shares as [`Workload::policy_matrix_bytes`] /
//! [`Workload::policy_wire_bytes`], which the campaign harness
//! reconciles against measurement). A policy run always models
//! GMRES-IR — the outer residual SpMV and outer vector work stay f64,
//! exactly like `gmres_ir_solve_policy`.

use crate::kernels::{self, KernelCost};
use crate::model::MachineModel;
use crate::network::NetworkModel;
use crate::workload::{LevelShape, Workload};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::{Motif, MotifStats};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_sparse::PrecKind;
use serde::{Deserialize, Serialize};

/// What to simulate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Local box per rank.
    pub local: (u32, u32, u32),
    /// Multigrid levels.
    pub mg_levels: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Implementation variant.
    pub variant: ImplVariant,
    /// Mixed-precision (GMRES-IR) vs pure double GMRES.
    pub mixed: bool,
    /// Scalar width of the inner solve when `mixed` (4 = f32, the
    /// benchmark; 2 = fp16, the paper's §5 future-work projection).
    pub inner_bytes: usize,
    /// Iteration-ratio penalty `min(1, n_d/n_ir)` applied to the final
    /// rating (only meaningful for mixed runs; the paper measured
    /// 0.968 at 1 node).
    pub penalty: f64,
    /// Runtime precision policy to model instead of the classic
    /// `mixed`/`inner_bytes` pair. When set it overrides both: the
    /// inner solve is GMRES-IR with per-level storage, compute, and
    /// wire widths taken from the policy's three axes (the modeled
    /// counterpart of `run_policy_phase`).
    pub policy: Option<PrecisionPolicy>,
}

impl SimConfig {
    /// The paper's Frontier operating point (Table 1), optimized
    /// implementation, mixed precision, measured 1-node penalty.
    pub fn paper_mxp() -> Self {
        SimConfig {
            local: (320, 320, 320),
            mg_levels: 4,
            restart: 30,
            variant: ImplVariant::Optimized,
            mixed: true,
            inner_bytes: 4,
            penalty: 2305.0 / 2382.0,
            policy: None,
        }
    }

    /// The §5 future-work configuration: the inner solve at fp16.
    /// The penalty is the measured fp16/f32 iteration-ratio product
    /// from this repository's real fp16 runs (fp16 needs more
    /// refinement cycles than f32; see the half_precision_future
    /// example).
    pub fn paper_mxp_fp16() -> Self {
        SimConfig { inner_bytes: 2, penalty: 0.85, ..Self::paper_mxp() }
    }

    /// Same operating point, pure double (the "double" phase).
    pub fn paper_double() -> Self {
        SimConfig { mixed: false, penalty: 1.0, ..Self::paper_mxp() }
    }

    /// The paper operating point under a runtime precision policy with
    /// an iteration penalty (`min(1, n_d/n_ir)`, typically the measured
    /// ratio a Hybrid campaign cell produced).
    pub fn paper_policy(policy: PrecisionPolicy, penalty: f64) -> Self {
        SimConfig { policy: Some(policy), penalty, ..Self::paper_mxp() }
    }

    /// Is the modeled solver GMRES-IR (inner/outer hand-off work
    /// present)? True for classic mixed runs and for every policy run.
    fn is_ir(&self) -> bool {
        self.policy.is_some() || self.mixed
    }

    /// Resolved precision widths of multigrid level `depth` of the
    /// inner solve.
    fn inner_prec(&self, depth: usize) -> LevelPrec {
        match &self.policy {
            Some(p) => LevelPrec {
                storage_b: p.storage_at(depth).bytes(),
                acc: p.compute,
                wire_b: p.wire.bytes(),
            },
            None => {
                let sb = if self.mixed { self.inner_bytes } else { 8 };
                LevelPrec { storage_b: sb, acc: kind_of_width(sb), wire_b: sb }
            }
        }
    }
}

/// The f64 widths of the GMRES-IR outer loop (residual SpMV, solution
/// update) — policy-independent by construction.
const OUTER: LevelPrec = LevelPrec { storage_b: 8, acc: PrecKind::F64, wire_b: 8 };

/// Per-level precision widths the kernels are priced at.
#[derive(Debug, Clone, Copy)]
struct LevelPrec {
    /// Matrix-value storage width, bytes.
    storage_b: usize,
    /// Vector/accumulate kind (keys the device peak-rate selection).
    acc: PrecKind,
    /// Halo wire width, bytes.
    wire_b: usize,
}

impl LevelPrec {
    fn acc_b(self) -> usize {
        self.acc.bytes()
    }
}

/// Precision kind of a classic scalar width (8 → f64, 4 → f32,
/// otherwise fp16 — the only widths the classic path uses).
fn kind_of_width(bytes: usize) -> PrecKind {
    match bytes {
        8 => PrecKind::F64,
        4 => PrecKind::F32,
        _ => PrecKind::F16,
    }
}

/// Simulation outcome for one scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// World size.
    pub ranks: usize,
    /// Modeled per-iteration seconds and FLOPs per motif (per rank).
    pub per_iter: MotifStats,
    /// Modeled wall time of one inner iteration.
    pub time_per_iter: f64,
    /// Unpenalized GFLOP/s per rank.
    pub gflops_per_rank_raw: f64,
    /// Penalized GFLOP/s per rank (the benchmark's reported metric).
    pub gflops_per_rank: f64,
    /// Penalized machine total, PFLOP/s.
    pub total_pflops: f64,
}

/// Seconds a kernel needs, including per-color / per-stage launches.
/// Peak rates are keyed by the accumulate kind
/// ([`MachineModel::kernel_time_kind`] for single-launch kernels).
fn kernel_secs(m: &MachineModel, stages: usize, kc: KernelCost, kind: PrecKind) -> f64 {
    if stages <= 1 {
        m.kernel_time_kind(kc.bytes, kc.flops, kind)
    } else {
        m.staged_kernel_time(stages, kc.bytes, kc.flops, kind.bytes())
    }
}

/// Cost of one halo exchange's data handling (pack + unpack kernels):
/// each touches the compute-width values and the wire-width payload.
fn pack_unpack_secs(m: &MachineModel, s: &LevelShape, acc_b: usize, wire_b: usize) -> f64 {
    if s.halo_msgs == 0 {
        return 0.0;
    }
    2.0 * (s.halo_values * (acc_b + wire_b) as f64 / m.mem_bw) + 2.0 * m.launch_overhead
}

/// Wire time of one halo exchange at a level's wire width.
fn halo_secs(net: &NetworkModel, m: &MachineModel, s: &LevelShape, lp: LevelPrec) -> f64 {
    net.halo_time(s.halo_msgs, kernels::halo_wire_bytes(s, lp.wire_b))
        + pack_unpack_secs(m, s, lp.acc_b(), lp.wire_b)
}

/// One Gauss–Seidel sweep: (seconds attributed to GS, flops).
fn gs_sweep(
    cfg: &SimConfig,
    s: &LevelShape,
    lp: LevelPrec,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = halo_secs(net, m, s, lp);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::gs_multicolor_ell_split(s, lp.storage_b, lp.acc_b(), m.gather_factor);
            let compute = kernel_secs(m, s.colors, kc, lp.acc);
            // The first color's interior rows run while messages fly.
            let window = compute * s.interior_frac / s.colors as f64;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            // The reference code has no split kernels (§3.1): matrix
            // and vectors travel at the accumulate width.
            let kc = kernels::gs_reference_csr(s, lp.acc_b(), m.gather_factor);
            // Level-scheduled triangular solve: one dependent stage per
            // dependency level, each too small to saturate the memory
            // system, plus a launch+sync per stage (§3.1 item 1 — the
            // reference code "does not fully utilize the GPU").
            let rows_per_stage = s.n / s.sched_stages as f64;
            let eff = m.stage_bandwidth_efficiency(rows_per_stage);
            let compute = kc.bytes / (m.mem_bw * eff)
                + (s.sched_stages as f64 + 1.0) * 2.0 * m.launch_overhead;
            (compute + comm, kc.flops)
        }
    }
}

/// One fine-operator SpMV: (seconds, flops).
fn spmv(
    cfg: &SimConfig,
    s: &LevelShape,
    lp: LevelPrec,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = halo_secs(net, m, s, lp);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::spmv_ell_split(s, lp.storage_b, lp.acc_b(), m.gather_factor);
            let compute = kernel_secs(m, 2, kc, lp.acc);
            let window = compute * s.interior_frac;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            let kc = kernels::spmv_csr(s, lp.acc_b(), m.gather_factor);
            (kernel_secs(m, 1, kc, lp.acc) + comm, kc.flops)
        }
    }
}

/// Restriction (fused or reference): (seconds, flops).
fn restrict(
    cfg: &SimConfig,
    s: &LevelShape,
    lp: LevelPrec,
    m: &MachineModel,
    net: &NetworkModel,
) -> (f64, f64) {
    let comm = halo_secs(net, m, s, lp);
    match cfg.variant {
        ImplVariant::Optimized => {
            let kc = kernels::fused_restrict_split(s, lp.storage_b, lp.acc_b(), m.gather_factor);
            let compute = kernel_secs(m, 2, kc, lp.acc);
            let window = compute * s.interior_frac;
            (compute + (comm - window).max(0.0), kc.flops)
        }
        ImplVariant::Reference => {
            let kc = kernels::reference_restrict(s, lp.acc_b(), m.gather_factor);
            (kernel_secs(m, 2, kc, lp.acc) + comm, kc.flops)
        }
    }
}

/// Simulate one configuration at one scale.
pub fn simulate(
    cfg: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    ranks: usize,
) -> SimResult {
    let wl = Workload::build(cfg.local, cfg.mg_levels, cfg.restart, ranks);
    let mut acc = MotifStats::new();
    let n = wl.fine().n;
    let m = cfg.restart as f64;
    let kbar = (m + 1.0) / 2.0;
    let amortized = 1.0 / m; // per-restart work, per iteration
    let fine_lp = cfg.inner_prec(0);

    // --- Multigrid preconditioner: one apply per iteration plus the
    // restart-time apply of line 47 (amortized).
    let mg_applies = 1.0 + amortized;
    let nlev = wl.levels.len();
    for (l, shape) in wl.levels.iter().enumerate() {
        let lp = cfg.inner_prec(l);
        let coarsest = l + 1 == nlev;
        let sweeps = if coarsest { wl.pre_smooth } else { wl.pre_smooth + wl.post_smooth } as f64;
        let (gs_s, gs_f) = gs_sweep(cfg, shape, lp, machine, net);
        acc.record(Motif::GaussSeidel, gs_s * sweeps * mg_applies, gs_f * sweeps * mg_applies);
        if !coarsest {
            let (r_s, r_f) = restrict(cfg, shape, lp, machine, net);
            acc.record(Motif::Restriction, r_s * mg_applies, r_f * mg_applies);
            let pk = kernels::prolong(shape, lp.acc_b());
            acc.record(
                Motif::Prolongation,
                kernel_secs(machine, 1, pk, lp.acc) * mg_applies,
                pk.flops * mg_applies,
            );
        }
    }

    // --- Arnoldi SpMV (inner precision), once per iteration.
    let (sp_s, sp_f) = spmv(cfg, wl.fine(), fine_lp, machine, net);
    acc.record(Motif::SpMV, sp_s, sp_f);
    // Outer residual SpMV (always f64), once per restart.
    let (osp_s, osp_f) = spmv(cfg, wl.fine(), OUTER, machine, net);
    acc.record(Motif::SpMV, osp_s * amortized, osp_f * amortized);

    // --- CGS2 orthogonalization: GEMV passes plus its reductions
    // (two blocked ones and the norm), attributed to Ortho as in the
    // paper's breakdown.
    let oc = kernels::cgs2_step(n, kbar, fine_lp.acc_b());
    let ortho_compute = kernel_secs(machine, 5, oc, fine_lp.acc);
    let ortho_comm = 2.0 * net.allreduce_time(ranks, kbar * 8.0) + net.allreduce_time(ranks, 8.0);
    acc.record(Motif::Ortho, ortho_compute + ortho_comm, oc.flops);
    // Restart-amortized basis combination and small dense solves.
    let bc = kernels::basis_combine(n, m, fine_lp.acc_b());
    acc.record(
        Motif::Ortho,
        kernel_secs(machine, 1, bc, fine_lp.acc) * amortized,
        (bc.flops + hpgmxp_core::flops::hessenberg_solve(cfg.restart)) * amortized,
    );

    // --- Outer (restart-amortized) vector work, in f64.
    let wx = kernels::waxpby(n, 8);
    acc.record(
        Motif::Waxpby,
        kernel_secs(machine, 1, wx, PrecKind::F64) * amortized,
        wx.flops * amortized,
    );
    let dt = kernels::dot(n, 8);
    acc.record(
        Motif::Dot,
        (kernel_secs(machine, 1, dt, PrecKind::F64) + net.allreduce_time(ranks, 8.0)) * amortized,
        dt.flops * amortized,
    );
    if cfg.is_ir() {
        // GMRES-IR residual hand-off: narrow the f64 residual to the
        // inner width, widen the correction back into the f64 iterate.
        let lo = fine_lp.acc_b();
        let sn = kernels::scale_narrow_split(n, lo);
        let ax = kernels::axpy_mixed_split(n, lo);
        let mut secs =
            kernel_secs(machine, 1, sn, fine_lp.acc) + kernel_secs(machine, 1, ax, PrecKind::F64);
        if cfg.variant == ImplVariant::Reference {
            // §3.1 item 6: the reference code does mixed vector ops on
            // the host — four vector transits over the host link.
            secs += machine.host_copy_time(4.0 * n * 8.0);
        }
        acc.record(Motif::Waxpby, secs * amortized, (sn.flops + ax.flops) * amortized);
    } else {
        let ax = kernels::waxpby(n, 8);
        acc.record(
            Motif::Waxpby,
            kernel_secs(machine, 1, ax, PrecKind::F64) * amortized,
            ax.flops * amortized,
        );
    }

    let time_per_iter = acc.total_seconds();
    let gflops_raw = acc.total_flops() / time_per_iter / 1e9;
    let penalty = if cfg.is_ir() { cfg.penalty.min(1.0) } else { 1.0 };
    let gflops = gflops_raw * penalty;
    SimResult {
        ranks,
        per_iter: acc,
        time_per_iter,
        gflops_per_rank_raw: gflops_raw,
        gflops_per_rank: gflops,
        total_pflops: gflops * ranks as f64 / 1e6,
    }
}

/// Weak-scaling sweep (figure 4): the same per-rank problem at a list
/// of scales.
pub fn weak_scaling(
    cfg: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    rank_counts: &[usize],
) -> Vec<SimResult> {
    rank_counts.iter().map(|&p| simulate(cfg, machine, net, p)).collect()
}

/// Per-motif penalized speedups of mixed over double at one scale
/// (figure 5's bars), plus the total.
pub fn motif_speedups(
    base: &SimConfig,
    machine: &MachineModel,
    net: &NetworkModel,
    ranks: usize,
) -> Vec<(String, f64)> {
    let mxp = simulate(&SimConfig { mixed: true, ..base.clone() }, machine, net, ranks);
    let dbl = simulate(
        &SimConfig { mixed: false, penalty: 1.0, policy: None, ..base.clone() },
        machine,
        net,
        ranks,
    );
    let penalty = base.penalty.min(1.0);
    let mut out = Vec::new();
    for m in [Motif::GaussSeidel, Motif::SpMV, Motif::Ortho, Motif::Restriction] {
        let gm = mxp.per_iter.flops(m) / mxp.per_iter.seconds(m) * penalty;
        let gd = dbl.per_iter.flops(m) / dbl.per_iter.seconds(m);
        out.push((m.label().to_string(), gm / gd));
    }
    out.push(("Total".to_string(), mxp.gflops_per_rank_raw * penalty / dbl.gflops_per_rank_raw));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> (MachineModel, NetworkModel) {
        (MachineModel::mi250x_gcd(), NetworkModel::frontier_slingshot())
    }

    #[test]
    fn paper_operating_point_magnitude() {
        // §4.1: 17.23 PF penalized over 75 264 GCDs → 229 GF/GCD; at
        // 1 node with 78% full-system efficiency the per-GCD number is
        // ~300 GF. The model must land in that ballpark.
        let (m, n) = frontier();
        let r8 = simulate(&SimConfig::paper_mxp(), &m, &n, 8);
        assert!(
            r8.gflops_per_rank > 150.0 && r8.gflops_per_rank < 450.0,
            "1-node mixed GF/GCD = {}",
            r8.gflops_per_rank
        );
        let d8 = simulate(&SimConfig::paper_double(), &m, &n, 8);
        assert!(
            d8.gflops_per_rank > 100.0 && d8.gflops_per_rank < 300.0,
            "1-node double GF/GCD = {}",
            d8.gflops_per_rank
        );
        assert!(r8.gflops_per_rank > d8.gflops_per_rank);
    }

    #[test]
    fn full_system_total_matches_paper_scale() {
        // The modeled full-system mixed number should be within a
        // factor ~1.5 of the paper's 17.23 PF.
        let (m, n) = frontier();
        let r = simulate(&SimConfig::paper_mxp(), &m, &n, 75_264);
        assert!(
            r.total_pflops > 10.0 && r.total_pflops < 30.0,
            "full-system = {} PF",
            r.total_pflops
        );
    }

    #[test]
    fn weak_scaling_efficiency_band() {
        // Figure 4: ~78% from 1 node to 9408 nodes.
        let (m, n) = frontier();
        let cfg = SimConfig::paper_mxp();
        let results = weak_scaling(&cfg, &m, &n, &[8, 75_264]);
        let eff = results[1].gflops_per_rank / results[0].gflops_per_rank;
        assert!(eff > 0.60 && eff < 0.92, "efficiency = {}", eff);
        // And it is monotone in between.
        let mid = simulate(&cfg, &m, &n, 8192);
        assert!(mid.gflops_per_rank <= results[0].gflops_per_rank);
        assert!(mid.gflops_per_rank >= results[1].gflops_per_rank);
    }

    #[test]
    fn mixed_speedup_in_paper_band() {
        // Figure 5: ~1.6x overall, <2x theoretical.
        let (m, n) = frontier();
        let sp = motif_speedups(&SimConfig::paper_mxp(), &m, &n, 512);
        let total = sp.iter().find(|(l, _)| l == "Total").unwrap().1;
        assert!(total > 1.35 && total < 1.95, "total speedup = {}", total);
        // Ortho enjoys the best speedup (pure value traffic).
        let ortho = sp.iter().find(|(l, _)| l == "Ortho").unwrap().1;
        let gs = sp.iter().find(|(l, _)| l == "GS").unwrap().1;
        assert!(ortho > gs, "ortho {} must beat GS {}", ortho, gs);
        assert!(ortho <= 2.05, "nothing beats the 2x bandwidth bound: {}", ortho);
    }

    #[test]
    fn reference_variant_is_much_slower() {
        // Figure 4: the xsdk (reference) curve sits several times below
        // the optimized one.
        let (m, n) = frontier();
        let opt = simulate(&SimConfig::paper_mxp(), &m, &n, 512);
        let xsdk = simulate(
            &SimConfig { variant: ImplVariant::Reference, ..SimConfig::paper_mxp() },
            &m,
            &n,
            512,
        );
        let ratio = opt.gflops_per_rank / xsdk.gflops_per_rank;
        assert!(ratio > 2.0 && ratio < 15.0, "optimized/reference = {}", ratio);
    }

    #[test]
    fn ortho_share_grows_at_scale() {
        // Figure 7: orthogonalization takes a larger share at 9408
        // nodes because of the all-reduces.
        let (m, n) = frontier();
        let cfg = SimConfig::paper_mxp();
        let small = simulate(&cfg, &m, &n, 8);
        let large = simulate(&cfg, &m, &n, 75_264);
        let share = |r: &SimResult| r.per_iter.seconds(Motif::Ortho) / r.time_per_iter;
        assert!(share(&large) > share(&small), "{} vs {}", share(&large), share(&small));
    }

    #[test]
    fn k80_also_speeds_up() {
        // Figure 6: the same shape on a K80 cluster.
        let m = MachineModel::k80_die();
        let n = NetworkModel::commodity_ib();
        let cfg = SimConfig {
            local: (64, 64, 64),
            mg_levels: 4,
            restart: 30,
            variant: ImplVariant::Optimized,
            mixed: true,
            inner_bytes: 4,
            penalty: 0.97,
            policy: None,
        };
        let sp = motif_speedups(&cfg, &m, &n, 8);
        let total = sp.iter().find(|(l, _)| l == "Total").unwrap().1;
        assert!(total > 1.2 && total < 2.0, "K80 total speedup = {}", total);
    }

    #[test]
    fn gs_dominates_time_breakdown() {
        // Figure 7: GS is the largest bar at small scale.
        let (m, n) = frontier();
        let r = simulate(&SimConfig::paper_mxp(), &m, &n, 8);
        let gs = r.per_iter.seconds(Motif::GaussSeidel);
        for motif in [Motif::SpMV, Motif::Restriction, Motif::Prolongation, Motif::Waxpby] {
            assert!(gs > r.per_iter.seconds(motif), "GS must dominate {:?}", motif);
        }
    }

    #[test]
    fn fp16_inner_projects_higher_speedup_than_fp32() {
        // The §5 future-work projection: quarter-width values push the
        // bandwidth-bound motifs further, but the 4-byte index arrays
        // and f64 outer work cap the gain well below 4x.
        let (m, n) = frontier();
        let r32 = simulate(&SimConfig::paper_mxp(), &m, &n, 512);
        let r16 = simulate(&SimConfig::paper_mxp_fp16(), &m, &n, 512);
        let d = simulate(&SimConfig::paper_double(), &m, &n, 512);
        let s32 = r32.gflops_per_rank_raw / d.gflops_per_rank_raw;
        let s16 = r16.gflops_per_rank_raw / d.gflops_per_rank_raw;
        assert!(s16 > s32, "fp16 raw speedup {} must beat fp32 {}", s16, s32);
        assert!(s16 < 3.0, "index traffic and f64 outer work cap fp16 at {}", s16);
    }

    #[test]
    fn double_solver_unaffected_by_penalty_field() {
        let (m, n) = frontier();
        let a = simulate(&SimConfig { penalty: 0.5, ..SimConfig::paper_double() }, &m, &n, 8);
        let b = simulate(&SimConfig::paper_double(), &m, &n, 8);
        assert_eq!(a.gflops_per_rank, b.gflops_per_rank);
    }

    #[test]
    fn uniform_f32_policy_reproduces_classic_mixed_path_exactly() {
        // The classic mixed path (inner_bytes = 4) and the uniform-f32
        // policy describe the same solver; the policy resolution layer
        // must not perturb a single term.
        let (m, n) = frontier();
        for ranks in [8usize, 512, 75_264] {
            let classic = simulate(&SimConfig::paper_mxp(), &m, &n, ranks);
            let policy = simulate(
                &SimConfig::paper_policy(
                    PrecisionPolicy::by_name("f32").unwrap(),
                    SimConfig::paper_mxp().penalty,
                ),
                &m,
                &n,
                ranks,
            );
            assert_eq!(classic.time_per_iter, policy.time_per_iter);
            assert_eq!(classic.gflops_per_rank, policy.gflops_per_rank);
            assert_eq!(classic.total_pflops, policy.total_pflops);
        }
    }

    #[test]
    fn policy_storage_axis_orders_modeled_time() {
        // Byte volume decides: narrower storage under the same compute
        // width is never slower, and each shipped storage halving cuts
        // the modeled iteration time.
        let (m, n) = frontier();
        let t = |name: &str| {
            let cfg = SimConfig::paper_policy(PrecisionPolicy::by_name(name).unwrap(), 1.0);
            simulate(&cfg, &m, &n, 512).time_per_iter
        };
        let (f64t, f32s, f32t, f16s) = (t("f64"), t("f32s-f64c"), t("f32"), t("f16s-f32c"));
        assert!(f32s < f64t, "fp32 storage must beat all-f64: {f32s} vs {f64t}");
        assert!(f32t < f32s, "fp32 vectors shave the remaining term: {f32t} vs {f32s}");
        assert!(f16s < f32t, "fp16 storage is the narrowest: {f16s} vs {f32t}");
        // The descent policy sits between all-f64 and all-f32 (f64 fine
        // grid dominates, compressed coarse levels claw some back).
        let desc = t("descent");
        assert!(desc < f64t && desc > f16s, "descent = {desc}");
    }

    #[test]
    fn wire_axis_only_shrinks_comm_terms() {
        // f32-w16 differs from f32 only in halo wire width: compute
        // terms identical, modeled time never larger, and the gap
        // bounded by the fine-grid exchange volume.
        let (m, n) = frontier();
        let f32t = simulate(
            &SimConfig::paper_policy(PrecisionPolicy::by_name("f32").unwrap(), 1.0),
            &m,
            &n,
            512,
        );
        let w16 = simulate(
            &SimConfig::paper_policy(PrecisionPolicy::by_name("f32-w16").unwrap(), 1.0),
            &m,
            &n,
            512,
        );
        assert!(w16.time_per_iter <= f32t.time_per_iter);
        assert_eq!(
            w16.per_iter.seconds(Motif::Ortho),
            f32t.per_iter.seconds(Motif::Ortho),
            "ortho has no halo wire term"
        );
    }

    #[test]
    fn per_policy_weak_scaling_is_monotone_non_increasing() {
        // The campaign harness's fig-4 analogue per policy: GF/GCD
        // never improves with scale (halo surface + all-reduce depth
        // only grow). Pinned here at the paper's operating point; the
        // property test in the integration suite sweeps random scales.
        let (m, n) = frontier();
        for p in PrecisionPolicy::shipped() {
            let cfg = SimConfig::paper_policy(p.clone(), 1.0);
            let mut last = f64::INFINITY;
            for nodes in [1usize, 8, 64, 512, 1024, 4096, 9408] {
                let r = simulate(&cfg, &m, &n, nodes * m.devices_per_node);
                assert!(
                    r.gflops_per_rank <= last * (1.0 + 1e-12),
                    "{}: GF/GCD rose at {} nodes: {} > {}",
                    p.name,
                    nodes,
                    r.gflops_per_rank,
                    last
                );
                last = r.gflops_per_rank;
            }
        }
    }
}
