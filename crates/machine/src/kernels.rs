//! Per-kernel byte and FLOP volumes.
//!
//! Bytes are derived from the concrete storage layouts of
//! `hpgmxp-sparse`: ELL stores `width × n` values plus 4-byte column
//! ids and no row pointer; CSR stores `nnz` values, `nnz` column ids
//! and an `n+1` row pointer. Input-vector gathers are charged
//! `gather_factor × n` scalar reads (imperfect cache reuse of the
//! 27-point neighborhood). FLOPs reuse `hpgmxp_core::flops`, the same
//! model the measured benchmark reports — so the modeled arithmetic
//! intensities (figure 8) are those of the real code.

use crate::workload::LevelShape;
use hpgmxp_core::flops;

/// Bytes and FLOPs of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Floating-point operations (any precision).
    pub flops: f64,
}

impl KernelCost {
    /// Arithmetic intensity, FLOP/byte.
    pub fn ai(&self) -> f64 {
        self.flops / self.bytes
    }
}

/// SpMV in ELL format (optimized variant): padded matrix slabs, output
/// write, gathered input reads.
pub fn spmv_ell(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    spmv_ell_split(s, sb, sb, gather)
}

/// SpMV in ELL with the precision-policy axes decoupled: matrix values
/// stored at `storage_b` bytes, vectors and accumulation at `acc_b`
/// bytes. `storage_b == acc_b` is the classic same-precision kernel;
/// fp32 storage under f64 accumulation halves the dominant
/// matrix-value term while the (index + vector) terms are unchanged —
/// the policy engine's headline trade.
pub fn spmv_ell_split(s: &LevelShape, storage_b: usize, acc_b: usize, gather: f64) -> KernelCost {
    let stored = s.ell_width * s.n;
    KernelCost {
        bytes: stored * (storage_b as f64 + 4.0) + s.n * acc_b as f64 * (1.0 + gather),
        flops: flops::spmv(s.nnz as usize),
    }
}

/// Matrix-*value* bytes of one ELL pass at a storage width — the
/// policy-dependent share, reconciled against the measured
/// `MotifStats::value_bytes`.
pub fn ell_value_bytes(s: &LevelShape, storage_b: usize) -> f64 {
    s.ell_width * s.n * storage_b as f64
}

/// Matrix bytes (values + indices) of one ELL pass at a storage width
/// — the deterministic part of [`spmv_ell_split`], exactly equal to
/// the measured `EllMatrix::spmv_matrix_bytes` of the policy's stored
/// operator.
pub fn ell_matrix_bytes(s: &LevelShape, storage_b: usize) -> f64 {
    s.ell_width * s.n * (storage_b as f64 + 4.0)
}

/// Halo wire bytes of one exchange at a policy wire width (per rank,
/// middle-rank surface).
pub fn halo_wire_bytes(s: &LevelShape, wire_b: usize) -> f64 {
    s.halo_values * wire_b as f64
}

/// SpMV in CSR format (reference variant): exact nonzeros plus the row
/// pointer array.
pub fn spmv_csr(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    KernelCost {
        bytes: s.nnz * (sb as f64 + 4.0) + (s.n + 1.0) * 4.0 + s.n * sb as f64 * (1.0 + gather),
        flops: flops::spmv(s.nnz as usize),
    }
}

/// One multicolor Gauss–Seidel relaxation sweep in ELL (optimized):
/// one pass over the padded matrix, the rhs read, the solution read,
/// updated in place, plus gathered neighbor reads.
pub fn gs_multicolor_ell(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    gs_multicolor_ell_split(s, sb, sb, gather)
}

/// Multicolor Gauss–Seidel with storage and accumulate widths
/// decoupled (see [`spmv_ell_split`]).
pub fn gs_multicolor_ell_split(
    s: &LevelShape,
    storage_b: usize,
    acc_b: usize,
    gather: f64,
) -> KernelCost {
    let stored = s.ell_width * s.n;
    KernelCost {
        bytes: stored * (storage_b as f64 + 4.0) + s.n * acc_b as f64 * (3.0 + gather),
        flops: flops::gs_sweep(s.nnz as usize, s.n as usize),
    }
}

/// One reference Gauss–Seidel sweep (§3.1 items 1–2): an SpMV with the
/// strictly-upper CSR factor followed by a level-scheduled triangular
/// solve with the lower factor — two full passes over the matrix plus
/// an intermediate vector round-trip.
pub fn gs_reference_csr(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    // U and L each hold about half the nonzeros, each stored in CSR.
    let matrix = s.nnz * (sb as f64 + 4.0) + 2.0 * (s.n + 1.0) * 4.0;
    // t = r − Ux (write + read back in the solve), plus vector traffic
    // of both passes.
    let vectors = s.n * sb as f64 * (5.0 + gather);
    KernelCost { bytes: matrix + vectors, flops: flops::gs_sweep(s.nnz as usize, s.n as usize) }
}

/// Fused SpMV-restriction (§3.2.4): residual rows only at the coarse
/// points, reading the fine rhs there and writing the coarse rhs.
pub fn fused_restrict(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    fused_restrict_split(s, sb, sb, gather)
}

/// Fused restriction with storage and accumulate widths decoupled: the
/// sampled matrix rows travel at the storage precision, the gathered
/// fine vector and the coarse rhs at the accumulate precision (see
/// [`spmv_ell_split`]).
pub fn fused_restrict_split(
    s: &LevelShape,
    storage_b: usize,
    acc_b: usize,
    gather: f64,
) -> KernelCost {
    // The touched matrix rows are a 1/8 stride sample: their values and
    // column ids are read exactly; gathers fetch the fine vector around
    // each coarse point.
    KernelCost {
        bytes: s.nnz_coarse_rows * (storage_b as f64 + 4.0)
            + s.n_coarse * acc_b as f64 * (2.0 + gather * 8.0),
        flops: flops::fused_restriction(s.nnz_coarse_rows as usize, s.n_coarse as usize),
    }
}

/// Reference restriction (§3.1 item 3): full fine-grid residual SpMV,
/// residual vector write/read, then injection.
pub fn reference_restrict(s: &LevelShape, sb: usize, gather: f64) -> KernelCost {
    let spmv = spmv_csr(s, sb, gather);
    KernelCost {
        bytes: spmv.bytes + s.n * sb as f64 * 3.0 + s.n_coarse * sb as f64 * 2.0,
        flops: flops::reference_restriction(s.nnz as usize, s.n as usize),
    }
}

/// Prolongation + correction: read coarse values, read-modify-write the
/// collocated fine entries.
pub fn prolong(s: &LevelShape, sb: usize) -> KernelCost {
    KernelCost {
        bytes: s.n_coarse * sb as f64 * 3.0,
        flops: flops::prolongation(s.n_coarse as usize),
    }
}

/// One CGS2 orthogonalization step against `k` basis vectors of local
/// length `n`: four passes over the `k` columns (two GEMV-T + two
/// GEMV) plus several passes over the new vector.
pub fn cgs2_step(n: f64, k: f64, sb: usize) -> KernelCost {
    KernelCost {
        bytes: 4.0 * k * n * sb as f64 + 6.0 * n * sb as f64,
        flops: flops::cgs2_step(n as usize, k as usize),
    }
}

/// The restart-time basis combination `Q t` over `k` columns.
pub fn basis_combine(n: f64, k: f64, sb: usize) -> KernelCost {
    KernelCost {
        bytes: k * n * sb as f64 + n * sb as f64,
        flops: flops::basis_combine(n as usize, k as usize),
    }
}

/// Local dot product / norm.
pub fn dot(n: f64, sb: usize) -> KernelCost {
    KernelCost { bytes: 2.0 * n * sb as f64, flops: flops::dot(n as usize) }
}

/// `w = alpha x + beta y`.
pub fn waxpby(n: f64, sb: usize) -> KernelCost {
    KernelCost { bytes: 3.0 * n * sb as f64, flops: flops::waxpby(n as usize) }
}

/// The fused f64→f32 scale-and-narrow residual hand-off of GMRES-IR.
pub fn scale_narrow(n: f64) -> KernelCost {
    scale_narrow_split(n, 4)
}

/// The scale-and-narrow hand-off at an arbitrary inner width: read the
/// f64 residual, write the `lo_b`-byte narrowed copy (the policy
/// engine's compute axis decides `lo_b`).
pub fn scale_narrow_split(n: f64, lo_b: usize) -> KernelCost {
    KernelCost { bytes: n * (8.0 + lo_b as f64), flops: flops::scal(n as usize) }
}

/// The mixed f32→f64 solution update (read f32 correction, RMW f64 x).
pub fn axpy_mixed(n: f64) -> KernelCost {
    axpy_mixed_split(n, 4)
}

/// The widening solution update at an arbitrary inner width: read the
/// `lo_b`-byte correction, read-modify-write the f64 iterate.
pub fn axpy_mixed_split(n: f64, lo_b: usize) -> KernelCost {
    KernelCost { bytes: n * (lo_b as f64 + 8.0 + 8.0), flops: flops::axpy(n as usize) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn fine() -> LevelShape {
        Workload::build((32, 32, 32), 2, 30, 27).levels[0].clone()
    }

    #[test]
    fn f32_halves_the_value_traffic() {
        let s = fine();
        let c64 = spmv_ell(&s, 8, 1.8);
        let c32 = spmv_ell(&s, 4, 1.8);
        assert_eq!(c64.flops, c32.flops, "FLOPs counted equally per the benchmark");
        // Not exactly 2x because the 4-byte index array doesn't shrink —
        // the paper's explanation for GS/SpMV speedups below 2x.
        let ratio = c64.bytes / c32.bytes;
        assert!(ratio > 1.4 && ratio < 1.7, "got {}", ratio);
    }

    #[test]
    fn ortho_traffic_is_nearly_pure_values() {
        // Dense GEMV has no index arrays: f64/f32 ratio is exactly 2 —
        // why the paper sees the best speedup in orthogonalization.
        let c64 = cgs2_step(32768.0, 15.0, 8);
        let c32 = cgs2_step(32768.0, 15.0, 4);
        assert!((c64.bytes / c32.bytes - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reference_gs_moves_more_bytes() {
        let s = fine();
        let opt = gs_multicolor_ell(&s, 8, 1.8);
        let rf = gs_reference_csr(&s, 8, 1.8);
        // ELL padding partly offsets CSR's double vector traffic at
        // width 27 with few padded rows; the reference still loses.
        assert!(rf.bytes > opt.bytes * 0.95);
        assert_eq!(rf.flops, opt.flops);
    }

    #[test]
    fn fused_restriction_saves_8x() {
        let s = fine();
        let f = fused_restrict(&s, 8, 1.8);
        let r = reference_restrict(&s, 8, 1.8);
        assert!(f.bytes * 4.0 < r.bytes, "fused {} vs reference {}", f.bytes, r.bytes);
        assert!(f.flops * 4.0 < r.flops);
    }

    #[test]
    fn arithmetic_intensities_are_sparse_like() {
        // Every sparse kernel sits far below the machine balance point
        // (figure 8: all at the bandwidth ceiling).
        let s = fine();
        for c in [
            spmv_ell(&s, 8, 1.8),
            spmv_csr(&s, 8, 1.8),
            gs_multicolor_ell(&s, 8, 1.8),
            fused_restrict(&s, 8, 1.8),
        ] {
            assert!(c.ai() > 0.05 && c.ai() < 0.5, "AI = {}", c.ai());
        }
    }

    #[test]
    fn split_kernels_decouple_the_axes() {
        let s = fine();
        // fp32 storage + f64 accumulation: value term halves, vector
        // term unchanged vs pure f64.
        let full = spmv_ell_split(&s, 8, 8, 1.8);
        let split = spmv_ell_split(&s, 4, 8, 1.8);
        assert_eq!(full.flops, split.flops);
        let value_saving = ell_value_bytes(&s, 8) - ell_value_bytes(&s, 4);
        assert!((full.bytes - split.bytes - value_saving).abs() < 1e-9);
        assert_eq!(ell_value_bytes(&s, 8), 2.0 * ell_value_bytes(&s, 4));
        // Same-width split equals the classic kernels exactly.
        assert_eq!(spmv_ell(&s, 4, 1.8), spmv_ell_split(&s, 4, 4, 1.8));
        assert_eq!(gs_multicolor_ell(&s, 8, 1.8), gs_multicolor_ell_split(&s, 8, 8, 1.8));
        // Wire accounting scales linearly with the wire width.
        assert_eq!(halo_wire_bytes(&s, 8), 4.0 * halo_wire_bytes(&s, 2));
        assert_eq!(ell_matrix_bytes(&s, 4), ell_value_bytes(&s, 4) + s.ell_width * s.n * 4.0);
    }

    #[test]
    fn mixed_kernels_cost() {
        let c = scale_narrow(1000.0);
        assert_eq!(c.bytes, 12_000.0);
        let a = axpy_mixed(1000.0);
        assert_eq!(a.bytes, 20_000.0);
    }
}
