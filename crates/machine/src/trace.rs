//! Discrete-event overlap traces (figure 9).
//!
//! Figure 9 shows rocprof timelines of an 8-node run: on the fine grid
//! the halo pack, host-device copies, and message transfers are fully
//! hidden under the interior Gauss–Seidel kernel of the first color
//! (9a); on the coarsest grid the first color's interior work is too
//! small and the communication peeks out (9b). This module replays the
//! same schedule against the machine/network models and emits the
//! event intervals, so the figure can be regenerated — and the overlap
//! property asserted — without a GPU profiler.

use crate::model::MachineModel;
use crate::network::NetworkModel;
use crate::workload::LevelShape;
use serde::{Deserialize, Serialize};

/// Trace lane, mirroring the paper's rocprof rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lane {
    /// GPU compute stream.
    Gpu,
    /// Halo (pack/unpack) stream.
    Halo,
    /// Host-device copies.
    Copy,
    /// Network markers.
    Comm,
}

impl Lane {
    /// Row label used by the ASCII renderer.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Gpu => "GPU  ",
            Lane::Halo => "HALO ",
            Lane::Copy => "COPY ",
            Lane::Comm => "COMM ",
        }
    }
}

/// One simulated interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Operation name.
    pub name: String,
    /// Lane.
    pub lane: Lane,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A simulated timeline of one Gauss–Seidel sweep with overlap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepTrace {
    /// Level name for display ("fine grid", "coarsest grid").
    pub level_name: String,
    /// The event intervals.
    pub events: Vec<TraceEvent>,
    /// Total sweep time.
    pub makespan: f64,
    /// Fraction of communication (copies + transfer) hidden under GPU
    /// compute.
    pub hidden_fraction: f64,
}

/// Replay the optimized Gauss–Seidel sweep schedule of §3.2.3 on one
/// level: pack → (D2H, network, H2D) in parallel with the first
/// color's interior kernel → boundary kernel → remaining colors.
pub fn gs_sweep_trace(
    level_name: &str,
    s: &LevelShape,
    sb: usize,
    machine: &MachineModel,
    net: &NetworkModel,
) -> SweepTrace {
    let mut events = Vec::new();
    let colors = s.colors as f64;
    // Per-color kernel cost (uniform split of the sweep).
    let sweep = crate::kernels::gs_multicolor_ell(s, sb, machine.gather_factor);
    let per_color = sweep.bytes / colors / machine.mem_bw + machine.launch_overhead;
    let interior0 = per_color * s.interior_frac;
    let boundary0 = per_color * (1.0 - s.interior_frac);

    // A rank with no neighbors (single-rank world) has nothing to
    // hide: emit the pure compute schedule.
    if s.halo_msgs == 0 {
        let mut t = 0.0;
        events.push(TraceEvent {
            name: "GS interior (color 0)".into(),
            lane: Lane::Gpu,
            start: t,
            end: t + per_color,
        });
        t += per_color;
        for c in 1..s.colors {
            events.push(TraceEvent {
                name: format!("GS color {}", c),
                lane: Lane::Gpu,
                start: t,
                end: t + per_color,
            });
            t += per_color;
        }
        return SweepTrace {
            level_name: level_name.to_string(),
            events,
            makespan: t,
            hidden_fraction: 1.0,
        };
    }

    // Halo stream: pack kernel reads boundary values, writes the buffer.
    let halo_bytes = s.halo_values * sb as f64;
    let t_pack = 2.0 * halo_bytes / machine.mem_bw + machine.launch_overhead;
    events.push(TraceEvent {
        name: "pack send buffer".into(),
        lane: Lane::Halo,
        start: 0.0,
        end: t_pack,
    });

    // Copies stage through the host, as on Frontier in the paper.
    let t_d2h = machine.host_copy_time(halo_bytes);
    events.push(TraceEvent {
        name: "D2H send buffer".into(),
        lane: Lane::Copy,
        start: t_pack,
        end: t_pack + t_d2h,
    });

    let t_net = net.halo_time(s.halo_msgs, halo_bytes);
    let net_end = t_pack + t_d2h + t_net;
    events.push(TraceEvent {
        name: "neighbor messages".into(),
        lane: Lane::Comm,
        start: t_pack + t_d2h,
        end: net_end,
    });

    let t_h2d = machine.host_copy_time(halo_bytes);
    let comm_done = net_end + t_h2d;
    events.push(TraceEvent {
        name: "H2D recv buffer".into(),
        lane: Lane::Copy,
        start: net_end,
        end: comm_done,
    });

    // Compute stream: the interior kernel of color 0 starts right after
    // packing (the event dependency of §3.2.3).
    let int_end = t_pack + interior0;
    events.push(TraceEvent {
        name: "GS interior (color 0)".into(),
        lane: Lane::Gpu,
        start: t_pack,
        end: int_end,
    });

    // Boundary rows of color 0 wait for both the interior kernel and
    // the arrived halo.
    let b_start = int_end.max(comm_done);
    let b_end = b_start + boundary0;
    events.push(TraceEvent {
        name: "GS boundary (color 0)".into(),
        lane: Lane::Gpu,
        start: b_start,
        end: b_end,
    });

    // Remaining colors back-to-back.
    let mut t = b_end;
    for c in 1..s.colors {
        events.push(TraceEvent {
            name: format!("GS color {}", c),
            lane: Lane::Gpu,
            start: t,
            end: t + per_color,
        });
        t += per_color;
    }

    // Hidden fraction: the share of [pack-end, comm-done] covered by
    // GPU compute.
    let comm_span = comm_done - t_pack;
    let hidden = (int_end - t_pack).min(comm_span).max(0.0);
    let hidden_fraction = if comm_span > 0.0 { hidden / comm_span } else { 1.0 };

    SweepTrace { level_name: level_name.to_string(), events, makespan: t, hidden_fraction }
}

/// Render a trace as an ASCII Gantt chart, `width` columns wide.
pub fn render_ascii(trace: &SweepTrace, width: usize) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} — makespan {:.1} µs, {:.0}% of communication hidden",
        trace.level_name,
        trace.makespan * 1e6,
        trace.hidden_fraction * 100.0
    );
    let scale = width as f64 / trace.makespan;
    for lane in [Lane::Gpu, Lane::Halo, Lane::Copy, Lane::Comm] {
        let mut row = vec![b' '; width];
        for ev in trace.events.iter().filter(|e| e.lane == lane) {
            let a = ((ev.start * scale) as usize).min(width - 1);
            let b = ((ev.end * scale) as usize).clamp(a + 1, width);
            let ch = match lane {
                Lane::Gpu => b'#',
                Lane::Halo => b'p',
                Lane::Copy => b'c',
                Lane::Comm => b'~',
            };
            for slot in row.iter_mut().take(b).skip(a) {
                *slot = ch;
            }
        }
        let _ = writeln!(s, "{} |{}|", lane.label(), String::from_utf8_lossy(&row));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use hpgmxp_geometry::ProcGrid;

    fn frontier() -> (MachineModel, NetworkModel) {
        (MachineModel::mi250x_gcd(), NetworkModel::frontier_slingshot())
    }

    /// The paper's 8-node setup: 64 GCDs, 320³ local, 4 levels.
    fn shapes() -> Vec<crate::workload::LevelShape> {
        Workload::build((320, 320, 320), 4, 30, 64).levels
    }

    #[test]
    fn fine_grid_hides_communication() {
        // Figure 9a: on the fine grid the copies and messages are
        // completely hidden by the interior kernel of the first color.
        let (m, n) = frontier();
        let t = gs_sweep_trace("fine grid", &shapes()[0], 4, &m, &n);
        assert!(
            t.hidden_fraction > 0.999,
            "fine-grid communication must be fully hidden, got {}",
            t.hidden_fraction
        );
    }

    #[test]
    fn coarsest_grid_exposes_communication() {
        // Figure 9b: the coarsest level's first-color interior work is
        // too small to cover the exchange.
        let (m, n) = frontier();
        let t = gs_sweep_trace("coarsest grid", &shapes()[3], 4, &m, &n);
        assert!(
            t.hidden_fraction < 0.9,
            "coarsest-grid communication must peek out, got {}",
            t.hidden_fraction
        );
    }

    #[test]
    fn events_are_well_formed() {
        let (m, n) = frontier();
        let t = gs_sweep_trace("fine grid", &shapes()[0], 8, &m, &n);
        assert!(!t.events.is_empty());
        for ev in &t.events {
            assert!(ev.end > ev.start, "{} has zero extent", ev.name);
            assert!(ev.end <= t.makespan + 1e-12);
        }
        // One GPU kernel per color plus the interior/boundary split.
        let gpu_events = t.events.iter().filter(|e| e.lane == Lane::Gpu).count();
        assert_eq!(gpu_events, 8 + 1);
    }

    #[test]
    fn single_rank_trace_has_no_comm() {
        let (m, n) = frontier();
        let wl = Workload::build((32, 32, 32), 1, 30, 1);
        let t = gs_sweep_trace("serial", &wl.levels[0], 8, &m, &n);
        assert_eq!(t.hidden_fraction, 1.0);
        assert!(t.events.iter().all(|e| e.lane != Lane::Comm || e.end == e.start));
    }

    #[test]
    fn ascii_render_contains_lanes() {
        let (m, n) = frontier();
        let t = gs_sweep_trace("fine grid", &shapes()[0], 4, &m, &n);
        let art = render_ascii(&t, 100);
        assert!(art.contains("GPU"));
        assert!(art.contains("#"));
        assert!(art.contains("COMM"));
    }

    #[test]
    fn procgrid_is_8_nodes_worth() {
        // Sanity: 64 GCDs factor to a 4x4x4 grid whose middle rank has
        // 26 neighbors.
        let p = ProcGrid::factor(64);
        assert_eq!((p.px, p.py, p.pz), (4, 4, 4));
    }
}
