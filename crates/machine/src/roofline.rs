//! Roofline analysis of the benchmark's hot kernels (figure 8).
//!
//! Figure 8 plots the ten most expensive kernels of the benchmark on a
//! single MI250x GCD in the arithmetic-intensity / throughput plane and
//! observes that all of them line up at the HBM bandwidth ceiling.
//! This module derives the same points from the byte/FLOP model: for a
//! bandwidth-bound kernel the attainable throughput is `AI × BW`, far
//! below the compute peak for every sparse motif.

use crate::kernels;
use crate::model::MachineModel;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// One kernel's position in the roofline plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name (matches the paper's labels).
    pub kernel: String,
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
    /// Attainable throughput at the achievable-bandwidth roof, GFLOP/s.
    pub gflops: f64,
    /// Attainable throughput at the vendor-claimed peak-bandwidth roof.
    pub gflops_at_peak_bw: f64,
    /// Whether the kernel is bandwidth-bound on this machine.
    pub bandwidth_bound: bool,
}

/// The machine's roofline ceilings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ceilings {
    /// Machine name.
    pub machine: String,
    /// Achievable-bandwidth roof slope, bytes/s.
    pub mem_bw: f64,
    /// Peak-bandwidth roof slope, bytes/s.
    pub mem_bw_peak: f64,
    /// FP64 compute roof, GFLOP/s.
    pub peak_fp64_gflops: f64,
    /// FP32 compute roof, GFLOP/s.
    pub peak_fp32_gflops: f64,
    /// Machine balance (FLOP/byte) at which FP64 kernels leave the
    /// bandwidth roof.
    pub balance_fp64: f64,
}

/// Compute the machine ceilings.
pub fn ceilings(machine: &MachineModel) -> Ceilings {
    Ceilings {
        machine: machine.name.clone(),
        mem_bw: machine.mem_bw,
        mem_bw_peak: machine.mem_bw_peak,
        peak_fp64_gflops: machine.peak_fp64 / 1e9,
        peak_fp32_gflops: machine.peak_fp32 / 1e9,
        balance_fp64: machine.peak_fp64 / machine.mem_bw,
    }
}

/// The ten most expensive kernels of the benchmark (figure 8): the
/// double- and single-precision versions of the Gauss–Seidel sweep,
/// SpMV, the two CGS2 GEMV shapes, and the fused SpMV-restriction.
pub fn roofline_points(
    local: (u32, u32, u32),
    restart: usize,
    machine: &MachineModel,
) -> Vec<RooflinePoint> {
    let wl = Workload::build(local, 4, restart, 1);
    let s = wl.fine();
    let n = s.n;
    let kbar = (restart as f64 + 1.0) / 2.0;
    let g = machine.gather_factor;

    let mut points = Vec::new();
    let mut push = |name: &str, kc: kernels::KernelCost, sb: usize| {
        let ai = kc.ai();
        let bw_bound = ai * machine.mem_bw < machine.peak_flops(sb);
        let attain = (ai * machine.mem_bw).min(machine.peak_flops(sb));
        let attain_peak = (ai * machine.mem_bw_peak).min(machine.peak_flops(sb));
        points.push(RooflinePoint {
            kernel: name.to_string(),
            ai,
            gflops: attain / 1e9,
            gflops_at_peak_bw: attain_peak / 1e9,
            bandwidth_bound: bw_bound,
        });
    };

    push("GS sweep (fp64)", kernels::gs_multicolor_ell(s, 8, g), 8);
    push("GS sweep (fp32)", kernels::gs_multicolor_ell(s, 4, g), 4);
    push("SpMV (fp64)", kernels::spmv_ell(s, 8, g), 8);
    push("SpMV (fp32)", kernels::spmv_ell(s, 4, g), 4);
    push("CGS2 GEMV-T (fp64)", kernels::cgs2_step(n, kbar, 8), 8);
    push("CGS2 GEMV-T (fp32)", kernels::cgs2_step(n, kbar, 4), 4);
    push("CGS2 GEMV (fp64)", kernels::basis_combine(n, kbar, 8), 8);
    push("CGS2 GEMV (fp32)", kernels::basis_combine(n, kbar, 4), 4);
    // The two unlabelled points of figure 8.
    push("Fused SpMV-restrict (fp64)", kernels::fused_restrict(s, 8, g), 8);
    push("Fused SpMV-restrict (fp32)", kernels::fused_restrict(s, 4, g), 4);
    points
}

/// Render the roofline as an aligned text table.
pub fn to_table(points: &[RooflinePoint], ceil: &Ceilings) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Roofline on {} (BW {:.2} TB/s achievable, {:.2} TB/s peak; FP64 roof {:.1} TF)",
        ceil.machine,
        ceil.mem_bw / 1e12,
        ceil.mem_bw_peak / 1e12,
        ceil.peak_fp64_gflops / 1e3
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12} {:>14} {:>6}",
        "kernel", "AI (F/B)", "GF/s @BW", "GF/s @peakBW", "bound"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:<28} {:>10.4} {:>12.1} {:>14.1} {:>6}",
            p.kernel,
            p.ai,
            p.gflops,
            p.gflops_at_peak_bw,
            if p.bandwidth_bound { "BW" } else { "FLOP" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_kernels_are_bandwidth_bound_on_gcd() {
        // The paper's central roofline observation.
        let m = MachineModel::mi250x_gcd();
        let pts = roofline_points((320, 320, 320), 30, &m);
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert!(p.bandwidth_bound, "{} must be bandwidth-bound", p.kernel);
            // Attainable GF/s is far below the 23.9 TF compute roof.
            assert!(p.gflops < 0.1 * m.peak_fp64 / 1e9);
        }
    }

    #[test]
    fn fp32_attains_more_gflops_than_fp64() {
        // Same FLOPs, half the value bytes → higher AI → higher
        // attainable throughput: the memory-wall argument of the title.
        let m = MachineModel::mi250x_gcd();
        let pts = roofline_points((64, 64, 64), 30, &m);
        let find = |name: &str| pts.iter().find(|p| p.kernel == name).unwrap();
        assert!(find("GS sweep (fp32)").gflops > find("GS sweep (fp64)").gflops);
        assert!(find("SpMV (fp32)").gflops > find("SpMV (fp64)").gflops);
        // Dense GEMV doubles exactly; sparse kernels less (index bytes).
        let gemv_ratio = find("CGS2 GEMV-T (fp32)").gflops / find("CGS2 GEMV-T (fp64)").gflops;
        assert!((gemv_ratio - 2.0).abs() < 0.05, "got {}", gemv_ratio);
        let spmv_ratio = find("SpMV (fp32)").gflops / find("SpMV (fp64)").gflops;
        assert!(spmv_ratio > 1.3 && spmv_ratio < 1.8, "got {}", spmv_ratio);
    }

    #[test]
    fn ceilings_and_balance() {
        let m = MachineModel::mi250x_gcd();
        let c = ceilings(&m);
        // MI250x GCD balance: ~18 FLOP/byte — far above any sparse AI.
        assert!(c.balance_fp64 > 10.0 && c.balance_fp64 < 30.0);
    }

    #[test]
    fn table_renders() {
        let m = MachineModel::mi250x_gcd();
        let pts = roofline_points((32, 32, 32), 30, &m);
        let t = to_table(&pts, &ceilings(&m));
        assert!(t.contains("GS sweep (fp64)"));
        assert!(t.contains("BW"));
    }
}
