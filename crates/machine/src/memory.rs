//! Device-memory capacity model — the conclusion's trade-off,
//! quantified.
//!
//! §5 of the paper: *"the mixed-precision GMRES-IR solver requires a
//! lower-precision copy of the system matrix. This means its overall
//! memory utilization is more than double-precision GMRES. In order to
//! compensate ... we should utilize a larger mesh size while running
//! double-precision GMRES ... The benchmark could be modified to take
//! this into account. In some applications ... the matrix-free variant
//! of GMRES may be used, and] only the low-precision matrix needs to
//! be stored."*
//!
//! This module computes per-rank memory footprints for the three
//! storage configurations (stored double, stored mixed, matrix-free
//! mixed) and the largest local box each fits in a device's memory, so
//! the capacity-compensated comparison the conclusion proposes can be
//! carried out (see the `memory_capacity` harness binary).

use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Which solver storage configuration to size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageConfig {
    /// Pure double GMRES: f64 ELL operator + f64 Krylov basis.
    StoredDouble,
    /// GMRES-IR as the benchmark runs it: f64 **and** f32 ELL
    /// operators + f32 basis (the conclusion's memory complaint).
    StoredMixed,
    /// Matrix-free GMRES-IR: the f64 fine operator applied from the
    /// stencil; only the f32 preconditioner matrices are stored.
    MatrixFreeMixed,
}

/// Breakdown of one rank's memory use, bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Configuration sized.
    pub config: StorageConfig,
    /// Operator storage over all multigrid levels.
    pub matrices: f64,
    /// Krylov basis (`m + 1` vectors at the inner precision).
    pub basis: f64,
    /// Solver vectors (solution, rhs, residual, temporaries, per-level
    /// workspace, ghosts).
    pub vectors: f64,
    /// Total bytes.
    pub total: f64,
}

/// ELL storage bytes of one level: `width · n` values plus 4-byte
/// column indices.
fn ell_bytes(n: f64, width: f64, scalar_bytes: f64) -> f64 {
    n * width * (scalar_bytes + 4.0)
}

/// Compute the memory footprint of one rank for `local`-sized boxes.
pub fn footprint(
    local: (u32, u32, u32),
    mg_levels: usize,
    restart: usize,
    config: StorageConfig,
) -> MemoryFootprint {
    let wl = Workload::build(local, mg_levels, restart, 27); // interior rank
    let n_fine = wl.fine().n;

    let mut matrices = 0.0;
    for (l, shape) in wl.levels.iter().enumerate() {
        let fine_level = l == 0;
        match config {
            StorageConfig::StoredDouble => {
                matrices += ell_bytes(shape.n, shape.ell_width, 8.0);
            }
            StorageConfig::StoredMixed => {
                matrices += ell_bytes(shape.n, shape.ell_width, 8.0)
                    + ell_bytes(shape.n, shape.ell_width, 4.0);
            }
            StorageConfig::MatrixFreeMixed => {
                // The f64 fine operator is matrix-free; coarse levels and
                // the f32 preconditioner copies remain stored.
                if !fine_level {
                    matrices += ell_bytes(shape.n, shape.ell_width, 8.0);
                }
                matrices += ell_bytes(shape.n, shape.ell_width, 4.0);
            }
        }
    }

    let inner_bytes = match config {
        StorageConfig::StoredDouble => 8.0,
        _ => 4.0,
    };
    let basis = n_fine * (restart as f64 + 1.0) * inner_bytes;

    // x, b, r, Ax in f64 plus per-level z/r workspace in the inner
    // precision (with ~5% ghost overhead).
    let level_rows: f64 = wl.levels.iter().map(|s| s.n).sum();
    let vectors = 4.0 * n_fine * 8.0 + 2.0 * level_rows * inner_bytes * 1.05;

    MemoryFootprint { config, matrices, basis, vectors, total: matrices + basis + vectors }
}

/// The largest cubic local box (edge a multiple of `2^(levels-1)`)
/// whose footprint fits in `device_bytes`.
pub fn max_local_edge(
    device_bytes: f64,
    mg_levels: usize,
    restart: usize,
    config: StorageConfig,
) -> u32 {
    let step = 1u32 << (mg_levels - 1);
    let mut best = 0;
    let mut edge = step;
    while edge <= 2048 {
        if footprint((edge, edge, edge), mg_levels, restart, config).total <= device_bytes {
            best = edge;
        } else {
            break;
        }
        edge += step;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const GCD_HBM: f64 = 64.0 * 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn mixed_costs_more_than_double() {
        // The conclusion's observation, in bytes.
        let d = footprint((320, 320, 320), 4, 30, StorageConfig::StoredDouble);
        let m = footprint((320, 320, 320), 4, 30, StorageConfig::StoredMixed);
        assert!(m.total > d.total);
        // The extra is the f32 matrix copy: ratio ≈ (12+8)/12 on the
        // matrix side.
        let ratio = m.matrices / d.matrices;
        assert!((ratio - 20.0 / 12.0).abs() < 0.01, "got {}", ratio);
    }

    #[test]
    fn matrix_free_mixed_is_leaner_than_stored_double() {
        // The conclusion's counterpoint: drop the stored f64 fine
        // operator and mixed precision becomes the *smaller*
        // configuration.
        let d = footprint((320, 320, 320), 4, 30, StorageConfig::StoredDouble);
        let mf = footprint((320, 320, 320), 4, 30, StorageConfig::MatrixFreeMixed);
        assert!(mf.total < d.total, "{} vs {}", mf.total, d.total);
    }

    #[test]
    fn paper_operating_point_fits_on_a_gcd() {
        // Table 1 runs 320³ per GCD in mixed mode on 64 GB — the model
        // must agree it fits with room to spare.
        let m = footprint((320, 320, 320), 4, 30, StorageConfig::StoredMixed);
        assert!(m.total < GCD_HBM, "{} GB", m.total / 1e9);
        assert!(m.total > 0.2 * GCD_HBM, "not implausibly small: {} GB", m.total / 1e9);
    }

    #[test]
    fn capacity_ordering_of_max_edges() {
        let d = max_local_edge(GCD_HBM, 4, 30, StorageConfig::StoredDouble);
        let m = max_local_edge(GCD_HBM, 4, 30, StorageConfig::StoredMixed);
        let mf = max_local_edge(GCD_HBM, 4, 30, StorageConfig::MatrixFreeMixed);
        // Double fits a larger box than stored-mixed (the conclusion's
        // compensation argument); matrix-free mixed beats both.
        assert!(d > m, "double {} vs mixed {}", d, m);
        assert!(mf > d, "matrix-free {} vs double {}", mf, d);
        // All comfortably above the paper's 320.
        assert!(m >= 320, "mixed max edge {}", m);
    }

    #[test]
    fn footprint_components_are_positive_and_sum() {
        let f = footprint((64, 64, 64), 4, 30, StorageConfig::StoredMixed);
        assert!(f.matrices > 0.0 && f.basis > 0.0 && f.vectors > 0.0);
        assert!((f.total - (f.matrices + f.basis + f.vectors)).abs() < 1.0);
    }
}
