//! Factoring a rank count into a near-cubic 3D processor grid.
//!
//! HPCG (and therefore HPG-MxP) maps MPI ranks onto a `px × py × pz`
//! grid mirroring the mesh. Because every rank owns an identical local
//! box, the communication surface per rank is minimized when the
//! processor grid is as close to a cube as possible; this module performs
//! that factorization deterministically.

/// A 3D grid of processors with `px * py * pz` ranks.
///
/// Rank numbering follows the same x-fastest convention as the mesh:
/// `rank = ipx + px*(ipy + py*ipz)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    /// Ranks along x.
    pub px: u32,
    /// Ranks along y.
    pub py: u32,
    /// Ranks along z.
    pub pz: u32,
}

impl ProcGrid {
    /// A grid with the given explicit extents.
    pub fn new(px: u32, py: u32, pz: u32) -> Self {
        assert!(px > 0 && py > 0 && pz > 0, "processor grid extents must be positive");
        ProcGrid { px, py, pz }
    }

    /// Factor `p` ranks into the most cubic `px × py × pz` grid.
    ///
    /// Among all ordered factorizations of `p` into three factors this
    /// picks the one minimizing `(max - min, px+py+pz)`, i.e. the most
    /// balanced one, breaking ties toward smaller `px`. This mirrors the
    /// intent of HPCG's `ComputeOptimalShapeXYZ`.
    pub fn factor(p: u32) -> Self {
        assert!(p > 0, "cannot factor zero ranks");
        let mut best: Option<(u32, u32, u32)> = None;
        let mut best_key = (u32::MAX, u32::MAX);
        let mut fx = 1;
        while fx * fx * fx <= p {
            if p.is_multiple_of(fx) {
                let rest = p / fx;
                let mut fy = fx;
                while fy * fy <= rest {
                    if rest.is_multiple_of(fy) {
                        let fz = rest / fy;
                        // fx <= fy <= fz by construction.
                        let key = (fz - fx, fx + fy + fz);
                        if key < best_key {
                            best_key = key;
                            best = Some((fx, fy, fz));
                        }
                    }
                    fy += 1;
                }
            }
            fx += 1;
        }
        let (a, b, c) = best.expect("at least 1*1*p factors p");
        // Assign the largest factor to z so that x-contiguous (stride-1)
        // faces are the large ones, matching HPCG's layout preference.
        ProcGrid { px: a, py: b, pz: c }
    }

    /// Total rank count.
    pub fn size(&self) -> u32 {
        self.px * self.py * self.pz
    }

    /// Rank id of processor coordinates.
    #[inline]
    pub fn rank_of(&self, ipx: u32, ipy: u32, ipz: u32) -> u32 {
        debug_assert!(ipx < self.px && ipy < self.py && ipz < self.pz);
        ipx + self.px * (ipy + self.py * ipz)
    }

    /// Processor coordinates of a rank id.
    #[inline]
    pub fn coords_of(&self, rank: u32) -> (u32, u32, u32) {
        debug_assert!(rank < self.size());
        (rank % self.px, (rank / self.px) % self.py, rank / (self.px * self.py))
    }

    /// The rank at offset `(dx,dy,dz)` from `rank`, or `None` at the edge
    /// of the processor grid (no periodic wrap: the benchmark domain has
    /// physical boundaries).
    pub fn neighbor(&self, rank: u32, dx: i32, dy: i32, dz: i32) -> Option<u32> {
        let (x, y, z) = self.coords_of(rank);
        let nx = x as i64 + dx as i64;
        let ny = y as i64 + dy as i64;
        let nz = z as i64 + dz as i64;
        if nx < 0
            || ny < 0
            || nz < 0
            || nx >= self.px as i64
            || ny >= self.py as i64
            || nz >= self.pz as i64
        {
            None
        } else {
            Some(self.rank_of(nx as u32, ny as u32, nz as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_perfect_cubes() {
        for p in [1u32, 8, 27, 64, 512, 4096] {
            let g = ProcGrid::factor(p);
            assert_eq!(g.px, g.py);
            assert_eq!(g.py, g.pz);
            assert_eq!(g.size(), p);
        }
    }

    #[test]
    fn factor_balanced() {
        let g = ProcGrid::factor(12);
        assert_eq!(g.size(), 12);
        // 12 = 2*2*3 is the most cubic factorization.
        assert_eq!((g.px, g.py, g.pz), (2, 2, 3));

        let g = ProcGrid::factor(2);
        assert_eq!((g.px, g.py, g.pz), (1, 1, 2));

        // Primes degrade gracefully to pencils.
        let g = ProcGrid::factor(7);
        assert_eq!((g.px, g.py, g.pz), (1, 1, 7));
    }

    #[test]
    fn factor_frontier_scales() {
        // Node counts used in the paper, times 8 GCDs per node.
        for nodes in [1u32, 2, 8, 64, 128, 1024, 4096, 9408] {
            let g = ProcGrid::factor(nodes * 8);
            assert_eq!(g.size(), nodes * 8);
            assert!(g.px <= g.py && g.py <= g.pz);
        }
    }

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcGrid::new(3, 4, 5);
        for r in 0..g.size() {
            let (x, y, z) = g.coords_of(r);
            assert_eq!(g.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = ProcGrid::new(2, 2, 2);
        assert_eq!(g.neighbor(0, -1, 0, 0), None);
        assert_eq!(g.neighbor(0, 1, 0, 0), Some(1));
        assert_eq!(g.neighbor(0, 1, 1, 1), Some(7));
        assert_eq!(g.neighbor(7, 1, 0, 0), None);
        assert_eq!(g.neighbor(7, -1, -1, -1), Some(0));
    }

    #[test]
    fn neighbor_count_is_26_in_interior() {
        let g = ProcGrid::new(3, 3, 3);
        let center = g.rank_of(1, 1, 1);
        let mut count = 0;
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    if g.neighbor(center, dx, dy, dz).is_some() {
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 26);
    }
}
