//! Halo (ghost-layer) exchange plans — the geometry of `SetupHalo`.
//!
//! Each rank owns a box of grid points; the 27-point stencil makes rows
//! near the box faces reference points owned by up to 26 neighboring
//! ranks. Those remote values live in a *ghost region* appended after the
//! locally-owned entries of every distributed vector, so local matrices
//! can use plain local column indices `0..n_local + n_ghost`.
//!
//! The plan computed here is purely geometric and identical on the two
//! sides of every exchange: for a neighbor in direction `d`, our receive
//! box (the ghost slab in direction `d`) and the neighbor's send box (its
//! boundary slab in direction `-d`) are congruent and traversed in the
//! same lexicographic order, so no index lists ever travel over the wire.
//! This matches how HPCG/rocHPCG set up their halos for uniform local
//! boxes.

use crate::grid::LocalGrid;
use crate::stencil::STENCIL_OFFSETS;

/// One neighbor of a rank in the halo exchange.
#[derive(Debug, Clone)]
pub struct Neighbor {
    /// The neighbor's rank id.
    pub rank: u32,
    /// Direction from us to the neighbor on the processor grid.
    pub direction: (i32, i32, i32),
    /// Local indices (owned points) we must pack and send, in the
    /// canonical order the receiver expects.
    pub send_indices: Vec<u32>,
    /// Offset of this neighbor's values inside our ghost region.
    pub recv_start: u32,
    /// Number of values exchanged in each direction (send and receive
    /// counts are equal by congruence of the boxes).
    pub count: u32,
}

impl Neighbor {
    /// Staging-buffer bytes this neighbor needs at a given per-value
    /// wire width — what the persistent halo buffers are sized from.
    pub fn staging_bytes(&self, bytes_per_value: usize) -> usize {
        self.count as usize * bytes_per_value
    }
}

/// The complete halo-exchange plan of one rank.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    /// Neighbors in canonical (stencil-offset) order.
    pub neighbors: Vec<Neighbor>,
    /// Total ghost entries; distributed vectors have
    /// `n_local + num_ghosts` storage.
    pub num_ghosts: usize,
    local: LocalGrid,
    /// `recv_start` per direction index (27 slots, `u32::MAX` if absent),
    /// for O(1) ghost-id lookup during matrix assembly.
    dir_base: [u32; 27],
}

/// Extent of the send/recv box along one axis for direction component
/// `d` on an axis of local length `n`: faces are single layers, the
/// in-plane axes span the whole box.
#[inline]
fn box_len(d: i32, n: u32) -> u32 {
    if d == 0 {
        n
    } else {
        1
    }
}

/// Canonical index of a direction in `STENCIL_OFFSETS` order.
#[inline]
fn dir_index(dx: i32, dy: i32, dz: i32) -> usize {
    ((dz + 1) * 9 + (dy + 1) * 3 + (dx + 1)) as usize
}

impl HaloPlan {
    /// Build the plan for one rank's local box.
    ///
    /// Requires (and relies on) uniform local box sizes across ranks,
    /// which the benchmark guarantees.
    pub fn build(local: &LocalGrid) -> Self {
        let (nx, ny, nz) = (local.nx, local.ny, local.nz);
        let mut neighbors = Vec::new();
        let mut dir_base = [u32::MAX; 27];
        let mut ghost_cursor = 0u32;

        for &(dx, dy, dz) in STENCIL_OFFSETS.iter() {
            if (dx, dy, dz) == (0, 0, 0) {
                continue;
            }
            let Some(nbr_rank) = local.procs.neighbor(
                local.procs.rank_of(local.rank_coords.0, local.rank_coords.1, local.rank_coords.2),
                dx,
                dy,
                dz,
            ) else {
                continue;
            };

            // Our send box toward direction d: the boundary slab on the d side.
            let xs = if dx < 0 {
                0..1
            } else if dx > 0 {
                nx - 1..nx
            } else {
                0..nx
            };
            let ys = if dy < 0 {
                0..1
            } else if dy > 0 {
                ny - 1..ny
            } else {
                0..ny
            };
            let zs = if dz < 0 {
                0..1
            } else if dz > 0 {
                nz - 1..nz
            } else {
                0..nz
            };
            let count = box_len(dx, nx) * box_len(dy, ny) * box_len(dz, nz);
            let mut send_indices = Vec::with_capacity(count as usize);
            for iz in zs {
                for iy in ys.clone() {
                    for ix in xs.clone() {
                        send_indices.push(local.index(ix, iy, iz) as u32);
                    }
                }
            }
            debug_assert_eq!(send_indices.len(), count as usize);

            dir_base[dir_index(dx, dy, dz)] = ghost_cursor;
            neighbors.push(Neighbor {
                rank: nbr_rank,
                direction: (dx, dy, dz),
                send_indices,
                recv_start: ghost_cursor,
                count,
            });
            ghost_cursor += count;
        }

        HaloPlan { neighbors, num_ghosts: ghost_cursor as usize, local: *local, dir_base }
    }

    /// Number of locally-owned points.
    pub fn n_local(&self) -> usize {
        self.local.total_points()
    }

    /// Ghost-region index (0-based within the ghost region) of the point
    /// at *extended* local coordinates, i.e. coordinates that step one
    /// layer outside the local box (`-1..=n` per axis).
    ///
    /// Returns `None` if the coordinates are inside the box (not a
    /// ghost) or fall outside the global domain (no neighbor there).
    pub fn ghost_index(&self, ex: i64, ey: i64, ez: i64) -> Option<usize> {
        let (nx, ny, nz) = (self.local.nx as i64, self.local.ny as i64, self.local.nz as i64);
        let dx = if ex < 0 {
            -1
        } else if ex >= nx {
            1
        } else {
            0
        };
        let dy = if ey < 0 {
            -1
        } else if ey >= ny {
            1
        } else {
            0
        };
        let dz = if ez < 0 {
            -1
        } else if ez >= nz {
            1
        } else {
            0
        };
        if (dx, dy, dz) == (0, 0, 0) {
            return None;
        }
        let base = self.dir_base[dir_index(dx, dy, dz)];
        if base == u32::MAX {
            return None;
        }
        // Box-relative coordinates on the in-plane axes.
        let bx = if dx == 0 { ex as u64 } else { 0 };
        let by = if dy == 0 { ey as u64 } else { 0 };
        let bz = if dz == 0 { ez as u64 } else { 0 };
        let lx = box_len(dx, self.local.nx) as u64;
        let ly = box_len(dy, self.local.ny) as u64;
        let offset = bx + lx * (by + ly * bz);
        Some(base as usize + offset as usize)
    }

    /// Whether the row at local coordinates touches any ghost point,
    /// i.e. must wait for the halo exchange before it can be updated.
    /// Rows on the *physical* domain boundary (no neighbor rank on that
    /// side) do not count as boundary rows.
    pub fn is_boundary_row(&self, ix: u32, iy: u32, iz: u32) -> bool {
        let rank = self.local.procs.rank_of(
            self.local.rank_coords.0,
            self.local.rank_coords.1,
            self.local.rank_coords.2,
        );
        let probe = |c: u32, n: u32, axis: usize| -> bool {
            let mut d = [0i32; 3];
            if c == 0 {
                d[axis] = -1;
                self.local.procs.neighbor(rank, d[0], d[1], d[2]).is_some()
            } else if c == n - 1 {
                d[axis] = 1;
                self.local.procs.neighbor(rank, d[0], d[1], d[2]).is_some()
            } else {
                false
            }
        };
        probe(ix, self.local.nx, 0) || probe(iy, self.local.ny, 1) || probe(iz, self.local.nz, 2)
    }

    /// Partition local rows into (interior, boundary) index lists; the
    /// interior rows are the ones overlap-capable kernels may update
    /// while halo messages are in flight.
    pub fn split_rows(&self) -> (Vec<u32>, Vec<u32>) {
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        for iz in 0..self.local.nz {
            for iy in 0..self.local.ny {
                for ix in 0..self.local.nx {
                    let idx = self.local.index(ix, iy, iz) as u32;
                    if self.is_boundary_row(ix, iy, iz) {
                        boundary.push(idx);
                    } else {
                        interior.push(idx);
                    }
                }
            }
        }
        (interior, boundary)
    }

    /// Total values sent per exchange (sum over neighbors).
    pub fn send_volume(&self) -> usize {
        self.neighbors.iter().map(|n| n.count as usize).sum()
    }

    /// Total bytes sent per exchange at a given per-value wire width —
    /// the one number the halo engine, the timeline records, and the
    /// network model all agree on (`send_volume × bytes_per_value`).
    pub fn send_volume_bytes(&self, bytes_per_value: usize) -> usize {
        self.send_volume() * bytes_per_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::ProcGrid;

    fn plan(rank: u32, procs: ProcGrid, n: u32) -> HaloPlan {
        HaloPlan::build(&LocalGrid::new((n, n, n), procs, rank))
    }

    #[test]
    fn single_rank_has_no_neighbors() {
        let p = plan(0, ProcGrid::new(1, 1, 1), 4);
        assert!(p.neighbors.is_empty());
        assert_eq!(p.num_ghosts, 0);
        let (interior, boundary) = p.split_rows();
        assert_eq!(interior.len(), 64);
        assert!(boundary.is_empty());
    }

    #[test]
    fn corner_rank_of_2cube_has_7_neighbors() {
        let p = plan(0, ProcGrid::new(2, 2, 2), 4);
        assert_eq!(p.neighbors.len(), 7);
        // 3 faces (16 each) + 3 edges (4 each) + 1 corner (1): 61 ghosts.
        assert_eq!(p.num_ghosts, 3 * 16 + 3 * 4 + 1);
    }

    #[test]
    fn center_rank_of_3cube_has_26_neighbors() {
        let procs = ProcGrid::new(3, 3, 3);
        let center = procs.rank_of(1, 1, 1);
        let p = plan(center, procs, 4);
        assert_eq!(p.neighbors.len(), 26);
        // 6 faces (16) + 12 edges (4) + 8 corners (1).
        assert_eq!(p.num_ghosts, 6 * 16 + 12 * 4 + 8);
    }

    #[test]
    fn send_boxes_are_boundary_points() {
        let procs = ProcGrid::new(2, 1, 1);
        let p = plan(0, procs, 4);
        assert_eq!(p.neighbors.len(), 1);
        let nbr = &p.neighbors[0];
        assert_eq!(nbr.direction, (1, 0, 0));
        assert_eq!(nbr.count, 16);
        let lg = LocalGrid::new((4, 4, 4), procs, 0);
        for &si in &nbr.send_indices {
            let (ix, _, _) = lg.coords(si as usize);
            assert_eq!(ix, 3, "send box of +x neighbor is the x = nx-1 face");
        }
    }

    #[test]
    fn ghost_index_covers_all_ghosts_exactly_once() {
        let procs = ProcGrid::new(3, 3, 3);
        let center = procs.rank_of(1, 1, 1);
        let n = 4i64;
        let p = plan(center, procs, n as u32);
        let mut seen = vec![false; p.num_ghosts];
        for ez in -1..=n {
            for ey in -1..=n {
                for ex in -1..=n {
                    let inside =
                        (0..n).contains(&ex) && (0..n).contains(&ey) && (0..n).contains(&ez);
                    match p.ghost_index(ex, ey, ez) {
                        Some(g) => {
                            assert!(!inside);
                            assert!(!seen[g], "ghost id assigned twice");
                            seen[g] = true;
                        }
                        None => assert!(inside, "center rank must have ghosts on all sides"),
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every ghost id must be reachable");
    }

    #[test]
    fn sender_receiver_orders_agree() {
        // Rank 0 sends its +x face to rank 1; rank 1's ghost slab at
        // direction -x must enumerate the same global points in the same
        // order.
        let procs = ProcGrid::new(2, 1, 1);
        let n = 3u32;
        let lg0 = LocalGrid::new((n, n, n), procs, 0);
        let lg1 = LocalGrid::new((n, n, n), procs, 1);
        let p0 = HaloPlan::build(&lg0);
        let p1 = HaloPlan::build(&lg1);

        let send = &p0.neighbors.iter().find(|nb| nb.rank == 1).unwrap().send_indices;
        let recv = p1.neighbors.iter().find(|nb| nb.rank == 0).unwrap();

        // Enumerate rank 1's ghost slab in the order of increasing ghost id.
        let mut recv_points = vec![None; recv.count as usize];
        for ez in 0..n as i64 {
            for ey in 0..n as i64 {
                let g = p1.ghost_index(-1, ey, ez).unwrap();
                assert!(g >= recv.recv_start as usize);
                let slot = g - recv.recv_start as usize;
                // Rank 1 ghost (-1, ey, ez) is global (n-1, ey, ez) on rank 0.
                recv_points[slot] = Some(lg1.to_global(0, ey as u32, ez as u32));
            }
        }
        for (slot, gp) in recv_points.iter().enumerate() {
            let gp = gp.expect("slab covered");
            // Shift to the true owned point: ghost x = -1 means global x = base-1.
            let true_global = (gp.0 - 1, gp.1, gp.2);
            let (ix, iy, iz) = lg0
                .to_local(true_global.0 as i64, true_global.1 as i64, true_global.2 as i64)
                .unwrap();
            assert_eq!(send[slot], lg0.index(ix, iy, iz) as u32);
        }
    }

    #[test]
    fn split_rows_partition() {
        let procs = ProcGrid::new(2, 2, 2);
        let p = plan(0, procs, 4);
        let (interior, boundary) = p.split_rows();
        assert_eq!(interior.len() + boundary.len(), 64);
        // Rank 0 has neighbors on +x, +y, +z: boundary rows are the three
        // far faces: 3*16 - 3*4 + 1 = 37 points.
        assert_eq!(boundary.len(), 37);
        // No row is in both sets.
        let bset: std::collections::HashSet<u32> = boundary.iter().copied().collect();
        assert!(interior.iter().all(|r| !bset.contains(r)));
    }

    #[test]
    fn physical_boundary_rows_are_interior() {
        // With a single rank there is no exchange, so even the domain
        // boundary rows are "interior" for overlap purposes.
        let p = plan(0, ProcGrid::new(1, 1, 1), 3);
        assert!(!p.is_boundary_row(0, 0, 0));
        assert!(!p.is_boundary_row(2, 2, 2));
    }

    #[test]
    fn send_volume_matches_surface() {
        let procs = ProcGrid::new(2, 1, 1);
        let p = plan(0, procs, 8);
        assert_eq!(p.send_volume(), 64); // one 8x8 face
        assert_eq!(p.send_volume_bytes(8), 512); // fp64 wire
        assert_eq!(p.send_volume_bytes(2), 128); // fp16 wire
        assert_eq!(p.neighbors[0].staging_bytes(8), 512);
    }
}
