//! The 27-point stencil used by HPCG and HPG-MxP.
//!
//! Every interior mesh point couples to itself and its 26 nearest
//! neighbors (faces, edges, and corners of the surrounding 3×3×3 cube).
//! Points on the physical boundary of the global domain simply drop the
//! out-of-domain couplings, which is what makes the operator weakly
//! diagonally dominant: the diagonal is 26 and each row's off-diagonal
//! sum is `-(number of in-domain neighbors) >= -26`.

/// The 27 offsets `(dx, dy, dz)` of the stencil, in lexicographic order
/// with `dx` fastest — the same traversal order HPCG uses to enumerate
/// row entries, which keeps column indices sorted for interior rows.
pub const STENCIL_OFFSETS: [(i32, i32, i32); 27] = build_offsets();

const fn build_offsets() -> [(i32, i32, i32); 27] {
    let mut out = [(0i32, 0i32, 0i32); 27];
    let mut i = 0;
    let mut dz = -1i32;
    while dz <= 1 {
        let mut dy = -1i32;
        while dy <= 1 {
            let mut dx = -1i32;
            while dx <= 1 {
                out[i] = (dx, dy, dz);
                i += 1;
                dx += 1;
            }
            dy += 1;
        }
        dz += 1;
    }
    out
}

/// Classification of a global grid point by how many domain faces it
/// touches. Determines the number of stencil entries in its matrix row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Touches no domain face: full 27-entry row.
    Interior,
    /// Touches exactly one face: 18-entry row.
    Face,
    /// Touches two faces (an edge of the box): 12-entry row.
    Edge,
    /// Touches three faces (a corner of the box): 8-entry row.
    Corner,
}

impl BoundaryKind {
    /// Number of nonzeros (including the diagonal) in this row kind.
    pub fn nnz(self) -> usize {
        match self {
            BoundaryKind::Interior => 27,
            BoundaryKind::Face => 18,
            BoundaryKind::Edge => 12,
            BoundaryKind::Corner => 8,
        }
    }
}

/// Value generator for the benchmark matrix's stencil.
///
/// The symmetric HPG-MxP/HPCG matrix has `26` on the diagonal and `-1`
/// on every off-diagonal. The nonsymmetric option keeps the diagonal and
/// row-scale but biases "upwind" vs "downwind" neighbors by `gamma`
/// (entries become `-1 - gamma` toward lower-index neighbors and
/// `-1 + gamma` toward higher ones), preserving weak diagonal dominance
/// for `|gamma| <= 1`. Yamazaki et al. note the symmetric matrix is at
/// least as hard for GMRES, so the symmetric form is the default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stencil27 {
    /// Diagonal coefficient (26 in the benchmark).
    pub diagonal: f64,
    /// Magnitude of the nonsymmetric bias; 0 gives the symmetric matrix.
    pub gamma: f64,
}

impl Default for Stencil27 {
    fn default() -> Self {
        Stencil27::symmetric()
    }
}

impl Stencil27 {
    /// The benchmark's symmetric weakly diagonally dominant stencil.
    pub fn symmetric() -> Self {
        Stencil27 { diagonal: 26.0, gamma: 0.0 }
    }

    /// The nonsymmetric variant with upwind bias `gamma` in `(0, 1]`.
    pub fn nonsymmetric(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Stencil27 { diagonal: 26.0, gamma }
    }

    /// Whether this stencil generates a symmetric matrix.
    pub fn is_symmetric(&self) -> bool {
        self.gamma == 0.0
    }

    /// Matrix coefficient for the coupling at offset `(dx,dy,dz)`.
    #[inline]
    pub fn coefficient(&self, dx: i32, dy: i32, dz: i32) -> f64 {
        if (dx, dy, dz) == (0, 0, 0) {
            self.diagonal
        } else if self.gamma == 0.0 {
            -1.0
        } else {
            // Lexicographic sign of the offset decides upwind/downwind.
            let s = if dz != 0 {
                dz
            } else if dy != 0 {
                dy
            } else {
                dx
            };
            if s < 0 {
                -1.0 - self.gamma
            } else {
                -1.0 + self.gamma
            }
        }
    }
}

/// Classify a global point on an `gnx × gny × gnz` grid.
pub fn classify(gx: u64, gy: u64, gz: u64, gnx: u64, gny: u64, gnz: u64) -> BoundaryKind {
    let on = |c: u64, n: u64| -> u32 { u32::from(c == 0 || c == n - 1) };
    match on(gx, gnx) + on(gy, gny) + on(gz, gnz) {
        0 => BoundaryKind::Interior,
        1 => BoundaryKind::Face,
        2 => BoundaryKind::Edge,
        _ => BoundaryKind::Corner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_cover_cube_once() {
        let mut seen = std::collections::HashSet::new();
        for &(dx, dy, dz) in &STENCIL_OFFSETS {
            assert!((-1..=1).contains(&dx));
            assert!((-1..=1).contains(&dy));
            assert!((-1..=1).contains(&dz));
            assert!(seen.insert((dx, dy, dz)));
        }
        assert_eq!(seen.len(), 27);
    }

    #[test]
    fn offsets_are_lexicographic() {
        // dx fastest means the linearized key is monotone.
        let keys: Vec<i32> = STENCIL_OFFSETS
            .iter()
            .map(|&(dx, dy, dz)| (dz + 1) * 9 + (dy + 1) * 3 + (dx + 1))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn symmetric_coefficients() {
        let s = Stencil27::symmetric();
        assert_eq!(s.coefficient(0, 0, 0), 26.0);
        for &(dx, dy, dz) in &STENCIL_OFFSETS {
            if (dx, dy, dz) != (0, 0, 0) {
                assert_eq!(s.coefficient(dx, dy, dz), -1.0);
            }
        }
    }

    #[test]
    fn symmetric_is_weakly_diagonally_dominant() {
        let s = Stencil27::symmetric();
        let offdiag: f64 = STENCIL_OFFSETS
            .iter()
            .filter(|&&o| o != (0, 0, 0))
            .map(|&(dx, dy, dz)| s.coefficient(dx, dy, dz).abs())
            .sum();
        assert!(offdiag <= s.coefficient(0, 0, 0));
    }

    #[test]
    fn nonsymmetric_pairs_mirror() {
        // a(d) + a(-d) must equal -2 so that the total off-diagonal mass
        // (and hence dominance) matches the symmetric stencil.
        let s = Stencil27::nonsymmetric(0.5);
        for &(dx, dy, dz) in &STENCIL_OFFSETS {
            if (dx, dy, dz) == (0, 0, 0) {
                continue;
            }
            let a = s.coefficient(dx, dy, dz);
            let b = s.coefficient(-dx, -dy, -dz);
            assert!((a + b - (-2.0)).abs() < 1e-15);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn nonsymmetric_stays_dominant() {
        let s = Stencil27::nonsymmetric(1.0);
        let offdiag: f64 = STENCIL_OFFSETS
            .iter()
            .filter(|&&o| o != (0, 0, 0))
            .map(|&(dx, dy, dz)| s.coefficient(dx, dy, dz).abs())
            .sum();
        // 13 entries of -2 and 13 entries of 0: total magnitude 26.
        assert!((offdiag - 26.0).abs() < 1e-12);
        assert!(offdiag <= s.diagonal + 1e-12);
    }

    #[test]
    fn classify_kinds() {
        let (nx, ny, nz) = (10, 10, 10);
        assert_eq!(classify(5, 5, 5, nx, ny, nz), BoundaryKind::Interior);
        assert_eq!(classify(0, 5, 5, nx, ny, nz), BoundaryKind::Face);
        assert_eq!(classify(0, 0, 5, nx, ny, nz), BoundaryKind::Edge);
        assert_eq!(classify(0, 0, 0, nx, ny, nz), BoundaryKind::Corner);
        assert_eq!(classify(9, 9, 9, nx, ny, nz), BoundaryKind::Corner);
    }

    #[test]
    fn nnz_counts() {
        assert_eq!(BoundaryKind::Interior.nnz(), 27);
        assert_eq!(BoundaryKind::Face.nnz(), 18);
        assert_eq!(BoundaryKind::Edge.nnz(), 12);
        assert_eq!(BoundaryKind::Corner.nnz(), 8);
    }
}
