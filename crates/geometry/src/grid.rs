//! Local and global grid descriptors and index arithmetic.
//!
//! All index maps follow the HPCG convention: the x coordinate varies
//! fastest, so the linear index of point `(ix, iy, iz)` on an
//! `nx × ny × nz` grid is `ix + nx*(iy + ny*iz)`.

use crate::decomp::ProcGrid;

/// The global mesh: the union of all ranks' local boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalGrid {
    /// Global number of points in x.
    pub nx: u64,
    /// Global number of points in y.
    pub ny: u64,
    /// Global number of points in z.
    pub nz: u64,
}

impl GlobalGrid {
    /// Total number of grid points (matrix rows) in the global problem.
    pub fn total_points(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    /// Whether a global coordinate lies inside the domain.
    ///
    /// Coordinates are signed because stencil probing produces
    /// out-of-domain candidates at the physical boundary.
    pub fn contains(&self, gx: i64, gy: i64, gz: i64) -> bool {
        gx >= 0
            && gy >= 0
            && gz >= 0
            && (gx as u64) < self.nx
            && (gy as u64) < self.ny
            && (gz as u64) < self.nz
    }

    /// Linear global index of an in-domain point.
    pub fn index(&self, gx: u64, gy: u64, gz: u64) -> u64 {
        debug_assert!(self.contains(gx as i64, gy as i64, gz as i64));
        gx + self.nx * (gy + self.ny * gz)
    }

    /// Inverse of [`GlobalGrid::index`].
    pub fn coords(&self, idx: u64) -> (u64, u64, u64) {
        let gx = idx % self.nx;
        let gy = (idx / self.nx) % self.ny;
        let gz = idx / (self.nx * self.ny);
        (gx, gy, gz)
    }
}

/// One rank's sub-box of the global grid, together with its placement.
///
/// Every rank owns an identical `nx × ny × nz` box (HPCG requires uniform
/// local sizes and this implementation asserts it), so a `LocalGrid` is
/// fully described by the local extents, the owning rank's coordinates in
/// the processor grid, and the global grid they tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalGrid {
    /// Local points in x.
    pub nx: u32,
    /// Local points in y.
    pub ny: u32,
    /// Local points in z.
    pub nz: u32,
    /// This rank's coordinates `(ipx, ipy, ipz)` in the processor grid.
    pub rank_coords: (u32, u32, u32),
    /// The processor grid this box belongs to.
    pub procs: ProcGrid,
}

impl LocalGrid {
    /// Build the local box of `rank` for a run with `local = (nx,ny,nz)`
    /// points per rank on processor grid `procs`.
    pub fn new(local: (u32, u32, u32), procs: ProcGrid, rank: u32) -> Self {
        let rank_coords = procs.coords_of(rank);
        LocalGrid { nx: local.0, ny: local.1, nz: local.2, rank_coords, procs }
    }

    /// Number of locally-owned points (= locally-owned matrix rows).
    pub fn total_points(&self) -> usize {
        self.nx as usize * self.ny as usize * self.nz as usize
    }

    /// The global grid tiled by this decomposition.
    pub fn global(&self) -> GlobalGrid {
        GlobalGrid {
            nx: self.nx as u64 * self.procs.px as u64,
            ny: self.ny as u64 * self.procs.py as u64,
            nz: self.nz as u64 * self.procs.pz as u64,
        }
    }

    /// Global coordinate of the first (lowest-corner) local point.
    pub fn base(&self) -> (u64, u64, u64) {
        (
            self.rank_coords.0 as u64 * self.nx as u64,
            self.rank_coords.1 as u64 * self.ny as u64,
            self.rank_coords.2 as u64 * self.nz as u64,
        )
    }

    /// Linear local index of local coordinates `(ix, iy, iz)`.
    #[inline]
    pub fn index(&self, ix: u32, iy: u32, iz: u32) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        ix as usize + self.nx as usize * (iy as usize + self.ny as usize * iz as usize)
    }

    /// Inverse of [`LocalGrid::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (u32, u32, u32) {
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        ((idx % nx) as u32, ((idx / nx) % ny) as u32, (idx / (nx * ny)) as u32)
    }

    /// Global coordinates of a local point.
    #[inline]
    pub fn to_global(&self, ix: u32, iy: u32, iz: u32) -> (u64, u64, u64) {
        let (bx, by, bz) = self.base();
        (bx + ix as u64, by + iy as u64, bz + iz as u64)
    }

    /// If the global coordinate is owned by this rank, its local coords.
    pub fn to_local(&self, gx: i64, gy: i64, gz: i64) -> Option<(u32, u32, u32)> {
        let (bx, by, bz) = self.base();
        let (bx, by, bz) = (bx as i64, by as i64, bz as i64);
        if gx >= bx
            && gx < bx + self.nx as i64
            && gy >= by
            && gy < by + self.ny as i64
            && gz >= bz
            && gz < bz + self.nz as i64
        {
            Some(((gx - bx) as u32, (gy - by) as u32, (gz - bz) as u32))
        } else {
            None
        }
    }

    /// Which rank owns a global coordinate (must be inside the domain).
    pub fn owner_of(&self, gx: u64, gy: u64, gz: u64) -> u32 {
        let ipx = (gx / self.nx as u64) as u32;
        let ipy = (gy / self.ny as u64) as u32;
        let ipz = (gz / self.nz as u64) as u32;
        self.procs.rank_of(ipx, ipy, ipz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x2x2() -> LocalGrid {
        LocalGrid::new((4, 4, 4), ProcGrid::new(2, 2, 2), 3)
    }

    #[test]
    fn global_index_roundtrip() {
        let g = GlobalGrid { nx: 5, ny: 7, nz: 3 };
        for idx in 0..g.total_points() {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    fn local_index_roundtrip() {
        let lg = grid_2x2x2();
        for idx in 0..lg.total_points() {
            let (x, y, z) = lg.coords(idx);
            assert_eq!(lg.index(x, y, z), idx);
        }
    }

    #[test]
    fn base_and_ownership() {
        // Rank 3 of a 2x2x2 grid has coords (1,1,0): rank = x + px*(y + py*z).
        let lg = grid_2x2x2();
        assert_eq!(lg.rank_coords, (1, 1, 0));
        assert_eq!(lg.base(), (4, 4, 0));
        // A point in rank 3's box is owned by rank 3.
        assert_eq!(lg.owner_of(5, 6, 1), 3);
        // The global origin belongs to rank 0.
        assert_eq!(lg.owner_of(0, 0, 0), 0);
    }

    #[test]
    fn to_local_only_inside() {
        let lg = grid_2x2x2();
        assert_eq!(lg.to_local(4, 4, 0), Some((0, 0, 0)));
        assert_eq!(lg.to_local(3, 4, 0), None);
        assert_eq!(lg.to_local(7, 7, 3), Some((3, 3, 3)));
        assert_eq!(lg.to_local(8, 7, 3), None);
    }

    #[test]
    fn global_matches_tiling() {
        let lg = grid_2x2x2();
        let g = lg.global();
        assert_eq!((g.nx, g.ny, g.nz), (8, 8, 8));
        // Every local point maps into the domain.
        for idx in 0..lg.total_points() {
            let (x, y, z) = lg.coords(idx);
            let (gx, gy, gz) = lg.to_global(x, y, z);
            assert!(g.contains(gx as i64, gy as i64, gz as i64));
        }
    }
}
