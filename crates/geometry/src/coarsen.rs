//! Geometric-multigrid coarsening: the grid hierarchy and injection maps.
//!
//! HPG-MxP prescribes a fixed 4-level geometric multigrid preconditioner.
//! Each coarser level halves the local box in every dimension (8× fewer
//! points), and the restriction operator is *injection*: coarse point `i`
//! simply takes the fine value at its collocated fine point `cf(i)`
//! (equation (3) of the paper). Prolongation is the transpose: scatter
//! each coarse value back to its collocated fine point.
//!
//! Because coarsening is local (each rank halves its own box), the
//! processor grid is identical on all levels and the coarse problems are
//! re-discretizations of the same operator on the coarser mesh, exactly
//! as in HPCG.

use crate::grid::LocalGrid;

/// The injection maps between a fine level and the next coarser level.
#[derive(Debug, Clone)]
pub struct CoarseMap {
    /// `c2f[i_coarse]` = local index of the collocated fine point.
    ///
    /// The collocated point of coarse `(cx,cy,cz)` is fine
    /// `(2cx, 2cy, 2cz)` — the even sub-lattice, as in HPCG's
    /// `GenerateCoarseProblem`.
    pub c2f: Vec<u32>,
    /// Number of fine-level local points.
    pub n_fine: usize,
    /// Number of coarse-level local points (`n_fine / 8`).
    pub n_coarse: usize,
}

impl CoarseMap {
    /// Build the injection map from `fine` down to its halved box.
    ///
    /// Panics if any local extent is odd — the benchmark requires local
    /// sizes divisible by `2^(levels-1)`.
    pub fn build(fine: &LocalGrid) -> Self {
        assert!(
            fine.nx.is_multiple_of(2) && fine.ny.is_multiple_of(2) && fine.nz.is_multiple_of(2),
            "local grid {}x{}x{} is not coarsenable (odd extent)",
            fine.nx,
            fine.ny,
            fine.nz
        );
        let (cnx, cny, cnz) = (fine.nx / 2, fine.ny / 2, fine.nz / 2);
        let n_coarse = cnx as usize * cny as usize * cnz as usize;
        let mut c2f = Vec::with_capacity(n_coarse);
        for cz in 0..cnz {
            for cy in 0..cny {
                for cx in 0..cnx {
                    c2f.push(fine.index(2 * cx, 2 * cy, 2 * cz) as u32);
                }
            }
        }
        CoarseMap { c2f, n_fine: fine.total_points(), n_coarse }
    }

    /// Apply restriction by injection: `coarse[i] = fine[c2f[i]]`.
    pub fn restrict_into<T: Copy>(&self, fine: &[T], coarse: &mut [T]) {
        debug_assert!(fine.len() >= self.n_fine);
        debug_assert_eq!(coarse.len(), self.n_coarse);
        for (c, &f) in coarse.iter_mut().zip(self.c2f.iter()) {
            *c = fine[f as usize];
        }
    }

    /// Apply prolongation (the transpose of injection) *additively*:
    /// `fine[c2f[i]] += coarse[i]`. Non-collocated fine points are
    /// untouched, matching the paper's `P = Rᵀ`.
    pub fn prolong_add_f64(&self, coarse: &[f64], fine: &mut [f64]) {
        debug_assert_eq!(coarse.len(), self.n_coarse);
        for (i, &c) in coarse.iter().enumerate() {
            fine[self.c2f[i] as usize] += c;
        }
    }

    /// Single-precision variant of [`CoarseMap::prolong_add_f64`].
    pub fn prolong_add_f32(&self, coarse: &[f32], fine: &mut [f32]) {
        debug_assert_eq!(coarse.len(), self.n_coarse);
        for (i, &c) in coarse.iter().enumerate() {
            fine[self.c2f[i] as usize] += c;
        }
    }
}

/// The full multigrid grid hierarchy of one rank.
///
/// `grids[0]` is the fine (benchmark) grid; `grids[l+1]` is the halved
/// version of `grids[l]`; `maps[l]` connects level `l` to level `l+1`.
#[derive(Debug, Clone)]
pub struct GridHierarchy {
    /// Local grids, finest first.
    pub grids: Vec<LocalGrid>,
    /// Injection maps, `maps[l]`: level `l` → level `l+1`.
    pub maps: Vec<CoarseMap>,
}

impl GridHierarchy {
    /// Build `levels` grids (the benchmark uses 4). The fine local box
    /// must be divisible by `2^(levels-1)` in every dimension.
    pub fn build(fine: &LocalGrid, levels: usize) -> Self {
        assert!(levels >= 1, "hierarchy needs at least one level");
        let div = 1u32 << (levels - 1);
        assert!(
            fine.nx.is_multiple_of(div)
                && fine.ny.is_multiple_of(div)
                && fine.nz.is_multiple_of(div),
            "local grid {}x{}x{} not divisible by 2^{} for {} levels",
            fine.nx,
            fine.ny,
            fine.nz,
            levels - 1,
            levels
        );
        let mut grids = vec![*fine];
        let mut maps = Vec::new();
        for l in 0..levels - 1 {
            let cur = grids[l];
            maps.push(CoarseMap::build(&cur));
            grids.push(LocalGrid {
                nx: cur.nx / 2,
                ny: cur.ny / 2,
                nz: cur.nz / 2,
                rank_coords: cur.rank_coords,
                procs: cur.procs,
            });
        }
        GridHierarchy { grids, maps }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.grids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::ProcGrid;

    #[test]
    fn c2f_hits_even_sublattice() {
        let fine = LocalGrid::new((8, 8, 8), ProcGrid::new(1, 1, 1), 0);
        let map = CoarseMap::build(&fine);
        assert_eq!(map.n_coarse, 64);
        for &f in &map.c2f {
            let (x, y, z) = fine.coords(f as usize);
            assert_eq!(x % 2, 0);
            assert_eq!(y % 2, 0);
            assert_eq!(z % 2, 0);
        }
        // Injection points are distinct.
        let set: std::collections::HashSet<u32> = map.c2f.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn restrict_then_prolong_is_injection_times_transpose() {
        let fine = LocalGrid::new((4, 4, 4), ProcGrid::new(1, 1, 1), 0);
        let map = CoarseMap::build(&fine);
        let fine_vals: Vec<f64> = (0..fine.total_points()).map(|i| i as f64).collect();
        let mut coarse = vec![0.0; map.n_coarse];
        map.restrict_into(&fine_vals, &mut coarse);
        // R v picks the even sub-lattice values.
        for (i, &c) in coarse.iter().enumerate() {
            assert_eq!(c, map.c2f[i] as f64);
        }
        // P (R v) puts them back (additively over zero).
        let mut back = vec![0.0; fine.total_points()];
        map.prolong_add_f64(&coarse, &mut back);
        for (i, &v) in back.iter().enumerate() {
            if map.c2f.contains(&(i as u32)) {
                assert_eq!(v, i as f64);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn four_level_hierarchy() {
        let fine = LocalGrid::new((16, 16, 16), ProcGrid::new(2, 1, 1), 1);
        let h = GridHierarchy::build(&fine, 4);
        assert_eq!(h.levels(), 4);
        let sizes: Vec<usize> = h.grids.iter().map(|g| g.total_points()).collect();
        assert_eq!(sizes, vec![4096, 512, 64, 8]);
        // Processor grid is identical on all levels.
        for g in &h.grids {
            assert_eq!(g.procs, fine.procs);
            assert_eq!(g.rank_coords, fine.rank_coords);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_box_panics() {
        let fine = LocalGrid::new((12, 12, 12), ProcGrid::new(1, 1, 1), 0);
        GridHierarchy::build(&fine, 4); // 12 / 8 is not integral
    }

    #[test]
    fn prolong_f32_matches_f64() {
        let fine = LocalGrid::new((4, 4, 4), ProcGrid::new(1, 1, 1), 0);
        let map = CoarseMap::build(&fine);
        let coarse64: Vec<f64> = (0..map.n_coarse).map(|i| (i as f64) * 0.5).collect();
        let coarse32: Vec<f32> = coarse64.iter().map(|&v| v as f32).collect();
        let mut f64out = vec![1.0f64; map.n_fine];
        let mut f32out = vec![1.0f32; map.n_fine];
        map.prolong_add_f64(&coarse64, &mut f64out);
        map.prolong_add_f32(&coarse32, &mut f32out);
        for (a, b) in f64out.iter().zip(f32out.iter()) {
            assert!((*a - *b as f64).abs() < 1e-6);
        }
    }
}
