//! Structured-grid geometry for the HPG-MxP benchmark problem.
//!
//! HPG-MxP (like HPCG) discretizes a Poisson-type operator with a 27-point
//! finite-difference stencil on a uniform Cartesian mesh over a box-shaped
//! domain. The mesh is block-decomposed over a 3D grid of processors; every
//! processor owns an identical `nx × ny × nz` sub-box of points.
//!
//! This crate owns everything that is *pure geometry*:
//!
//! * [`grid`] — local/global grid descriptors and index arithmetic,
//! * [`decomp`] — factoring `P` ranks into a near-cubic 3D processor grid,
//! * [`stencil`] — the 27-point stencil and boundary classification,
//! * [`halo`] — neighbor discovery and the send/ghost index plans used by
//!   the halo exchange (the structural equivalent of HPCG's `SetupHalo`),
//! * [`coarsen`] — the geometric-multigrid coarse-grid hierarchy with the
//!   injection maps used by the benchmark's restriction operator.
//!
//! Nothing in this crate allocates matrices or talks to the communication
//! layer; it only produces index sets that the assembly code in
//! `hpgmxp-core` and the exchange code in `hpgmxp-comm` consume.

pub mod coarsen;
pub mod decomp;
pub mod grid;
pub mod halo;
pub mod stencil;

pub use coarsen::{CoarseMap, GridHierarchy};
pub use decomp::ProcGrid;
pub use grid::{GlobalGrid, LocalGrid};
pub use halo::{HaloPlan, Neighbor};
pub use stencil::{BoundaryKind, Stencil27, STENCIL_OFFSETS};
