//! Shared helpers for the benchmark harness binaries and Criterion
//! benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); the Criterion benches in
//! `benches/` measure the real CPU kernels, providing the
//! measured-on-this-machine counterpart to the modeled numbers.
//!
//! Binaries read a small set of environment variables so the same
//! target can run laptop-sized or larger:
//!
//! * `HPGMXP_LOCAL_N` — local box edge (default 16; must be divisible
//!   by 8 for 4 multigrid levels),
//! * `HPGMXP_RANKS` — thread-rank count for real runs (default 4),
//! * `HPGMXP_SOLVES` — timed solves per phase (default 1).

use hpgmxp_core::config::BenchmarkParams;
use hpgmxp_core::problem::{assemble, LocalProblem, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};

/// Read an env var with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Benchmark parameters scaled for a workstation run, honoring the
/// `HPGMXP_*` environment overrides.
pub fn workstation_params() -> BenchmarkParams {
    let n = env_usize("HPGMXP_LOCAL_N", 16) as u32;
    assert!(n.is_multiple_of(8), "HPGMXP_LOCAL_N must be divisible by 8");
    BenchmarkParams {
        local_dims: (n, n, n),
        benchmark_solves: env_usize("HPGMXP_SOLVES", 1),
        max_iters_per_solve: env_usize("HPGMXP_ITERS", 60),
        validation_max_iters: 2000,
        ..Default::default()
    }
}

/// Thread-rank count for real runs.
pub fn workstation_ranks() -> usize {
    env_usize("HPGMXP_RANKS", 4)
}

/// A single-rank problem for kernel benches.
pub fn single_rank_problem(n: u32, levels: usize) -> LocalProblem {
    assemble(
        &ProblemSpec {
            local: (n, n, n),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 42,
        },
        0,
    )
}

/// Render a two-column numeric series as an aligned text table.
pub fn series_table(
    title: &str,
    xlabel: &str,
    ylabels: &[&str],
    rows: &[(f64, Vec<f64>)],
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "# {}", title);
    let _ = write!(s, "{:>12}", xlabel);
    for y in ylabels {
        let _ = write!(s, " {:>14}", y);
    }
    let _ = writeln!(s);
    for (x, ys) in rows {
        let _ = write!(s, "{:>12}", x);
        for y in ys {
            let _ = write!(s, " {:>14.4}", y);
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_respect_env_defaults() {
        let p = workstation_params();
        assert_eq!(p.local_dims.0 % 8, 0);
        assert!(p.benchmark_solves >= 1);
    }

    #[test]
    fn problem_helper_builds() {
        let p = single_rank_problem(8, 2);
        assert_eq!(p.n_local(), 512);
    }

    #[test]
    fn table_renders() {
        let t = series_table("demo", "x", &["a", "b"], &[(1.0, vec![2.0, 3.0])]);
        assert!(t.contains("demo"));
        assert!(t.contains("2.0000"));
    }
}
