//! Regenerates **Table 2**: iteration ratios `n_d / n_ir` under the
//! `standard` and `fullscale` validation methods, plus the full-scale
//! achieved residual norm.
//!
//! The paper runs 2–4096 Frontier nodes with 320³ points per GCD; this
//! reproduction runs real distributed solves on thread-ranks at
//! workstation scale (the ratio band ~0.95–1.07 is the shape target —
//! see EXPERIMENTS.md) and prints the paper's measured rows alongside
//! for comparison.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin table2_validation`

use hpgmxp_bench::{env_usize, workstation_params};
use hpgmxp_core::benchmark::{validate, ValidationMode};
use hpgmxp_core::config::ImplVariant;

fn main() {
    let params = workstation_params();
    let max_ranks = env_usize("HPGMXP_RANKS", 8);
    println!(
        "Table 2 (measured, {}^3 per rank): iteration ratios nd/nir for the two validation methods",
        params.local_dims.0
    );
    println!(
        "{:>6} {:>6} {:>6} {:>10} | {:>6} {:>6} {:>10} {:>16}",
        "ranks", "nd", "nir", "std ratio", "nd", "nir", "fs ratio", "fs rel residual"
    );
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let std = validate(&params, ImplVariant::Optimized, ranks, ValidationMode::Standard);
        let fs = validate(&params, ImplVariant::Optimized, ranks, ValidationMode::FullScale);
        println!(
            "{:>6} {:>6} {:>6} {:>10.3} | {:>6} {:>6} {:>10.3} {:>16.3e}",
            ranks, std.nd, std.nir, std.ratio, fs.nd, fs.nir, fs.ratio, fs.achieved_relres
        );
        ranks *= 2;
    }

    println!();
    println!("Paper (Frontier, 320^3 per GCD, 8 GCDs/node):");
    println!(
        "{:>6} {:>10} {:>16} {:>18}",
        "nodes", "std ratio", "full-scale ratio", "fs rel residual"
    );
    for (nodes, std_r, fs_r, res) in [
        (2, 0.968, 0.966, 9.98e-10),
        (8, 0.968, 1.008, 9.99e-10),
        (64, 0.968, 1.050, 1.65e-6),
        (128, 0.968, 1.023, 2.82e-6),
        (1024, 0.968, 1.067, 1.154e-5),
        (4096, 0.968, 0.958, 1.148e-5),
    ] {
        println!("{:>6} {:>10.3} {:>16.3} {:>18.3e}", nodes, std_r, fs_r, res);
    }
    println!();
    println!("Paper 1-node validation: nd = 2305, nir = 2382 (ratio 0.968).");
}
