//! Ablation of the paper's §3.2 optimizations, one at a time, on the
//! machine model — quantifying what each contributes to the
//! present-vs-xsdk gap of figure 4 — plus the **precision-policy
//! sweep**: every shipped [`PrecisionPolicy`] run end to end in one
//! invocation, with measured GF/s, measured bytes/iteration, the
//! GMRES-IR iteration-penalty ratio, and an exact reconciliation of
//! the measured matrix + halo traffic against the policy-aware machine
//! model. The sweep *asserts* the headline claim: fp32-stored /
//! f64-accumulated SpMV moves exactly half the matrix-value bytes of
//! the all-f64 policy — measured from the matrices the kernels
//! actually traversed, not modeled.
//!
//! The implementation variants bundle several changes (format, GS
//! algorithm, fusion, overlap, device-side mixed ops). This harness
//! prices intermediate configurations so each §3.2 item gets its own
//! line, plus a measured CGS2-vs-MGS orthogonalization comparison
//! (§3's discussion of reorthogonalization).
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin ablation_study`
//! (env: `HPGMXP_LOCAL_N`, `HPGMXP_ITERS` scale the measured sweep).

use hpgmxp_bench::{env_usize, single_rank_problem};
use hpgmxp_comm::{run_spmd, Comm, SelfComm, Timeline};
use hpgmxp_core::benchmark::{run_policy_phase, validate_policy};
use hpgmxp_core::config::{BenchmarkParams, ImplVariant};
use hpgmxp_core::motifs::{Motif, MotifStats};
use hpgmxp_core::ops::{dist_gs_sweep, dist_spmv, OpCtx, SweepDir};
use hpgmxp_core::ortho::{cgs2, mgs, orthogonality_defect};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_core::problem::{assemble_with_policy, Level, ProblemSpec};
use hpgmxp_machine::kernels;
use hpgmxp_machine::workload::Workload;
use hpgmxp_machine::{MachineModel, NetworkModel};
use hpgmxp_sparse::blas::Basis;
use hpgmxp_sparse::{Half, PrecKind, Scalar};

/// Per-policy measured fine-grid kernel traffic: one SpMV application
/// plus one GS sweep on the fine level of rank 0 (ranks are symmetric
/// at P=2).
#[derive(Debug, Clone, Copy)]
struct MeasuredTraffic {
    /// Matrix-value bytes of one SpMV (storage precision).
    spmv_value: f64,
    /// Total data bytes of one SpMV.
    spmv_total: f64,
    /// Wire bytes of one halo exchange.
    wire: f64,
    /// Matrix-value bytes of one GS sweep.
    gs_value: f64,
}

fn measure_in<S: Scalar, C: Comm>(
    c: &C,
    level: &Level,
    policy: &PrecisionPolicy,
) -> MeasuredTraffic {
    let tl = Timeline::disabled();
    let ctx = OpCtx::with_prec(c, ImplVariant::Optimized, &tl, policy.ctx());
    let n = level.vec_len();
    let mut x: Vec<S> = (0..n).map(|i| S::from_f64(((i % 13) as f64) * 0.05)).collect();
    let mut y = vec![S::ZERO; level.n_local()];
    let mut spmv_stats = MotifStats::new();
    dist_spmv(&ctx, level, &mut spmv_stats, 10, &mut x, &mut y);
    let mut gs_stats = MotifStats::new();
    let r: Vec<S> = (0..level.n_local()).map(|i| S::from_f64((i % 7) as f64)).collect();
    dist_gs_sweep(&ctx, level, &mut gs_stats, 11, SweepDir::Forward, &r, &mut x);
    MeasuredTraffic {
        spmv_value: spmv_stats.value_bytes(Motif::SpMV),
        spmv_total: spmv_stats.bytes(Motif::SpMV),
        wire: spmv_stats.bytes(Motif::Comm),
        gs_value: gs_stats.value_bytes(Motif::GaussSeidel),
    }
}

fn measure_policy(
    params: &BenchmarkParams,
    ranks: usize,
    policy: &PrecisionPolicy,
) -> MeasuredTraffic {
    let spec = ProblemSpec::from_params(params, ranks);
    let policy = policy.clone();
    let results = run_spmd(ranks, move |c| {
        let prob = assemble_with_policy(&spec, c.rank(), &policy);
        let l = &prob.levels[0];
        match policy.compute {
            PrecKind::F64 => measure_in::<f64, _>(&c, l, &policy),
            PrecKind::F32 => measure_in::<f32, _>(&c, l, &policy),
            PrecKind::F16 => measure_in::<Half, _>(&c, l, &policy),
        }
    });
    results[0]
}

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
        "{what}: measured {a} vs modeled {b} do not reconcile"
    );
}

/// The precision-policy sweep: ≥6 runtime-selected policies, one
/// invocation, measured + reconciled.
fn policy_sweep() {
    let n = env_usize("HPGMXP_LOCAL_N", 16) as u32;
    let ranks = 2usize; // P=2: both ranks share the middle-rank surface, so
                        // measured wire bytes reconcile exactly with the model
    let params = BenchmarkParams {
        local_dims: (n, n, n),
        max_iters_per_solve: env_usize("HPGMXP_ITERS", 60),
        validation_max_iters: 4000,
        ..Default::default()
    };
    let wl = Workload::build((n, n, n), params.mg_levels, params.restart, ranks);
    let policies = PrecisionPolicy::shipped();
    assert!(policies.len() >= 6, "the sweep must cover at least 6 policies");

    println!(
        "== Precision-policy sweep (measured; P={} thread-ranks, {}^3 local, {} MG levels) ==",
        ranks, n, params.mg_levels
    );
    println!(
        "   storage/compute/wire per policy; GF/s raw; measured bytes per inner iteration per rank;"
    );
    println!("   nd/nir iteration penalty; SpMV matrix-value bytes vs the all-f64 policy\n");
    println!(
        "{:<10} {:>20} {:>8} {:>13} {:>11} {:>9} {:>14}",
        "policy", "storage/cmp/wire", "GF/s", "bytes/iter", "nd/nir", "penalty", "spmv value B"
    );

    let mut spmv_value_of: Vec<(String, f64)> = Vec::new();
    for policy in &policies {
        // Measured kernel traffic, reconciled exactly against the
        // policy-aware machine model (matrix term + wire term).
        let m = measure_policy(&params, ranks, policy);
        close(
            m.spmv_value,
            wl.policy_value_bytes(policy, 0),
            &format!("{} spmv value", policy.name),
        );
        close(m.gs_value, wl.policy_value_bytes(policy, 0), &format!("{} gs value", policy.name));
        close(
            m.spmv_total,
            wl.policy_matrix_bytes(policy, 0) + 2.0 * wl.fine().n * policy.compute.bytes() as f64,
            &format!("{} spmv total", policy.name),
        );
        close(m.wire, wl.policy_wire_bytes(policy, 0), &format!("{} wire", policy.name));

        // Iteration penalty (both solvers to 1e-9) and a timed phase.
        let v = validate_policy(&params, ImplVariant::Optimized, ranks, policy);
        let phase = run_policy_phase(&params, ImplVariant::Optimized, ranks, policy);

        let short = |k: PrecKind| &k.name()[2..]; // "64"/"32"/"16"
        let sto: Vec<&str> = (0..params.mg_levels).map(|d| short(policy.storage_at(d))).collect();
        println!(
            "{:<10} {:>20} {:>8.3} {:>13.0} {:>6}/{:<6} {:>7.3} {:>14.0}",
            policy.name,
            format!("{}/c{}/w{}", sto.join("."), short(policy.compute), short(policy.wire)),
            phase.gflops_raw,
            phase.bytes_per_iteration(),
            v.nd,
            v.nir,
            v.penalty,
            m.spmv_value,
        );
        spmv_value_of.push((policy.name.clone(), m.spmv_value));
    }

    // The standalone-fp16 stress configuration rides along as an
    // extra row: it may legitimately break down (the §5 caveat the
    // f16s-f32c policy exists to avoid), so it reports honestly
    // instead of asserting convergence.
    {
        let stress = PrecisionPolicy::stress_f16();
        let m = measure_policy(&params, ranks, &stress);
        close(m.spmv_value, wl.policy_value_bytes(&stress, 0), "f16 stress spmv value");
        let spec = ProblemSpec::from_params(&params, ranks);
        let sp2 = stress.clone();
        let outcomes = run_spmd(ranks, move |c| {
            let prob = assemble_with_policy(&spec, c.rank(), &sp2);
            let tl = Timeline::disabled();
            let opts = hpgmxp_core::gmres::GmresOptions {
                max_iters: 4000,
                tol: 1e-9,
                ..Default::default()
            };
            let (_, st) = hpgmxp_core::gmres_ir::gmres_ir_solve_policy(&c, &prob, &sp2, &opts, &tl);
            (st.converged, st.iters, st.final_relres)
        });
        let (conv, nir, relres) = outcomes[0];
        if conv {
            println!(
                "{:<10} {:>20} {:>8} {:>13} {:>6}/{:<6} {:>7} {:>14.0}  (stress)",
                stress.name, "16.16.16.16/c16/w16", "-", "-", "-", nir, "-", m.spmv_value
            );
        } else {
            println!(
                "{:<10} {:>20}  breakdown at relres {:.3e} — the §5 standalone-fp16 failure mode \
                 the f16s-f32c policy avoids",
                stress.name, "16.16.16.16/c16/w16", relres
            );
        }
    }

    let value = |name: &str| {
        spmv_value_of.iter().find(|(n, _)| n == name).map(|(_, v)| *v).expect("policy measured")
    };
    // The acceptance claim, measured not modeled: fp32 storage under
    // f64 accumulation moves exactly half the matrix-value bytes of
    // the all-f64 policy on SpMV (indices are unchanged — that is why
    // end-to-end speedups stay below 2x, §4).
    let ratio = value("f64") / value("f32s-f64c");
    assert!(
        (ratio - 2.0).abs() < 1e-9,
        "fp32-storage/f64-accumulate must halve the measured SpMV matrix-value traffic, got {ratio}"
    );
    println!("\n  measured SpMV matrix-value traffic, f64/f64 vs f32s-f64c: {ratio:.3}x");
    let r16 = value("f64") / value("f16s-f32c");
    println!("  measured SpMV matrix-value traffic, f64/f64 vs f16s-f32c: {r16:.3}x");
    println!("  (all matrix + halo byte measurements reconciled exactly against the policy-aware machine model)\n");
}

fn main() {
    policy_sweep();
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let wl = Workload::build((320, 320, 320), 4, 30, 512 * 8);
    let s = wl.fine();
    let sb = 4usize; // mixed inner precision
    let g = machine.gather_factor;

    println!("Per-sweep fine-grid Gauss-Seidel cost (modeled, f32, 320^3, ms):\n");
    // (1) level-scheduled two-kernel reference GS.
    let kc_ref = kernels::gs_reference_csr(s, sb, g);
    let rows_per_stage = s.n / s.sched_stages as f64;
    let eff = machine.stage_bandwidth_efficiency(rows_per_stage);
    let t_ref = kc_ref.bytes / (machine.mem_bw * eff)
        + (s.sched_stages as f64 + 1.0) * 2.0 * machine.launch_overhead;
    // (2) multicolor relaxation, still CSR-like traffic (two passes fused to one).
    let kc_mc_csr = kernels::spmv_csr(s, sb, g); // one pass over CSR + vector work
    let t_mc_csr = kc_mc_csr.bytes / machine.mem_bw + s.colors as f64 * machine.launch_overhead;
    // (3) multicolor relaxation on ELL (the optimized kernel).
    let kc_mc_ell = kernels::gs_multicolor_ell(s, sb, g);
    let t_mc_ell = kc_mc_ell.bytes / machine.mem_bw + s.colors as f64 * machine.launch_overhead;

    println!(
        "  §3.1 reference (SpMV+SpTRSV, level-sched): {:>8.2}  ({} stages, {:.0}% stage bw)",
        t_ref * 1e3,
        s.sched_stages,
        eff * 100.0
    );
    println!("  §3.2.1 multicolor relaxation (one sweep):  {:>8.2}", t_mc_csr * 1e3);
    println!("  §3.2.2 + ELL format:                       {:>8.2}", t_mc_ell * 1e3);
    println!(
        "  -> multicoloring alone buys {:.1}x; the format is a second-order refinement\n",
        t_ref / t_mc_csr
    );

    println!("Restriction cost per V-cycle level 0 (modeled, f32, ms):");
    let kc_runf = kernels::reference_restrict(s, sb, g);
    let kc_rf = kernels::fused_restrict(s, sb, g);
    println!(
        "  §3.1 unfused (full residual + inject): {:>8.2}",
        kc_runf.bytes / machine.mem_bw * 1e3
    );
    println!(
        "  §3.2.4 fused at coarse points:         {:>8.2}  ({:.1}x)\n",
        kc_rf.bytes / machine.mem_bw * 1e3,
        kc_runf.bytes / kc_rf.bytes
    );

    println!("Communication exposure per fine-grid sweep (modeled, ms):");
    let comm = net.halo_time(s.halo_msgs, s.halo_values * sb as f64);
    let compute = kc_mc_ell.bytes / machine.mem_bw;
    let window = compute * s.interior_frac / s.colors as f64;
    println!("  halo exchange:              {:>8.3}", comm * 1e3);
    println!("  hideable window (§3.2.3):   {:>8.3}", window * 1e3);
    println!("  exposed with overlap:       {:>8.3}", (comm - window).max(0.0) * 1e3);
    println!("  exposed without overlap:    {:>8.3}\n", comm * 1e3);

    println!("Host-side mixed vector ops (§3.1 item 6) per restart, 320^3 (modeled, ms):");
    let n = s.n;
    let host = machine.host_copy_time(4.0 * n * 8.0);
    let device = kernels::scale_narrow(n).bytes / machine.mem_bw
        + kernels::axpy_mixed(n).bytes / machine.mem_bw;
    println!(
        "  host round-trips: {:>8.2}   fused device kernels (§3.2.5): {:>8.3}  ({:.0}x)\n",
        host * 1e3,
        device * 1e3,
        host / device
    );

    // Measured: CGS2 vs MGS orthogonality quality and the all-reduce count.
    println!("Measured orthogonalization quality (40 basis vectors, 16^3 problem, f32):");
    let prob = single_rank_problem(16, 1);
    let n_loc = prob.n_local();
    let comm = SelfComm;
    let build_basis = || {
        let mut q: Basis<f32> = Basis::new(n_loc, 41);
        for j in 0..41 {
            for (i, v) in q.col_mut(j).iter_mut().enumerate() {
                *v = ((i * (j + 1)) as f32 * 0.00173).sin() + 0.8 * ((i + 1) as f32 * 0.0019).cos();
            }
        }
        let nrm = hpgmxp_sparse::blas::norm2_sq(q.col(0)).sqrt();
        hpgmxp_sparse::blas::scal(1.0 / nrm, q.col_mut(0));
        q
    };
    let mut stats = MotifStats::new();
    let mut q1 = build_basis();
    for k in 1..41 {
        cgs2(&comm, &mut stats, &mut q1, k);
    }
    let mut q2 = build_basis();
    for k in 1..41 {
        mgs(&comm, &mut stats, &mut q2, k);
    }
    println!(
        "  CGS2 (2 all-reduces/iter): max |q_i . q_j| = {:.3e}",
        orthogonality_defect(&comm, &q1, 41)
    );
    println!(
        "  MGS  (k all-reduces/iter): max |q_i . q_j| = {:.3e}",
        orthogonality_defect(&comm, &q2, 41)
    );
    println!("  -> CGS2 buys blocked reductions (2 vs k all-reduces) at comparable orthogonality,");
    println!("     the §3/§4.1 rationale for the benchmark's choice.");
}
