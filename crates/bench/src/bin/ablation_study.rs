//! Ablation of the paper's §3.2 optimizations, one at a time, on the
//! machine model — quantifying what each contributes to the
//! present-vs-xsdk gap of figure 4 — plus the **precision-policy
//! sweep**: every shipped [`PrecisionPolicy`] run end to end in one
//! invocation, with measured GF/s, measured bytes/iteration, the
//! GMRES-IR iteration-penalty ratio, and an exact reconciliation of
//! the measured matrix + halo traffic against the policy-aware machine
//! model. The sweep *asserts* the headline claim: fp32-stored /
//! f64-accumulated SpMV moves exactly half the matrix-value bytes of
//! the all-f64 policy — measured from the matrices the kernels
//! actually traversed, not modeled.
//!
//! The implementation variants bundle several changes (format, GS
//! algorithm, fusion, overlap, device-side mixed ops). This harness
//! prices intermediate configurations so each §3.2 item gets its own
//! line, plus a measured CGS2-vs-MGS orthogonalization comparison
//! (§3's discussion of reorthogonalization).
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin ablation_study`
//! (env: `HPGMXP_LOCAL_N`, `HPGMXP_ITERS` scale the measured sweep).

use hpgmxp_bench::{env_usize, single_rank_problem};
use hpgmxp_comm::SelfComm;
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::MotifStats;
use hpgmxp_core::ortho::{cgs2, mgs, orthogonality_defect};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_harness::{
    run_campaign, CampaignSpec, CellStatus, PolicyRef, SeriesMode, SeriesSpec, SPEC_SCHEMA,
};
use hpgmxp_machine::kernels;
use hpgmxp_machine::workload::Workload;
use hpgmxp_machine::{MachineModel, NetworkModel};
use hpgmxp_sparse::blas::Basis;
use hpgmxp_sparse::PrecKind;

/// The precision-policy sweep: ≥6 runtime-selected policies, one
/// invocation, measured + reconciled — a thin frontend over the
/// campaign engine's Hybrid mode, which owns the measurement and the
/// exact byte-model reconciliation this binary used to hand-roll.
fn policy_sweep() {
    let n = env_usize("HPGMXP_LOCAL_N", 16) as u32;
    let ranks = 2usize; // P=2: both ranks share the middle-rank surface, so
                        // measured wire bytes reconcile exactly with the model
    let policies = PrecisionPolicy::shipped();
    assert!(policies.len() >= 6, "the sweep must cover at least 6 policies");
    let hybrid = |label: &str, refs: Vec<PolicyRef>| SeriesSpec {
        label: label.to_string(),
        mode: SeriesMode::Hybrid,
        variant: ImplVariant::Optimized,
        policies: refs,
        ranks: vec![ranks],
        nodes: vec![], // measurement + reconciliation only; the
        // policy_sweep campaign spec adds the at-scale projection
        modeled_local: None,
        penalty: None,
    };
    let spec = CampaignSpec {
        schema: SPEC_SCHEMA,
        name: "ablation_policy_sweep".into(),
        description: "measured precision-policy sweep, byte-reconciled".into(),
        local: (n, n, n),
        mg_levels: 4,
        restart: 30,
        iters_per_solve: env_usize("HPGMXP_ITERS", 60),
        benchmark_solves: 1,
        validation_max_iters: 4000,
        machine: "mi250x_gcd".into(),
        network: "frontier_slingshot".into(),
        series: vec![
            hybrid("sweep", policies.iter().map(|p| PolicyRef::by_name(&p.name)).collect()),
            // The standalone-fp16 stress configuration rides along: it
            // may legitimately break down (the §5 caveat the f16s-f32c
            // policy exists to avoid), in which case its cell is
            // Unrated and prints honestly instead of asserting.
            hybrid("stress", vec![PolicyRef::by_name("f16")]),
        ],
    };
    let report = run_campaign(&spec).expect("policy sweep campaign");

    println!(
        "== Precision-policy sweep (measured; P={} thread-ranks, {}^3 local, {} MG levels) ==",
        ranks, n, spec.mg_levels
    );
    println!(
        "   storage/compute/wire per policy; GF/s raw; measured bytes per inner iteration per rank;"
    );
    println!("   nd/nir iteration penalty; SpMV matrix-value bytes vs the all-f64 policy\n");
    println!(
        "{:<10} {:>20} {:>8} {:>13} {:>11} {:>9} {:>14}",
        "policy", "storage/cmp/wire", "GF/s", "bytes/iter", "nd/nir", "penalty", "spmv value B"
    );

    let short = |k: PrecKind| &k.name()[2..]; // "64"/"32"/"16"
    let axes = |p: &PrecisionPolicy| {
        let sto: Vec<&str> = (0..spec.mg_levels).map(|d| short(p.storage_at(d))).collect();
        format!("{}/c{}/w{}", sto.join("."), short(p.compute), short(p.wire))
    };
    for cell in &report.cells {
        let policy = PrecisionPolicy::by_name(&cell.policy).expect("shipped policy");
        let stress = if cell.series == "stress" { "  (stress)" } else { "" };
        match cell.status {
            CellStatus::Rated => println!(
                "{:<10} {:>20} {:>8.3} {:>13.0} {:>6}/{:<6} {:>7.3} {:>14.0}{}",
                cell.policy,
                axes(&policy),
                cell.gflops_per_rank_raw.unwrap(),
                cell.bytes_per_iter_rank.unwrap(),
                cell.nd.unwrap(),
                cell.nir.unwrap(),
                cell.penalty.unwrap(),
                cell.spmv_value_bytes.unwrap(),
                stress,
            ),
            CellStatus::Unrated => println!(
                "{:<10} {:>20}  n/c — {} — the §5 standalone-fp16 failure mode the f16s-f32c \
                 policy avoids",
                cell.policy,
                axes(&policy),
                cell.note,
            ),
        }
    }

    let value = |name: &str| {
        report
            .find_cell("sweep", name, None, Some(ranks))
            .and_then(|c| c.spmv_value_bytes)
            .expect("policy measured")
    };
    // The acceptance claim, measured not modeled: fp32 storage under
    // f64 accumulation moves exactly half the matrix-value bytes of
    // the all-f64 policy on SpMV (indices are unchanged — that is why
    // end-to-end speedups stay below 2x, §4).
    let ratio = value("f64") / value("f32s-f64c");
    assert!(
        (ratio - 2.0).abs() < 1e-9,
        "fp32-storage/f64-accumulate must halve the measured SpMV matrix-value traffic, got {ratio}"
    );
    println!("\n  measured SpMV matrix-value traffic, f64/f64 vs f32s-f64c: {ratio:.3}x");
    let r16 = value("f64") / value("f16s-f32c");
    println!("  measured SpMV matrix-value traffic, f64/f64 vs f16s-f32c: {r16:.3}x");
    println!("  (all matrix + halo byte measurements reconciled exactly against the policy-aware machine model)\n");
}

fn main() {
    policy_sweep();
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let wl = Workload::build((320, 320, 320), 4, 30, 512 * 8);
    let s = wl.fine();
    let sb = 4usize; // mixed inner precision
    let g = machine.gather_factor;

    println!("Per-sweep fine-grid Gauss-Seidel cost (modeled, f32, 320^3, ms):\n");
    // (1) level-scheduled two-kernel reference GS.
    let kc_ref = kernels::gs_reference_csr(s, sb, g);
    let rows_per_stage = s.n / s.sched_stages as f64;
    let eff = machine.stage_bandwidth_efficiency(rows_per_stage);
    let t_ref = kc_ref.bytes / (machine.mem_bw * eff)
        + (s.sched_stages as f64 + 1.0) * 2.0 * machine.launch_overhead;
    // (2) multicolor relaxation, still CSR-like traffic (two passes fused to one).
    let kc_mc_csr = kernels::spmv_csr(s, sb, g); // one pass over CSR + vector work
    let t_mc_csr = kc_mc_csr.bytes / machine.mem_bw + s.colors as f64 * machine.launch_overhead;
    // (3) multicolor relaxation on ELL (the optimized kernel).
    let kc_mc_ell = kernels::gs_multicolor_ell(s, sb, g);
    let t_mc_ell = kc_mc_ell.bytes / machine.mem_bw + s.colors as f64 * machine.launch_overhead;

    println!(
        "  §3.1 reference (SpMV+SpTRSV, level-sched): {:>8.2}  ({} stages, {:.0}% stage bw)",
        t_ref * 1e3,
        s.sched_stages,
        eff * 100.0
    );
    println!("  §3.2.1 multicolor relaxation (one sweep):  {:>8.2}", t_mc_csr * 1e3);
    println!("  §3.2.2 + ELL format:                       {:>8.2}", t_mc_ell * 1e3);
    println!(
        "  -> multicoloring alone buys {:.1}x; the format is a second-order refinement\n",
        t_ref / t_mc_csr
    );

    println!("Restriction cost per V-cycle level 0 (modeled, f32, ms):");
    let kc_runf = kernels::reference_restrict(s, sb, g);
    let kc_rf = kernels::fused_restrict(s, sb, g);
    println!(
        "  §3.1 unfused (full residual + inject): {:>8.2}",
        kc_runf.bytes / machine.mem_bw * 1e3
    );
    println!(
        "  §3.2.4 fused at coarse points:         {:>8.2}  ({:.1}x)\n",
        kc_rf.bytes / machine.mem_bw * 1e3,
        kc_runf.bytes / kc_rf.bytes
    );

    println!("Communication exposure per fine-grid sweep (modeled, ms):");
    let comm = net.halo_time(s.halo_msgs, s.halo_values * sb as f64);
    let compute = kc_mc_ell.bytes / machine.mem_bw;
    let window = compute * s.interior_frac / s.colors as f64;
    println!("  halo exchange:              {:>8.3}", comm * 1e3);
    println!("  hideable window (§3.2.3):   {:>8.3}", window * 1e3);
    println!("  exposed with overlap:       {:>8.3}", (comm - window).max(0.0) * 1e3);
    println!("  exposed without overlap:    {:>8.3}\n", comm * 1e3);

    println!("Host-side mixed vector ops (§3.1 item 6) per restart, 320^3 (modeled, ms):");
    let n = s.n;
    let host = machine.host_copy_time(4.0 * n * 8.0);
    let device = kernels::scale_narrow(n).bytes / machine.mem_bw
        + kernels::axpy_mixed(n).bytes / machine.mem_bw;
    println!(
        "  host round-trips: {:>8.2}   fused device kernels (§3.2.5): {:>8.3}  ({:.0}x)\n",
        host * 1e3,
        device * 1e3,
        host / device
    );

    // Measured: CGS2 vs MGS orthogonality quality and the all-reduce count.
    println!("Measured orthogonalization quality (40 basis vectors, 16^3 problem, f32):");
    let prob = single_rank_problem(16, 1);
    let n_loc = prob.n_local();
    let comm = SelfComm;
    let build_basis = || {
        let mut q: Basis<f32> = Basis::new(n_loc, 41);
        for j in 0..41 {
            for (i, v) in q.col_mut(j).iter_mut().enumerate() {
                *v = ((i * (j + 1)) as f32 * 0.00173).sin() + 0.8 * ((i + 1) as f32 * 0.0019).cos();
            }
        }
        let nrm = hpgmxp_sparse::blas::norm2_sq(q.col(0)).sqrt();
        hpgmxp_sparse::blas::scal(1.0 / nrm, q.col_mut(0));
        q
    };
    let mut stats = MotifStats::new();
    let mut q1 = build_basis();
    for k in 1..41 {
        cgs2(&comm, &mut stats, &mut q1, k);
    }
    let mut q2 = build_basis();
    for k in 1..41 {
        mgs(&comm, &mut stats, &mut q2, k);
    }
    println!(
        "  CGS2 (2 all-reduces/iter): max |q_i . q_j| = {:.3e}",
        orthogonality_defect(&comm, &q1, 41)
    );
    println!(
        "  MGS  (k all-reduces/iter): max |q_i . q_j| = {:.3e}",
        orthogonality_defect(&comm, &q2, 41)
    );
    println!("  -> CGS2 buys blocked reductions (2 vs k all-reduces) at comparable orthogonality,");
    println!("     the §3/§4.1 rationale for the benchmark's choice.");
}
