//! Record and compare tracked kernel-performance baselines.
//!
//! The Criterion shim appends one JSON object per benchmark to the file
//! named by `CRITERION_JSON` (label, median seconds, thread count,
//! declared bytes/iter, derived GiB/s). This tool turns those raw runs
//! into the tracked `BENCH_baseline.json` and gates regressions:
//!
//! ```text
//! # record: merge one or more raw runs into the baseline file
//! CRITERION_JSON=run1.jsonl RAYON_NUM_THREADS=1 cargo bench --bench motifs
//! CRITERION_JSON=run4.jsonl RAYON_NUM_THREADS=4 cargo bench --bench motifs
//! cargo run -p hpgmxp-bench --bin bench_baseline -- record BENCH_baseline.json run1.jsonl run4.jsonl
//!
//! # compare: fail (exit 1) if any kernel regressed vs the baseline
//! cargo run -p hpgmxp-bench --bin bench_baseline -- compare BENCH_baseline.json current.jsonl
//! ```
//!
//! `compare` matches entries by `(bench, threads)` and computes each
//! kernel's speed ratio `baseline_median / current_median` (>1 means
//! faster now). Because baselines may be recorded on a different
//! machine than CI runs on, the default mode normalizes by the *median
//! ratio across all kernels* — a uniformly slower machine shifts every
//! ratio equally and trips nothing, while a single kernel falling more
//! than `--max-regress` (default 20%) below the pack fails loudly.
//! `--absolute` compares raw ratios instead (for same-machine runs).

use serde::Value;
use std::fmt::Write as _;
use std::process::ExitCode;

/// One benchmark measurement (from a raw run or the baseline file).
#[derive(Debug, Clone)]
struct Entry {
    bench: String,
    threads: u64,
    median_secs: f64,
    gib_per_s: Option<f64>,
    /// Logical core count of the recording host (absent on baselines
    /// recorded before host metadata existed).
    host_cores: Option<u64>,
    /// SIMD descriptor of the recording host,
    /// `"<level>/<features>"` (absent on baselines recorded before
    /// SIMD dispatch existed).
    host_simd: Option<String>,
}

fn parse_entry(v: &Value) -> Option<Entry> {
    Some(Entry {
        bench: v.get("bench")?.as_str()?.to_string(),
        threads: v.get("threads")?.as_f64()? as u64,
        median_secs: v.get("median_secs")?.as_f64()?,
        gib_per_s: v.get("gib_per_s").and_then(Value::as_f64),
        host_cores: v.get("host_cores").and_then(Value::as_f64).map(|c| c as u64),
        host_simd: v.get("host_simd").and_then(Value::as_str).map(str::to_string),
    })
}

/// Read a raw `CRITERION_JSON` file: one JSON object per line.
fn read_jsonl(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("{path}:{}: bad JSON: {e}", ln + 1))?;
        out.push(parse_entry(&v).ok_or_else(|| format!("{path}:{}: missing fields", ln + 1))?);
    }
    Ok(out)
}

/// Read the tracked baseline file (`{"schema":1,"entries":[...]}`).
fn read_baseline(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    let entries = v
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no `entries` array"))?;
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| parse_entry(e).ok_or_else(|| format!("{path}: entry {i} missing fields")))
        .collect()
}

/// Escape a bench label for embedding in hand-built JSON (labels are
/// ours, but a quote in a parameter string must not corrupt the file).
fn escape(label: &str) -> String {
    label.chars().fold(String::new(), |mut s, c| {
        if c == '"' || c == '\\' {
            s.push('\\');
        }
        s.push(c);
        s
    })
}

fn write_baseline(path: &str, mut entries: Vec<Entry>) -> Result<(), String> {
    entries.sort_by(|a, b| (&a.bench, a.threads).cmp(&(&b.bench, b.threads)));
    entries.dedup_by(|a, b| a.bench == b.bench && a.threads == b.threads);
    let mut s = String::from("{\n  \"schema\": 1,\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let gib = e.gib_per_s.map_or("null".to_string(), |g| format!("{g:.4}"));
        let cores = e.host_cores.map_or("null".to_string(), |c| c.to_string());
        let simd =
            e.host_simd.as_deref().map_or("null".to_string(), |v| format!("\"{}\"", escape(v)));
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"threads\": {}, \"host_cores\": {cores}, \
             \"host_simd\": {simd}, \"median_secs\": {:.6e}, \"gib_per_s\": {}}}",
            escape(&e.bench),
            e.threads,
            e.median_secs,
            gib
        );
        s.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).map_err(|e| format!("cannot write {path}: {e}"))
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    match v.len() {
        0 => 1.0,
        n if n % 2 == 1 => v[n / 2],
        n => 0.5 * (v[n / 2 - 1] + v[n / 2]),
    }
}

fn cmd_record(out: &str, inputs: &[String]) -> Result<(), String> {
    // Later inputs win on (bench, threads) collisions: start from the
    // existing baseline (if any) and overlay every input in order. A
    // present-but-unparseable baseline aborts rather than silently
    // discarding its entries.
    let mut entries =
        if std::path::Path::new(out).exists() { read_baseline(out)? } else { Vec::new() };
    for path in inputs {
        for e in read_jsonl(path)? {
            entries.retain(|x| !(x.bench == e.bench && x.threads == e.threads));
            entries.push(e);
        }
    }
    let n = entries.len();
    write_baseline(out, entries)?;
    println!("recorded {n} baseline entries into {out}");
    Ok(())
}

fn cmd_compare(
    baseline_path: &str,
    current_path: &str,
    max_regress: f64,
    absolute: bool,
) -> Result<bool, String> {
    let baseline = read_baseline(baseline_path)?;
    let current = read_jsonl(current_path)?;

    let mut rows: Vec<(Entry, Entry, f64)> = Vec::new();
    for b in &baseline {
        if let Some(c) = current.iter().find(|c| c.bench == b.bench && c.threads == b.threads) {
            // Speed ratio: >1 means the current run is faster.
            rows.push((b.clone(), c.clone(), b.median_secs / c.median_secs));
        }
    }
    if rows.is_empty() {
        return Err(format!(
            "no (bench, threads) overlap between {baseline_path} and {current_path}"
        ));
    }

    // The ROADMAP's 1-core-box caveat, made loud: thread-scaling
    // ratios are only comparable between hosts with the same core
    // count. Warn instead of failing — the machine-normalized mode
    // exists precisely to absorb uniform host differences — but never
    // compare silently.
    let base_cores: Vec<u64> = baseline
        .iter()
        .filter_map(|e| e.host_cores)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cur_cores: Vec<u64> = current
        .iter()
        .filter_map(|e| e.host_cores)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    match (base_cores.as_slice(), cur_cores.as_slice()) {
        ([], _) => eprintln!(
            "warning: baseline {baseline_path} carries no host_cores metadata \
             (recorded before host tracking); re-record it with \
             scripts/record_bench_baseline.sh"
        ),
        (_, []) => eprintln!(
            "warning: current run {current_path} carries no host_cores metadata \
             (recorded with a pre-host-tracking criterion shim?) — cannot check \
             that it ran on the baseline's host class"
        ),
        (b, c) if b != c => eprintln!(
            "warning: baseline recorded on {b:?}-core host(s) but current run measured on \
             {c:?}-core host(s) — multi-thread entries are not comparable \
             (ROADMAP: re-record the baseline on the new box)"
        ),
        _ => {}
    }

    // Same caveat for the SIMD dispatch: an avx2-recorded baseline is
    // not a fair floor for a scalar-forced run (or vice versa), and a
    // host with a different feature set is a different machine class.
    let base_simd: Vec<String> = baseline
        .iter()
        .filter_map(|e| e.host_simd.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cur_simd: Vec<String> = current
        .iter()
        .filter_map(|e| e.host_simd.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    match (base_simd.as_slice(), cur_simd.as_slice()) {
        ([], _) => eprintln!(
            "warning: baseline {baseline_path} carries no host_simd metadata \
             (recorded before SIMD dispatch); re-record it with \
             scripts/record_bench_baseline.sh"
        ),
        (_, []) => eprintln!(
            "warning: current run {current_path} carries no host_simd metadata \
             (recorded with a pre-SIMD criterion shim?) — cannot check \
             that it used the baseline's kernel dispatch"
        ),
        (b, c) if b != c => eprintln!(
            "warning: baseline recorded with SIMD {b:?} but current run measured with \
             {c:?} — kernel timings are not comparable across dispatch levels \
             (force a matching HPGMXP_SIMD or re-record the baseline)"
        ),
        _ => {}
    }

    let mut ratios: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let med = median(&mut ratios);
    let reference = if absolute { 1.0 } else { med };
    let floor = reference * (1.0 - max_regress);

    println!(
        "comparing {} kernels against {} ({} mode, median speed ratio {:.3}, fail floor {:.3})",
        rows.len(),
        baseline_path,
        if absolute { "absolute" } else { "machine-normalized" },
        med,
        floor,
    );
    println!(
        "{:<44} {:>8} {:>12} {:>12} {:>8}  status",
        "bench/threads", "ratio", "base", "current", "GiB/s"
    );
    let mut failed = false;
    for (b, c, ratio) in &rows {
        let bad = *ratio < floor;
        failed |= bad;
        println!(
            "{:<44} {:>8.3} {:>10.1}µs {:>10.1}µs {:>8}  {}",
            format!("{}/{}t", b.bench, b.threads),
            ratio,
            b.median_secs * 1e6,
            c.median_secs * 1e6,
            c.gib_per_s.map_or("-".into(), |g| format!("{g:.2}")),
            if bad { "REGRESSED" } else { "ok" },
        );
    }
    // A baseline kernel that the current run *should* have measured
    // (same thread count) but didn't is a failure — a renamed or
    // crashed benchmark must not slip past the gate. Baseline entries
    // at thread counts the current run never measured are only noted.
    let measured_threads: Vec<u64> = current.iter().map(|c| c.threads).collect();
    for b in &baseline {
        if current.iter().any(|c| c.bench == b.bench && c.threads == b.threads) {
            continue;
        }
        let label = format!("{}/{}t", b.bench, b.threads);
        if measured_threads.contains(&b.threads) {
            println!("{label:<44} MISSING from current run");
            failed = true;
        } else {
            println!("{label:<44} (thread count not measured in this run)");
        }
    }
    Ok(!failed)
}

fn usage() -> String {
    "usage:\n  bench_baseline record  <baseline.json> <run.jsonl>...\n  \
     bench_baseline compare <baseline.json> <current.jsonl> [--max-regress 0.20] [--absolute]"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") if args.len() >= 3 => cmd_record(&args[1], &args[2..]).map(|()| true),
        Some("compare") if args.len() >= 3 => {
            let mut max_regress = 0.20;
            let mut absolute = false;
            let mut it = args[3..].iter();
            let mut ok = true;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--max-regress" => {
                        max_regress = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                            ok = false;
                            max_regress
                        })
                    }
                    "--absolute" => absolute = true,
                    other => {
                        eprintln!("unknown flag {other}");
                        ok = false;
                    }
                }
            }
            if ok {
                cmd_compare(&args[1], &args[2], max_regress, absolute)
            } else {
                Err(usage())
            }
        }
        _ => Err(usage()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("kernel performance regression detected (see table above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
