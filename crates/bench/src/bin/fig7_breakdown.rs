//! Regenerates **Figure 7**: the breakdown of time spent in the four
//! main motifs (GS, Ortho, SpMV, Restr) during the mixed-precision and
//! double-precision runs, at 1 node and at the 9408-node full system.
//!
//! The modeled breakdown shows the paper's two observations: the mixed
//! run spends relatively less time in orthogonalization (it benefits
//! most from f32), and orthogonalization's share grows at full system
//! because of the all-reduces. A measured workstation breakdown
//! follows.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig7_breakdown`

use hpgmxp_bench::{workstation_params, workstation_ranks};
use hpgmxp_core::benchmark::{run_phase, PhaseResult};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::Motif;
use hpgmxp_machine::simulate::{simulate, SimConfig, SimResult};
use hpgmxp_machine::{MachineModel, NetworkModel};

const MOTIFS: [Motif; 4] = [Motif::GaussSeidel, Motif::Ortho, Motif::SpMV, Motif::Restriction];

fn print_modeled(label: &str, r: &SimResult) {
    print!("{:<28}", label);
    for m in MOTIFS {
        print!(" {:>10.3}", r.per_iter.seconds(m) * 1e3);
    }
    println!(" {:>10.3}", r.time_per_iter * 1e3);
}

fn print_measured(label: &str, p: &PhaseResult) {
    print!("{:<28}", label);
    for m in MOTIFS {
        print!(" {:>10.3}", p.seconds_of(m) * 1e3);
    }
    println!(" {:>10.3}", p.wall_time * 1e3);
}

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();

    println!("Figure 7 (modeled, Frontier): per-iteration time per motif, ms");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "GS", "Ortho", "SpMV", "Restr", "total"
    );
    for (nodes, label) in [(1usize, "1 node"), (9408, "9408 nodes")] {
        let ranks = nodes * machine.devices_per_node;
        let mxp = simulate(&SimConfig::paper_mxp(), &machine, &net, ranks);
        let dbl = simulate(&SimConfig::paper_double(), &machine, &net, ranks);
        print_modeled(&format!("mxp, {}", label), &mxp);
        print_modeled(&format!("double, {}", label), &dbl);
    }

    // The paper's observations, quantified:
    let m1 = simulate(&SimConfig::paper_mxp(), &machine, &net, 8);
    let mfull = simulate(&SimConfig::paper_mxp(), &machine, &net, 9408 * 8);
    println!(
        "\nOrtho share of mxp time: {:.1}% at 1 node -> {:.1}% at 9408 nodes (paper: grows)",
        m1.per_iter.seconds(Motif::Ortho) / m1.time_per_iter * 100.0,
        mfull.per_iter.seconds(Motif::Ortho) / mfull.time_per_iter * 100.0
    );

    println!("\nMeasured on this machine (thread-ranks, per phase totals in ms):");
    let params = workstation_params();
    let ranks = workstation_ranks();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "GS", "Ortho", "SpMV", "Restr", "wall"
    );
    let mxp = run_phase(&params, ImplVariant::Optimized, ranks, true);
    let dbl = run_phase(&params, ImplVariant::Optimized, ranks, false);
    print_measured(&format!("mxp, {} ranks", ranks), &mxp);
    print_measured(&format!("double, {} ranks", ranks), &dbl);
}
