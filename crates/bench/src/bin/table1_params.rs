//! Regenerates **Table 1**: the HPG-MxP parameters used.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin table1_params`

use hpgmxp_core::config::BenchmarkParams;

fn main() {
    let p = BenchmarkParams::paper_frontier();
    println!("Table 1: HPG-MxP parameters used (paper configuration)");
    println!("{:<48} {:>12}", "Parameter", "Value");
    println!("{:<48} {:>12}", "Restart length", p.restart);
    println!("{:<48} {:>12}", "Local mesh size", format!("{}^3", p.local_dims.0));
    println!(
        "{:<48} {:>12}",
        "Specified running time (< 1024 nodes)",
        format!("{} s", p.specified_run_time(512))
    );
    println!(
        "{:<48} {:>12}",
        "Specified running time (>= 1024 nodes)",
        format!("{} s", p.specified_run_time(1024))
    );
    println!("{:<48} {:>12}", "Max. GMRES iterations per solve", p.max_iters_per_solve);
    println!("{:<48} {:>12}", "No. GCDs used for validation", p.validation_ranks);
    println!(
        "{:<48} {:>12}",
        "Relative convergence tolerance for validation",
        format!("{:.0e}", p.validation_tol)
    );
    println!("{:<48} {:>12}", "Multigrid levels", p.mg_levels);
    println!("{:<48} {:>12}", "Validation iteration cap", p.validation_max_iters);
    println!();
    println!(
        "(This reproduction's default local size is {}^3; override with HPGMXP_LOCAL_N.)",
        BenchmarkParams::default().local_dims.0
    );
}
