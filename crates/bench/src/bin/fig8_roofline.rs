//! Regenerates **Figure 8**: the roofline of the benchmark's ten most
//! expensive kernels on a single MI250x GCD.
//!
//! The paper's observation: every hot kernel sits at the HBM bandwidth
//! ceiling despite L1/L2 caching — the benchmark is memory-wall bound,
//! which is exactly why halving the scalar width buys speed.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig8_roofline`

use hpgmxp_machine::roofline::{ceilings, roofline_points, to_table};
use hpgmxp_machine::MachineModel;

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let points = roofline_points((320, 320, 320), 30, &machine);
    let ceil = ceilings(&machine);
    println!("{}", to_table(&points, &ceil));
    println!(
        "machine balance: {:.1} FLOP/byte; max sparse-kernel AI here: {:.3} FLOP/byte",
        ceil.balance_fp64,
        points.iter().map(|p| p.ai).fold(0.0, f64::max)
    );
    println!("=> all kernels bandwidth-bound, as in the paper's figure 8");

    // The K80 view (for the figure 6 cluster).
    println!();
    let k80 = MachineModel::k80_die();
    let pk = roofline_points((128, 128, 128), 30, &k80);
    println!("{}", to_table(&pk, &ceilings(&k80)));
}
