//! Regenerates **Figure 9**: traces of the Gauss–Seidel halo overlap
//! in an 8-node run — fine grid (9a, communication fully hidden) and
//! coarsest grid (9b, communication partially exposed).
//!
//! Two sections, printed side by side: the modeled rocprof-style
//! timelines on the Frontier machine model, and a *measured* event
//! timeline + per-exchange overlap records captured from an actual
//! threaded run of the optimized smoother on this machine — including
//! the measured `overlap_efficiency()`, the testable counterpart of
//! the model's `hidden_fraction`.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig9_trace`
//! Env: `HPGMXP_RANKS` (default 8), `HPGMXP_LOCAL` (default 16),
//! `HPGMXP_COMM` (thread | socket — over sockets, start the job as
//! `hpgmxp-launch -n N -- ... fig9_trace`; rank 0 prints the modeled
//! sections and the middle-rank process prints the measured ones).

use hpgmxp_bench::env_usize;
use hpgmxp_comm::{run_spmd, Comm, OverlapRecord, Timeline, Transport};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::MotifStats;
use hpgmxp_core::ops::{dist_gs_sweep, OpCtx, SweepDir};
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_machine::trace::{gs_sweep_trace, render_ascii};
use hpgmxp_machine::workload::Workload;
use hpgmxp_machine::{MachineModel, NetworkModel};

fn print_records(records: &[OverlapRecord]) {
    println!(
        "    {:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "tag", "bytes", "pack µs", "window µs", "wait µs", "unpack µs", "hidden"
    );
    for r in records {
        println!(
            "    {:<6} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
            r.tag,
            r.bytes_sent,
            r.pack * 1e6,
            r.window * 1e6,
            r.wire_wait * 1e6,
            r.unpack * 1e6,
            r.hidden_fraction() * 100.0
        );
    }
}

/// One measured sweep on a `local³` box per rank: returns the middle
/// rank's per-exchange overlap records and overlap efficiency.
/// `None` when this process doesn't hold the middle rank's data (a
/// non-middle rank of a socket job; under threads it is always
/// `Some`).
fn measured_sweep(
    ranks: usize,
    local: u32,
    sweeps: usize,
) -> Option<(Vec<OverlapRecord>, Option<f64>, usize)> {
    let procs = ProcGrid::factor(ranks as u32);
    let mid = procs.rank_of(procs.px / 2, procs.py / 2, procs.pz / 2) as usize;
    let mut out = run_spmd(ranks, move |c| {
        let prob = assemble(
            &ProblemSpec {
                local: (local, local, local),
                procs,
                stencil: Stencil27::symmetric(),
                mg_levels: 1,
                seed: 9,
            },
            c.rank(),
        );
        let l = &prob.levels[0];
        let tl = Timeline::enabled();
        let mut stats = MotifStats::new();
        let ctx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
        let r = vec![1.0f64; l.n_local()];
        let mut z = vec![0.0f64; l.vec_len()];
        for s in 0..sweeps {
            dist_gs_sweep(&ctx, l, &mut stats, s as u64, SweepDir::Forward, &r, &mut z);
        }
        let dropped = tl.dropped_events() + tl.dropped_overlaps();
        (c.rank(), tl.overlap_records(), tl.overlap_efficiency(), dropped)
    });
    let pos = out.iter().position(|(r, _, _, _)| *r == mid)?;
    let (_, records, eff, dropped) = out.swap_remove(pos);
    Some((records, eff, dropped))
}

fn main() {
    let transport = Transport::from_env();
    // Over sockets this binary runs once per rank under hpgmxp-launch;
    // rank 0 owns the modeled sections so they print exactly once.
    let socket_rank = std::env::var("HPGMXP_RANK").ok().and_then(|v| v.parse::<usize>().ok());
    let print_modeled = transport == Transport::Thread || socket_rank == Some(0);

    if print_modeled {
        // The armed execution stack, so a pasted trace is attributable:
        // numbers measured over different transports, collective
        // algorithms, or SIMD levels are not comparable.
        println!(
            "[fig9] transport {}, coll {}, simd {} (features {})\n",
            transport.name(),
            hpgmxp_comm::collectives::algo().name(),
            hpgmxp_sparse::simd::level().name(),
            hpgmxp_sparse::simd::features().summary()
        );
    }

    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    // 8 nodes = 64 GCDs, the paper's trace configuration.
    let wl = Workload::build((320, 320, 320), 4, 30, 64);

    let fine = gs_sweep_trace("(a) fine-grid smoothing", &wl.levels[0], 4, &machine, &net);
    let coarse = gs_sweep_trace("(b) coarsest-grid smoothing", &wl.levels[3], 4, &machine, &net);
    if print_modeled {
        println!("Figure 9 (modeled, 8-node Frontier run, f32 sweep):\n");
        println!("{}", render_ascii(&fine, 100));
        println!("{}", render_ascii(&coarse, 100));
        println!(
            "fine grid: {:.0}% of communication hidden; coarsest: {:.0}% (paper: fully vs partially hidden)\n",
            fine.hidden_fraction * 100.0,
            coarse.hidden_fraction * 100.0
        );
    }

    // Measured counterpart: real runs of the optimized GS sweep on this
    // machine over the selected transport, fine-ish local box vs tiny
    // coarse box, with per-exchange overlap records from the
    // persistent-buffer halo engine.
    let ranks = hpgmxp_comm::socket_world_size().unwrap_or_else(|| env_usize("HPGMXP_RANKS", 8));
    let local = env_usize("HPGMXP_LOCAL", 16) as u32;
    let sweeps = 4;

    let fine_out = measured_sweep(ranks, local, sweeps);
    let coarse_out = measured_sweep(ranks, 4, sweeps);
    // Only the process holding the middle rank's trace reports it
    // (under threads: this one; under sockets: the mid-rank child).
    let (Some((rec_fine, eff_fine, drop_fine)), Some((rec_coarse, eff_coarse, drop_coarse))) =
        (fine_out, coarse_out)
    else {
        return;
    };
    let dropped = drop_fine + drop_coarse;
    if dropped > 0 {
        eprintln!(
            "[fig9] warning: timeline ring wrapped ({dropped} records lost) — measured overlap \
             covers a truncated window; raise HPGMXP_TIMELINE_CAPACITY for full coverage"
        );
    }
    println!(
        "Measured ({} transport, {ranks} ranks, middle rank, {sweeps} optimized GS sweeps):",
        transport.name()
    );
    println!("  (a) fine grid, {local}\u{b3} local box:");
    print_records(&rec_fine);
    println!("  (b) coarse grid, 4\u{b3} local box:");
    print_records(&rec_coarse);

    println!("\nmodeled vs measured overlap (fraction of communication hidden under compute):");
    println!(
        "  fine grid:    modeled {:>5.1}%   measured {:>5.1}%",
        fine.hidden_fraction * 100.0,
        eff_fine.unwrap_or(0.0) * 100.0
    );
    println!(
        "  coarse grid:  modeled {:>5.1}%   measured {:>5.1}%",
        coarse.hidden_fraction * 100.0,
        eff_coarse.unwrap_or(0.0) * 100.0
    );
    println!("overlap_efficiency (measured, fine grid): {:.3}", eff_fine.unwrap_or(f64::NAN));
}
