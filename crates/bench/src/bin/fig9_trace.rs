//! Regenerates **Figure 9**: traces of the Gauss–Seidel halo overlap
//! in an 8-node run — fine grid (9a, communication fully hidden) and
//! coarsest grid (9b, communication partially exposed).
//!
//! Two sections: the modeled rocprof-style timelines on the Frontier
//! machine model, and a *real* event timeline captured from an actual
//! threaded run of the optimized smoother on this machine.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig9_trace`

use hpgmxp_bench::env_usize;
use hpgmxp_comm::{run_spmd, Comm, Stream, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::motifs::MotifStats;
use hpgmxp_core::ops::{dist_gs_sweep, OpCtx, SweepDir};
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_geometry::{ProcGrid, Stencil27};
use hpgmxp_machine::trace::{gs_sweep_trace, render_ascii};
use hpgmxp_machine::workload::Workload;
use hpgmxp_machine::{MachineModel, NetworkModel};

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    // 8 nodes = 64 GCDs, the paper's trace configuration.
    let wl = Workload::build((320, 320, 320), 4, 30, 64);

    println!("Figure 9 (modeled, 8-node Frontier run, f32 sweep):\n");
    let fine = gs_sweep_trace("(a) fine-grid smoothing", &wl.levels[0], 4, &machine, &net);
    println!("{}", render_ascii(&fine, 100));
    let coarse = gs_sweep_trace("(b) coarsest-grid smoothing", &wl.levels[3], 4, &machine, &net);
    println!("{}", render_ascii(&coarse, 100));
    println!(
        "fine grid: {:.0}% of communication hidden; coarsest: {:.0}% (paper: fully vs partially hidden)\n",
        fine.hidden_fraction * 100.0,
        coarse.hidden_fraction * 100.0
    );

    // Real captured timeline from a threaded run on this machine.
    let ranks = env_usize("HPGMXP_RANKS", 8);
    println!(
        "Measured event timeline ({} thread-ranks, middle rank, one optimized GS sweep):",
        ranks
    );
    let procs = ProcGrid::factor(ranks as u32);
    let mid = procs.rank_of(procs.px / 2, procs.py / 2, procs.pz / 2) as usize;
    let events = run_spmd(ranks, move |c| {
        let prob = assemble(
            &ProblemSpec {
                local: (16, 16, 16),
                procs,
                stencil: Stencil27::symmetric(),
                mg_levels: 1,
                seed: 9,
            },
            c.rank(),
        );
        let l = &prob.levels[0];
        let tl = Timeline::enabled();
        let mut stats = MotifStats::new();
        let ctx = OpCtx { comm: &c, variant: ImplVariant::Optimized, timeline: &tl };
        let r = vec![1.0f64; l.n_local()];
        let mut z = vec![0.0f64; l.vec_len()];
        dist_gs_sweep(&ctx, l, &mut stats, 0, SweepDir::Forward, &r, &mut z);
        (c.rank(), tl.events())
    });
    for (rank, evs) in events {
        if rank != mid {
            continue;
        }
        for e in &evs {
            println!(
                "  [{:<4}] {:<28} {:>9.1} µs -> {:>9.1} µs",
                e.stream.label(),
                e.name,
                e.start * 1e6,
                e.end * 1e6
            );
        }
        // The figure-9 claim on real hardware terms: while the interior
        // kernel ran, the messages arrived, so the post-kernel receive
        // waits cost (nearly) nothing.
        let wait: f64 = evs.iter().filter(|e| e.name == "halo wait").map(|e| e.end - e.start).sum();
        let interior: f64 =
            evs.iter().filter(|e| e.name.starts_with("GS interior")).map(|e| e.end - e.start).sum();
        println!(
            "  blocked in halo waits: {:.1} µs vs interior compute window {:.1} µs ({:.1}% exposure)",
            wait * 1e6,
            interior * 1e6,
            wait / interior * 100.0
        );
        let _ = Stream::Comm;
    }
}
