//! Regenerates **Figure 4**: weak scaling of the overall benchmark on
//! Frontier — penalized mixed-precision GFLOP/s per GCD vs node count,
//! for the optimized implementation ("present") and the reference
//! implementation ("xsdk").
//!
//! A thin frontend over the campaign harness: builds the same
//! [`CampaignSpec`] shipped as `campaigns/paper_frontier.json` (two
//! Modeled series at the paper's 320³ operating point), runs the
//! engine, and renders the figure's table from the report cells.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig4_weak_scaling`

use hpgmxp_bench::series_table;
use hpgmxp_core::config::ImplVariant;
use hpgmxp_harness::{run_campaign, CampaignSpec, PolicyRef, SeriesMode, SeriesSpec, SPEC_SCHEMA};

fn main() {
    let nodes = vec![1usize, 2, 8, 64, 128, 512, 1024, 4096, 8192, 9408];
    let modeled = |label: &str, variant: ImplVariant| SeriesSpec {
        label: label.to_string(),
        mode: SeriesMode::Modeled,
        variant,
        policies: vec![PolicyRef::by_name("mxp")],
        ranks: vec![],
        nodes: nodes.clone(),
        modeled_local: Some((320, 320, 320)),
        penalty: None, // classic mxp defaults to the paper's measured 1-node penalty
    };
    let spec = CampaignSpec {
        schema: SPEC_SCHEMA,
        name: "fig4_weak_scaling".into(),
        description: "figure 4: modeled weak scaling, present vs xsdk".into(),
        local: (16, 16, 16),
        mg_levels: 4,
        restart: 30,
        iters_per_solve: 60,
        benchmark_solves: 1,
        validation_max_iters: 2000,
        machine: "mi250x_gcd".into(),
        network: "frontier_slingshot".into(),
        series: vec![
            modeled("present", ImplVariant::Optimized),
            modeled("xsdk", ImplVariant::Reference),
        ],
    };
    let report = run_campaign(&spec).expect("fig4 campaign");

    let cell = |series: &str, nd: usize| {
        report.find_cell(series, "mxp", Some(nd), None).expect("planned cell")
    };
    let mut rows = Vec::new();
    for &nd in &nodes {
        let p = cell("present", nd);
        let x = cell("xsdk", nd);
        rows.push((
            nd as f64,
            vec![p.gflops_per_rank.unwrap(), x.gflops_per_rank.unwrap(), p.total_pflops.unwrap()],
        ));
    }
    println!(
        "{}",
        series_table(
            "Figure 4: weak scaling on Frontier (modeled; penalized mxp GFLOP/s per GCD)",
            "nodes",
            &["present GF/GCD", "xsdk GF/GCD", "present total PF"],
            &rows
        )
    );

    let one = cell("present", 1).gflops_per_rank.unwrap();
    let full = cell("present", 9408);
    println!(
        "weak-scaling efficiency 1 -> 9408 nodes: {:.1}%  (paper: 78%)",
        full.gflops_per_rank.unwrap() / one * 100.0
    );
    println!(
        "full-system penalized mixed performance: {:.2} PF  (paper: 17.23 PF)",
        full.total_pflops.unwrap()
    );
    println!(
        "present/xsdk at 512 nodes: {:.1}x",
        cell("present", 512).gflops_per_rank.unwrap() / cell("xsdk", 512).gflops_per_rank.unwrap()
    );
}
