//! Regenerates **Figure 4**: weak scaling of the overall benchmark on
//! Frontier — penalized mixed-precision GFLOP/s per GCD vs node count,
//! for the optimized implementation ("present") and the reference
//! implementation ("xsdk").
//!
//! The exascale points come from the calibrated machine model (see
//! DESIGN.md's substitution table); the measured workstation point is
//! appended for grounding.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig4_weak_scaling`

use hpgmxp_bench::series_table;
use hpgmxp_core::config::ImplVariant;
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let nodes = [1usize, 2, 8, 64, 128, 512, 1024, 4096, 8192, 9408];

    let present = SimConfig::paper_mxp();
    let xsdk = SimConfig { variant: ImplVariant::Reference, ..present };

    let mut rows = Vec::new();
    for &nd in &nodes {
        let ranks = nd * machine.devices_per_node;
        let p = simulate(&present, &machine, &net, ranks);
        let x = simulate(&xsdk, &machine, &net, ranks);
        rows.push((nd as f64, vec![p.gflops_per_rank, x.gflops_per_rank, p.total_pflops]));
    }
    println!(
        "{}",
        series_table(
            "Figure 4: weak scaling on Frontier (modeled; penalized mxp GFLOP/s per GCD)",
            "nodes",
            &["present GF/GCD", "xsdk GF/GCD", "present total PF"],
            &rows
        )
    );

    let one = simulate(&present, &machine, &net, 8);
    let full = simulate(&present, &machine, &net, 9408 * 8);
    println!(
        "weak-scaling efficiency 1 -> 9408 nodes: {:.1}%  (paper: 78%)",
        full.gflops_per_rank / one.gflops_per_rank * 100.0
    );
    println!(
        "full-system penalized mixed performance: {:.2} PF  (paper: 17.23 PF)",
        full.total_pflops
    );
    println!(
        "present/xsdk at 512 nodes: {:.1}x",
        simulate(&present, &machine, &net, 512 * 8).gflops_per_rank
            / simulate(&xsdk, &machine, &net, 512 * 8).gflops_per_rank
    );
}
