//! Regenerates **Figure 6**: mixed-precision speedups on a small
//! commodity cluster with NVIDIA K80 GPUs, demonstrating that the
//! cross-platform implementation speeds up on a second architecture.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig6_k80`

use hpgmxp_bench::series_table;
use hpgmxp_core::config::ImplVariant;
use hpgmxp_machine::simulate::{motif_speedups, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};

fn main() {
    let machine = MachineModel::k80_die();
    let net = NetworkModel::commodity_ib();
    // K80-era memory: 12 GB per die fits ~128^3 comfortably.
    let cfg = SimConfig {
        local: (128, 128, 128),
        mg_levels: 4,
        restart: 30,
        variant: ImplVariant::Optimized,
        mixed: true,
        inner_bytes: 4,
        penalty: 0.968,
        policy: None,
    };

    let gpus = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for &g in &gpus {
        let sp = motif_speedups(&cfg, &machine, &net, g);
        let get = |l: &str| sp.iter().find(|(n, _)| n == l).map(|(_, v)| *v).unwrap_or(0.0);
        rows.push((g as f64, vec![get("Total"), get("GS"), get("SpMV"), get("Ortho")]));
    }
    println!(
        "{}",
        series_table(
            "Figure 6: penalized mxp/double speedups on an NVIDIA K80 cluster (modeled)",
            "GPUs",
            &["Total", "GS", "SpMV", "Ortho"],
            &rows
        )
    );
    println!("(paper: similar speedups to Frontier, confirming cross-platform portability)");
}
