//! Regenerates the §4.1 HPCG-vs-HPG-MxP comparison: "At the full
//! system scale of 9408 nodes we achieve 17.23 petaflops (mixed); when
//! we ran HPCG ourselves on Frontier on 9408 nodes, we achieved 10.4
//! petaflops."
//!
//! Runs both solvers for real at workstation scale (the HPCG baseline
//! is preconditioned CG with a symmetric-GS multigrid; HPG-MxP is
//! mixed GMRES-IR) and prints their measured throughputs, then the
//! modeled full-system numbers.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin hpcg_compare`

use hpgmxp_bench::{workstation_params, workstation_ranks};
use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::cg::{cg_solve, CgOptions};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::GmresOptions;
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::problem::{assemble, ProblemSpec};
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};

fn main() {
    let params = workstation_params();
    let ranks = workstation_ranks();
    let spec_src = ProblemSpec::from_params(&params, ranks);
    let iters = params.max_iters_per_solve;

    let results = run_spmd(ranks, move |c| {
        let prob = assemble(&spec_src, c.rank());
        let tl = Timeline::disabled();
        // HPCG phase: CG for a fixed iteration count.
        let cg_opts = CgOptions { max_iters: iters, tol: 0.0, ..Default::default() };
        let (_, cg_st) = cg_solve(&c, &prob, &cg_opts, &tl);
        // HPG-MxP phase: GMRES-IR for the same fixed count.
        let ir_opts = GmresOptions {
            max_iters: iters,
            tol: 0.0,
            variant: ImplVariant::Optimized,
            ..Default::default()
        };
        let (_, ir_st) = gmres_ir_solve(&c, &prob, &ir_opts, &tl);
        (cg_st.motifs, ir_st.motifs)
    });

    let mut cg_flops = 0.0;
    let mut cg_time: f64 = 0.0;
    let mut ir_flops = 0.0;
    let mut ir_time: f64 = 0.0;
    for (cg, ir) in &results {
        cg_flops += cg.total_flops();
        cg_time = cg_time.max(cg.total_seconds());
        ir_flops += ir.total_flops();
        ir_time = ir_time.max(ir.total_seconds());
    }
    println!(
        "Measured ({} thread-ranks, {}^3 local, {} iterations each):",
        ranks, params.local_dims.0, iters
    );
    println!("  HPCG baseline (CG + symmetric-GS MG): {:>8.3} GF/s", cg_flops / cg_time / 1e9);
    println!("  HPG-MxP (mixed GMRES-IR):             {:>8.3} GF/s", ir_flops / ir_time / 1e9);
    println!(
        "  ratio: {:.2}x  (paper: 17.23 PF / 10.4 PF = 1.66x; \"not directly comparable\")",
        (ir_flops / ir_time) / (cg_flops / cg_time)
    );

    println!("\nModeled full system (9408 nodes, 75264 GCDs):");
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let mxp = simulate(&SimConfig::paper_mxp(), &machine, &net, 9408 * 8);
    println!("  HPG-MxP mixed, penalized: {:.2} PF (paper: 17.23 PF)", mxp.total_pflops);
    println!("  HPCG measured by the paper's authors: 10.4 PF");
}
