//! Regenerates the §5 memory-capacity analysis: mixed-precision
//! GMRES-IR stores a low-precision matrix copy, so "we should utilize
//! a larger mesh size while running double-precision GMRES and it can
//! perhaps achieve a somewhat higher throughput" — and the matrix-free
//! configuration that removes the concern.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin memory_capacity`

use hpgmxp_machine::memory::{footprint, max_local_edge, StorageConfig};
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};

const GCD_HBM: f64 = 64.0 * 1024.0 * 1024.0 * 1024.0;

fn main() {
    println!("Memory footprints at the paper's 320^3-per-GCD operating point (GB):\n");
    println!(
        "{:<22} {:>10} {:>8} {:>9} {:>8}",
        "configuration", "matrices", "basis", "vectors", "total"
    );
    for cfg in
        [StorageConfig::StoredDouble, StorageConfig::StoredMixed, StorageConfig::MatrixFreeMixed]
    {
        let f = footprint((320, 320, 320), 4, 30, cfg);
        println!(
            "{:<22} {:>10.2} {:>8.2} {:>9.2} {:>8.2}",
            format!("{:?}", cfg),
            f.matrices / 1e9,
            f.basis / 1e9,
            f.vectors / 1e9,
            f.total / 1e9
        );
    }

    println!("\nLargest local box fitting one 64 GB GCD (edge, multiple of 8):");
    let d_edge = max_local_edge(GCD_HBM, 4, 30, StorageConfig::StoredDouble);
    let m_edge = max_local_edge(GCD_HBM, 4, 30, StorageConfig::StoredMixed);
    let mf_edge = max_local_edge(GCD_HBM, 4, 30, StorageConfig::MatrixFreeMixed);
    println!("  stored double:     {}^3", d_edge);
    println!("  stored mixed:      {}^3", m_edge);
    println!("  matrix-free mixed: {}^3", mf_edge);

    // The capacity-compensated comparison the conclusion proposes:
    // each configuration at ITS OWN largest box, 512 nodes.
    println!("\nCapacity-compensated throughput (each config at its max box, 512 nodes, modeled):");
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let ranks = 512 * 8;
    let round_to_8 = |e: u32| e / 8 * 8;
    let dbl = simulate(
        &SimConfig {
            local: (round_to_8(d_edge), round_to_8(d_edge), round_to_8(d_edge)),
            ..SimConfig::paper_double()
        },
        &machine,
        &net,
        ranks,
    );
    let mxp = simulate(
        &SimConfig {
            local: (round_to_8(m_edge), round_to_8(m_edge), round_to_8(m_edge)),
            ..SimConfig::paper_mxp()
        },
        &machine,
        &net,
        ranks,
    );
    println!("  double at {:>3}^3: {:>6.1} GF/GCD", d_edge, dbl.gflops_per_rank);
    println!("  mixed  at {:>3}^3: {:>6.1} GF/GCD (penalized)", m_edge, mxp.gflops_per_rank);
    println!(
        "  capacity-compensated speedup: {:.2}x (same-size speedup was {:.2}x)",
        mxp.gflops_per_rank / dbl.gflops_per_rank,
        simulate(&SimConfig::paper_mxp(), &machine, &net, ranks).gflops_per_rank
            / simulate(&SimConfig::paper_double(), &machine, &net, ranks).gflops_per_rank
    );
    println!("\n-> the conclusion's point: compensating double's capacity advantage trims the");
    println!(
        "   mixed speedup slightly; going matrix-free (only the f32 matrix stored) restores it."
    );
}
