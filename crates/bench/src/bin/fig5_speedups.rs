//! Regenerates **Figure 5**: penalized speedups of mixed-precision
//! GMRES-IR over double-precision GMRES, overall and per motif
//! (GS/multigrid, SpMV, orthogonalization), across scales on Frontier.
//!
//! A thin frontend over the campaign harness: one campaign with two
//! Modeled series (classic `mxp` and `double` at the paper's 320³
//! operating point) and two Measured series (the same pair run for
//! real on this machine's thread-ranks); per-motif speedups come from
//! dividing the report cells' motif GF/s.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig5_speedups`
//! (env: `HPGMXP_LOCAL_N`, `HPGMXP_RANKS`, `HPGMXP_ITERS`,
//! `HPGMXP_SOLVES` scale the measured section).

use hpgmxp_bench::{series_table, workstation_params, workstation_ranks};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_harness::{
    run_campaign, CampaignReport, CellReport, PolicyRef, SeriesMode, SeriesSpec, SPEC_SCHEMA,
};

/// Penalized per-motif + total speedups between an mxp cell and its
/// double counterpart (figure 5's bars).
fn speedups(mxp: &CellReport, dbl: &CellReport) -> Vec<(String, f64)> {
    let penalty = mxp.penalty.unwrap_or(1.0);
    let mut out = Vec::new();
    for motif in ["GS", "SpMV", "Ortho", "Restr"] {
        if let (Some(gm), Some(gd)) = (mxp.motif_gflops_of(motif), dbl.motif_gflops_of(motif)) {
            out.push((motif.to_string(), gm * penalty / gd));
        }
    }
    let total =
        mxp.gflops_per_rank_raw.unwrap_or(0.0) * penalty / dbl.gflops_per_rank_raw.unwrap_or(1.0);
    out.push(("Total".to_string(), total));
    out
}

fn get(sp: &[(String, f64)], label: &str) -> f64 {
    sp.iter().find(|(n, _)| n == label).map(|(_, v)| *v).unwrap_or(0.0)
}

fn main() {
    let params = workstation_params();
    let ranks = workstation_ranks();
    let nodes = vec![1usize, 8, 64, 512, 1024, 4096, 9408];
    let modeled = |label: &str, policy: &str| SeriesSpec {
        label: label.to_string(),
        mode: SeriesMode::Modeled,
        variant: ImplVariant::Optimized,
        policies: vec![PolicyRef::by_name(policy)],
        ranks: vec![],
        nodes: nodes.clone(),
        modeled_local: Some((320, 320, 320)),
        penalty: None,
    };
    let measured = |label: &str, policy: &str| SeriesSpec {
        label: label.to_string(),
        mode: SeriesMode::Measured,
        variant: ImplVariant::Optimized,
        policies: vec![PolicyRef::by_name(policy)],
        ranks: vec![ranks],
        nodes: vec![],
        modeled_local: None,
        penalty: None,
    };
    let spec = hpgmxp_harness::CampaignSpec {
        schema: SPEC_SCHEMA,
        name: "fig5_speedups".into(),
        description: "figure 5: mxp/double speedups, modeled at scale + measured here".into(),
        local: params.local_dims,
        mg_levels: params.mg_levels,
        restart: params.restart,
        iters_per_solve: params.max_iters_per_solve,
        benchmark_solves: params.benchmark_solves,
        validation_max_iters: params.validation_max_iters,
        machine: "mi250x_gcd".into(),
        network: "frontier_slingshot".into(),
        series: vec![
            modeled("modeled mxp", "mxp"),
            modeled("modeled double", "double"),
            measured("measured mxp", "mxp"),
            measured("measured double", "double"),
        ],
    };
    let report: CampaignReport = run_campaign(&spec).expect("fig5 campaign");

    let mut rows = Vec::new();
    for &nd in &nodes {
        let mxp = report.find_cell("modeled mxp", "mxp", Some(nd), None).unwrap();
        let dbl = report.find_cell("modeled double", "double", Some(nd), None).unwrap();
        let sp = speedups(mxp, dbl);
        rows.push((
            nd as f64,
            vec![
                get(&sp, "Total"),
                get(&sp, "GS"),
                get(&sp, "SpMV"),
                get(&sp, "Ortho"),
                get(&sp, "Restr"),
            ],
        ));
    }
    println!(
        "{}",
        series_table(
            "Figure 5: penalized mxp/double speedups on Frontier (modeled)",
            "nodes",
            &["Total", "GS", "SpMV", "Ortho", "Restr"],
            &rows
        )
    );
    println!("(paper: ~1.6x overall, orthogonalization best at ~2x, GS/SpMV lower)\n");

    // Measured counterpart at workstation scale, from the same report.
    println!(
        "Measured on this machine: {} thread-ranks, {}^3 local, {} iters/solve",
        ranks, params.local_dims.0, params.max_iters_per_solve
    );
    let mxp = report.find_cell("measured mxp", "mxp", None, Some(ranks)).unwrap();
    let dbl = report.find_cell("measured double", "double", None, Some(ranks)).unwrap();
    let sp = speedups(mxp, dbl);
    println!("  total speedup (penalized): {:.3}x", get(&sp, "Total"));
    for (motif, s) in sp.iter().filter(|(n, _)| n != "Total") {
        println!("  {:<8} {:.3}x", motif, s);
    }
    println!(
        "  validation: nd = {}, nir = {}, penalty = {:.4}",
        mxp.nd.unwrap(),
        mxp.nir.unwrap(),
        mxp.penalty.unwrap()
    );
    println!("\n{}", report.to_text());
}
