//! Regenerates **Figure 5**: penalized speedups of mixed-precision
//! GMRES-IR over double-precision GMRES, overall and per motif
//! (GS/multigrid, SpMV, orthogonalization), across scales on Frontier.
//!
//! Two sections: the modeled exascale curves, and a *measured* run of
//! both solvers on this machine (real kernels, thread-ranks) showing
//! the same shape at workstation scale.
//!
//! Run: `cargo run --release -p hpgmxp-bench --bin fig5_speedups`

use hpgmxp_bench::{series_table, workstation_params, workstation_ranks};
use hpgmxp_core::benchmark::{run_benchmark, ValidationMode};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_machine::simulate::{motif_speedups, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let cfg = SimConfig::paper_mxp();

    let nodes = [1usize, 8, 64, 512, 1024, 4096, 9408];
    let mut rows = Vec::new();
    for &nd in &nodes {
        let sp = motif_speedups(&cfg, &machine, &net, nd * machine.devices_per_node);
        let get = |l: &str| sp.iter().find(|(n, _)| n == l).map(|(_, v)| *v).unwrap_or(0.0);
        rows.push((
            nd as f64,
            vec![get("Total"), get("GS"), get("SpMV"), get("Ortho"), get("Restr")],
        ));
    }
    println!(
        "{}",
        series_table(
            "Figure 5: penalized mxp/double speedups on Frontier (modeled)",
            "nodes",
            &["Total", "GS", "SpMV", "Ortho", "Restr"],
            &rows
        )
    );
    println!("(paper: ~1.6x overall, orthogonalization best at ~2x, GS/SpMV lower)\n");

    // Measured counterpart at workstation scale.
    let params = workstation_params();
    let ranks = workstation_ranks();
    println!(
        "Measured on this machine: {} thread-ranks, {}^3 local, {} iters/solve",
        ranks, params.local_dims.0, params.max_iters_per_solve
    );
    let report = run_benchmark(&params, ImplVariant::Optimized, ranks, ValidationMode::Standard);
    println!("  total speedup (penalized): {:.3}x", report.speedup);
    for (motif, s) in report.motif_speedups() {
        println!("  {:<8} {:.3}x", motif, s);
    }
    println!("\n{}", report.to_text());
}
