//! Criterion benchmarks of the composed solver components: the
//! multigrid V-cycle (both variants and precisions) and full GMRES /
//! GMRES-IR fixed-iteration runs — the measured analog of the paper's
//! figure 5 "total" speedup on this machine.
//!
//! Run: `cargo bench -p hpgmxp-bench --bench solvers`

use criterion::{criterion_group, criterion_main, Criterion};
use hpgmxp_bench::single_rank_problem;
use hpgmxp_comm::{SelfComm, Timeline};
use hpgmxp_core::config::ImplVariant;
use hpgmxp_core::gmres::{gmres_solve_f64, GmresOptions};
use hpgmxp_core::gmres_ir::gmres_ir_solve;
use hpgmxp_core::mg::{apply_mg, MgWorkspace, SmootherKind};
use hpgmxp_core::motifs::MotifStats;
use hpgmxp_core::ops::OpCtx;
use std::hint::black_box;
use std::time::Duration;

fn bench_mg_cycle(c: &mut Criterion) {
    let prob = single_rank_problem(32, 4);
    let comm = SelfComm;
    let tl = Timeline::disabled();
    let rhs = prob.b.clone();
    let rhs32: Vec<f32> = rhs.iter().map(|&v| v as f32).collect();

    let mut g = c.benchmark_group("mg_vcycle_32cubed");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for variant in [ImplVariant::Optimized, ImplVariant::Reference] {
        let ctx = OpCtx::new(&comm, variant, &tl);
        g.bench_function(format!("{:?} fp64", variant), |b| {
            let mut stats = MotifStats::new();
            let mut ws: MgWorkspace<f64> = MgWorkspace::new(&prob.levels);
            let mut out = vec![0.0f64; prob.n_local()];
            b.iter(|| {
                apply_mg(
                    &ctx,
                    &prob.levels,
                    &mut stats,
                    &mut ws,
                    1,
                    1,
                    SmootherKind::Forward,
                    black_box(&rhs),
                    &mut out,
                )
            })
        });
        g.bench_function(format!("{:?} fp32", variant), |b| {
            let mut stats = MotifStats::new();
            let mut ws: MgWorkspace<f32> = MgWorkspace::new(&prob.levels);
            let mut out = vec![0.0f32; prob.n_local()];
            b.iter(|| {
                apply_mg(
                    &ctx,
                    &prob.levels,
                    &mut stats,
                    &mut ws,
                    1,
                    1,
                    SmootherKind::Forward,
                    black_box(&rhs32),
                    &mut out,
                )
            })
        });
    }
    g.finish();
}

fn bench_full_solvers(c: &mut Criterion) {
    // The headline measured comparison: 30 fixed iterations of double
    // GMRES vs mixed GMRES-IR on a 32³ problem.
    let prob = single_rank_problem(32, 4);
    let comm = SelfComm;
    let tl = Timeline::disabled();
    let opts = GmresOptions { max_iters: 30, tol: 0.0, ..Default::default() };

    let mut g = c.benchmark_group("gmres_30_iterations_32cubed");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    g.bench_function("double", |b| b.iter(|| black_box(gmres_solve_f64(&comm, &prob, &opts, &tl))));
    g.bench_function("mxp (GMRES-IR)", |b| {
        b.iter(|| black_box(gmres_ir_solve(&comm, &prob, &opts, &tl)))
    });
    g.finish();
}

criterion_group!(benches, bench_mg_cycle, bench_full_solvers);
criterion_main!(benches);
