//! Collective-engine microbenchmarks: allreduce and barrier latency
//! under both `HPGMXP_COLL` algorithms, per transport, at P ∈ {2, 4}.
//!
//! Run: `cargo bench -p hpgmxp-bench --bench collectives`
//!
//! Each configuration builds one persistent world (thread, shmem, or
//! socket — all in-process, one OS thread per rank) and drives it from
//! rank 0's thread. The helper ranks run a control loop keyed off a
//! tiny *control allreduce*: rank 0 contributes 0.0 while measuring
//! and −P to stop, so every rank executes exactly the same collective
//! sequence without any side channel that could skew the timing.
//!
//! * `allreduce_*` benches time exactly one engine allreduce per
//!   iteration (the control allreduce IS the measured op).
//! * `barrier_*` benches time one control allreduce plus
//!   [`BARRIERS_PER_STEP`] barriers per iteration, so the barrier cost
//!   dominates and the (identical-per-algorithm) control overhead
//!   stays in the noise.
//!
//! The star-vs-rd comparison on a single box measures the *total
//! scheduling work* of each schedule, not the at-scale critical path:
//! on a 1-core host all P ranks serialize, so the star's root
//! bottleneck (the thing `rank0_allreduce_receive_load_drops_to_log_p`
//! pins structurally) does not translate into wall clock the way it
//! does across real nodes. The tracked numbers gate regressions in
//! the engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use hpgmxp_comm::launch::free_port;
use hpgmxp_comm::{
    set_algo_override, CollAlgo, Comm, ReduceOp, ShmemWorld, SocketWorld, ThreadWorld,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

/// Barriers per measured iteration of the `barrier_*` benches.
const BARRIERS_PER_STEP: usize = 8;

/// One control step: the control allreduce (rank 0 contributes
/// `signal`, helpers 0.0), then `barriers` barriers unless the summed
/// signal said stop. Returns `true` to keep going.
fn step<C: Comm>(c: &C, signal: f64, barriers: usize) -> bool {
    let mut v = [signal];
    c.allreduce(&mut v, ReduceOp::Sum);
    if v[0] < -0.5 {
        return false;
    }
    for _ in 0..barriers {
        c.barrier();
    }
    true
}

/// Helper ranks loop the control step until rank 0 signals stop.
fn helper_loop<C: Comm>(c: &C, barriers: usize) {
    while step(c, 0.0, barriers) {}
}

/// Build a world via `build`, bench `steps` iterations from rank 0's
/// thread, then stop the helpers and tear the world down.
fn bench_world<C, B>(g: &mut criterion::BenchmarkGroup<'_>, id: String, barriers: usize, build: B)
where
    C: Comm,
    B: FnOnce() -> (C, Vec<JoinHandle<()>>),
{
    let (root, helpers) = build();
    g.bench_function(id, |b| {
        b.iter(|| {
            let went = step(&root, 0.0, barriers);
            assert!(went, "stop signal cannot appear mid-measurement");
        })
    });
    let stopped = !step(&root, -1.0, barriers);
    assert!(stopped);
    for h in helpers {
        h.join().expect("helper rank panicked");
    }
    drop(root);
}

/// A process-unique shmem world id per bench configuration, so a
/// world's `/dev/shm` file can never collide with its successor's.
fn fresh_shm_id() -> String {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    format!("bench-{}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::Relaxed))
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("coll");
    g.warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10);

    for algo in [CollAlgo::Star, CollAlgo::RecursiveDoubling] {
        // The engine caches HPGMXP_COLL; the override pins the
        // algorithm per configuration regardless of the environment.
        set_algo_override(Some(algo));
        for p in [2usize, 4] {
            for (op, barriers) in [("allreduce", 0), ("barrier", BARRIERS_PER_STEP)] {
                let label = |transport: &str| format!("{op}_{}/{transport}/P{p}", algo.name());

                bench_world(&mut g, label("thread"), barriers, || {
                    let mut comms = ThreadWorld::connect(p);
                    let root = comms.remove(0);
                    let helpers = comms
                        .into_iter()
                        .map(|c| std::thread::spawn(move || helper_loop(&c, barriers)))
                        .collect();
                    (root, helpers)
                });

                bench_world(&mut g, label("shmem"), barriers, || {
                    let shm_id = fresh_shm_id();
                    let helpers = (1..p)
                        .map(|rank| {
                            let id = shm_id.clone();
                            std::thread::spawn(move || {
                                let c = ShmemWorld::connect(rank, p, &id);
                                helper_loop(&c, barriers);
                            })
                        })
                        .collect();
                    (ShmemWorld::connect(0, p, &shm_id), helpers)
                });

                bench_world(&mut g, label("socket"), barriers, || {
                    let port = free_port();
                    let helpers = (1..p)
                        .map(|rank| {
                            std::thread::spawn(move || {
                                let c = SocketWorld::connect(rank, p, port);
                                helper_loop(&c, barriers);
                            })
                        })
                        .collect();
                    (SocketWorld::connect(0, p, port), helpers)
                });
            }
        }
    }
    set_algo_override(None);
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
