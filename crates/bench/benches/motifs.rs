//! Criterion microbenchmarks of every computational motif, in both
//! precisions and both storage formats — the measured counterpart of
//! the paper's figure 5/8 kernel comparisons on this machine.
//!
//! Run: `cargo bench -p hpgmxp-bench --bench motifs`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpgmxp_bench::single_rank_problem;
use hpgmxp_sparse::blas::{self, Basis};
use hpgmxp_sparse::gauss_seidel::{
    gs_forward, gs_forward_reference, gs_multicolor, split_lower_upper,
};
use hpgmxp_sparse::simd::{self, SimdLevel};
use hpgmxp_sparse::{CsrMatrix, EllMatrix, Half, LevelSchedule, Scalar};
use std::hint::black_box;
use std::time::Duration;

const N: u32 = 32;

fn tune(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_spmv(c: &mut Criterion) {
    let prob = single_rank_problem(N, 1);
    let csr64 = &prob.levels[0].csr64();
    let ell64 = &prob.levels[0].ell64();
    let csr32: CsrMatrix<f32> = csr64.convert();
    let ell32: EllMatrix<f32> = ell64.convert();
    let n = csr64.ncols();
    let x64: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let mut y64 = vec![0.0f64; csr64.nrows()];
    let mut y32 = vec![0.0f32; csr64.nrows()];

    let mut g = tune(c).benchmark_group("spmv");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    g.throughput(Throughput::Bytes(csr64.spmv_matrix_bytes() as u64));
    g.bench_function(BenchmarkId::new("csr", "fp64"), |b| {
        b.iter(|| csr64.spmv(black_box(&x64), &mut y64))
    });
    g.bench_function(BenchmarkId::new("csr", "fp32"), |b| {
        b.iter(|| csr32.spmv(black_box(&x32), &mut y32))
    });
    g.bench_function(BenchmarkId::new("csr_par", "fp64"), |b| {
        b.iter(|| csr64.spmv_par(black_box(&x64), &mut y64))
    });
    g.throughput(Throughput::Bytes(ell64.spmv_matrix_bytes() as u64));
    g.bench_function(BenchmarkId::new("ell", "fp64"), |b| {
        b.iter(|| ell64.spmv(black_box(&x64), &mut y64))
    });
    g.bench_function(BenchmarkId::new("ell", "fp32"), |b| {
        b.iter(|| ell32.spmv(black_box(&x32), &mut y32))
    });
    // The CPU traversal study (ROADMAP "ELL SpMV tuning"): sequential
    // row-blocked walk vs the two parallel traversals; `ell_par` is the
    // heuristic pick.
    g.bench_function(BenchmarkId::new("ell_rowblock", "fp64"), |b| {
        b.iter(|| ell64.spmv_rowblock(black_box(&x64), &mut y64))
    });
    g.bench_function(BenchmarkId::new("ell_par_rowwise", "fp64"), |b| {
        b.iter(|| ell64.spmv_par_rowwise(black_box(&x64), &mut y64))
    });
    g.bench_function(BenchmarkId::new("ell_par", "fp64"), |b| {
        b.iter(|| ell64.spmv_par(black_box(&x64), &mut y64))
    });
    g.throughput(Throughput::Bytes(ell32.spmv_matrix_bytes() as u64));
    g.bench_function(BenchmarkId::new("ell_par", "fp32"), |b| {
        b.iter(|| ell32.spmv_par(black_box(&x32), &mut y32))
    });
    // Split-precision kernels (precision-policy engine): values loaded
    // at a narrower storage precision than the accumulators — the
    // matrix-value stream halves/quarters while results keep the
    // accumulate precision's rounding.
    let ell16: EllMatrix<hpgmxp_sparse::Half> = ell64.convert();
    g.throughput(Throughput::Bytes(ell32.spmv_matrix_bytes() as u64));
    g.bench_function(BenchmarkId::new("ell_split", "f32s-f64a"), |b| {
        b.iter(|| ell32.spmv_par(black_box(&x64), &mut y64))
    });
    g.throughput(Throughput::Bytes(ell16.spmv_matrix_bytes() as u64));
    g.bench_function(BenchmarkId::new("ell_split", "f16s-f32a"), |b| {
        b.iter(|| ell16.spmv_par(black_box(&x32), &mut y32))
    });
    g.finish();
}

fn bench_gauss_seidel(c: &mut Criterion) {
    let prob = single_rank_problem(N, 1);
    let l = &prob.levels[0];
    let n = l.n_local();
    let r64: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    let r32: Vec<f32> = r64.iter().map(|&v| v as f32).collect();
    let (low, up) = split_lower_upper(l.csr64());
    let schedule = LevelSchedule::build(l.csr64());

    let mut g = c.benchmark_group("gauss_seidel");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    g.throughput(Throughput::Bytes(l.csr64().spmv_matrix_bytes() as u64));
    g.bench_function("lexicographic fp64", |b| {
        let mut z = vec![0.0f64; l.vec_len()];
        b.iter(|| gs_forward(l.csr64(), black_box(&r64), &mut z))
    });
    g.throughput(Throughput::Bytes(l.ell64().spmv_matrix_bytes() as u64));
    g.bench_function("multicolor ELL fp64", |b| {
        let mut z = vec![0.0f64; l.vec_len()];
        b.iter(|| gs_multicolor(l.ell64(), &l.coloring, black_box(&r64), &mut z))
    });
    g.throughput(Throughput::Bytes(l.ell32().spmv_matrix_bytes() as u64));
    g.bench_function("multicolor ELL fp32", |b| {
        let mut z = vec![0.0f32; l.vec_len()];
        b.iter(|| gs_multicolor(l.ell32(), &l.coloring, black_box(&r32), &mut z))
    });
    // Split sweep (precision-policy engine): fp32-stored values, f64
    // relaxation arithmetic — matrix traffic of fp32 at f64 rounding.
    g.bench_function("multicolor ELL split f32s-f64a", |b| {
        let mut z = vec![0.0f64; l.vec_len()];
        b.iter(|| gs_multicolor(l.ell32(), &l.coloring, black_box(&r64), &mut z))
    });
    // One sweep streams the upper factor (SpMV) then the lower factor
    // (triangular solve); together they cover A's nonzeros once, plus
    // the structural zero diagonals and the second row-pointer array.
    g.throughput(Throughput::Bytes((low.spmv_matrix_bytes() + up.spmv_matrix_bytes()) as u64));
    g.bench_function("reference two-kernel fp64", |b| {
        let mut z = vec![0.0f64; l.vec_len()];
        b.iter(|| gs_forward_reference(&low, &up, &schedule, black_box(&r64), &mut z))
    });
    g.finish();
}

fn bench_ortho(c: &mut Criterion) {
    let n = 32usize * 32 * 32;
    let k = 15usize;
    let mut q64: Basis<f64> = Basis::new(n, k + 1);
    let mut q32: Basis<f32> = Basis::new(n, k + 1);
    for j in 0..=k {
        for (i, v) in q64.col_mut(j).iter_mut().enumerate() {
            *v = ((i * (j + 1)) as f64 * 0.001).sin();
        }
        for (i, v) in q32.col_mut(j).iter_mut().enumerate() {
            *v = ((i * (j + 1)) as f32 * 0.001).sin();
        }
    }
    let mut g = c.benchmark_group("ortho_gemv");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    g.throughput(Throughput::Bytes((n * k * 8) as u64));
    g.bench_function("project fp64", |b| b.iter(|| black_box(q64.project_local(k))));
    g.throughput(Throughput::Bytes((n * k * 4) as u64));
    g.bench_function("project fp32", |b| b.iter(|| black_box(q32.project_local(k))));
    g.finish();
}

fn bench_vector_ops(c: &mut Criterion) {
    let n = 1 << 18;
    let x64: Vec<f64> = (0..n).map(|i| i as f64 * 1e-6).collect();
    let y64 = x64.clone();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let y32 = x32.clone();

    let mut g = c.benchmark_group("blas1");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    g.throughput(Throughput::Bytes((n * 16) as u64));
    g.bench_function("dot fp64", |b| b.iter(|| black_box(blas::dot(&x64, &y64))));
    g.bench_function("dot_par fp64", |b| b.iter(|| black_box(blas::dot_par(&x64, &y64))));
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("dot fp32", |b| b.iter(|| black_box(blas::dot(&x32, &y32))));
    // waxpby streams x, y in and w out: 3 slices.
    g.throughput(Throughput::Bytes((n * 24) as u64));
    g.bench_function("waxpby fp64", |b| {
        let mut w = vec![0.0f64; n];
        b.iter(|| blas::waxpby(2.0, &x64, 0.5, &y64, &mut w))
    });
    g.throughput(Throughput::Bytes((n * 12) as u64));
    g.bench_function("waxpby fp32", |b| {
        let mut w = vec![0.0f32; n];
        b.iter(|| blas::waxpby(2.0, &x32, 0.5, &y32, &mut w))
    });
    // axpy reads x and reads+writes y.
    g.throughput(Throughput::Bytes((n * 24) as u64));
    g.bench_function("axpy fp64", |b| {
        let mut y = vec![0.0f64; n];
        b.iter(|| blas::axpy(1.000001, &x64, &mut y))
    });
    g.throughput(Throughput::Bytes((n * 20) as u64));
    g.bench_function("axpy mixed f32->f64", |b| {
        let mut y = vec![0.0f64; n];
        b.iter(|| blas::axpy_f32_into_f64(1.5, &x32, &mut y))
    });
    g.finish();
}

/// The dispatch levels this host can force: always scalar, plus avx2
/// when the CPU has the features. Labels become part of the bench IDs
/// so the baseline tracks each kernel family separately.
fn forceable_levels() -> Vec<(&'static str, SimdLevel)> {
    let mut v = vec![("scalar", SimdLevel::Scalar)];
    if simd::features().supports_avx2_path() {
        v.push(("avx2", SimdLevel::Avx2));
    }
    v
}

/// Head-to-head kernel-family comparison: the same motif forced onto
/// the scalar reference path and the vector path (the measured
/// speedups the ROADMAP's tile-centric-SIMD item asked for). The
/// default-dispatch entries above stay as the tracked regression
/// surface; these isolate the dispatch variable.
fn bench_simd_dispatch(c: &mut Criterion) {
    let prob = single_rank_problem(N, 1);
    let l = &prob.levels[0];
    let ell64 = l.ell64();
    let ell16: EllMatrix<Half> = ell64.convert();
    let n = ell64.ncols();
    let x64: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let mut y64 = vec![0.0f64; ell64.nrows()];
    let mut y32 = vec![0.0f32; ell64.nrows()];
    let r64: Vec<f64> = (0..l.n_local()).map(|i| (i % 13) as f64).collect();

    for (label, level) in forceable_levels() {
        simd::set_level_override(Some(level));

        let mut g = c.benchmark_group("spmv");
        g.warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .sample_size(10);
        g.throughput(Throughput::Bytes(ell64.spmv_matrix_bytes() as u64));
        g.bench_function(BenchmarkId::new("ell_simd", format!("fp64 {label}")), |b| {
            b.iter(|| ell64.spmv(black_box(&x64), &mut y64))
        });
        g.throughput(Throughput::Bytes(ell16.spmv_matrix_bytes() as u64));
        g.bench_function(BenchmarkId::new("ell_simd_split", format!("f16s-f32a {label}")), |b| {
            b.iter(|| ell16.spmv(black_box(&x32), &mut y32))
        });
        g.finish();

        let mut g = c.benchmark_group("gauss_seidel");
        g.warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .sample_size(10);
        g.throughput(Throughput::Bytes(ell64.spmv_matrix_bytes() as u64));
        g.bench_function(BenchmarkId::new("gs_simd", format!("fp64 {label}")), |b| {
            let mut z = vec![0.0f64; l.vec_len()];
            b.iter(|| gs_multicolor(ell64, &l.coloring, black_box(&r64), &mut z))
        });
        g.finish();

        // The ghost codec's converters: fp16 widening/narrowing traffic
        // (read 2 + write 4 bytes per element each way).
        let m = 1usize << 18;
        let h: Vec<Half> = (0..m).map(|i| Half::from_f64((i % 97) as f64 * 0.25)).collect();
        let mut wide = vec![0.0f32; m];
        let mut back = vec![Half::ZERO; m];
        let mut g = c.benchmark_group("convert");
        g.warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .sample_size(10);
        g.throughput(Throughput::Bytes((m * 12) as u64));
        g.bench_function(BenchmarkId::new("widen_narrow", format!("f16<->f32 {label}")), |b| {
            b.iter(|| {
                hpgmxp_sparse::half::widen_f16_slice(black_box(&h), &mut wide);
                hpgmxp_sparse::half::narrow_f32_slice(black_box(&wide), &mut back);
            })
        });
        g.finish();
    }
    simd::set_level_override(None);
}

fn bench_coloring(c: &mut Criterion) {
    let prob = single_rank_problem(16, 1);
    let a = &prob.levels[0].csr64();
    let mut g = c.benchmark_group("coloring");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    g.bench_function("jpl 16^3", |b| b.iter(|| black_box(hpgmxp_sparse::jpl_coloring(a, 42))));
    g.bench_function("greedy 16^3", |b| b.iter(|| black_box(hpgmxp_sparse::greedy_coloring(a))));
    g.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_gauss_seidel,
    bench_ortho,
    bench_vector_ops,
    bench_simd_dispatch,
    bench_coloring
);
criterion_main!(benches);
