//! End-to-end tests of `hpgmxp-launch`: real multi-process socket jobs
//! on localhost, driven through the launcher binary itself with its
//! built-in `_worker` SPMD workload.
//!
//! Covered paths: all ranks exiting cleanly, one rank crashing
//! mid-solve (job killed, `rank R died` diagnostic, non-zero exit, no
//! orphan processes), and a hung rank tripping `--timeout-secs`
//! (exit 124).

use std::process::{Command, Output};

const LAUNCH: &str = env!("CARGO_BIN_EXE_hpgmxp-launch");

fn launch(args: &[&str]) -> Output {
    Command::new(LAUNCH).args(args).output().expect("run hpgmxp-launch")
}

/// The rank PIDs the launcher prints at spawn time.
fn spawned_pids(stdout: &str) -> Vec<u32> {
    stdout
        .lines()
        .filter(|l| l.starts_with("[launch] rank "))
        .filter_map(|l| l.split("pid=").nth(1))
        .filter_map(|rest| rest.split_whitespace().next())
        .filter_map(|p| p.parse().ok())
        .collect()
}

/// No child outlives the launcher: every spawned PID must be gone from
/// the process table (kill_all reaps, so even SIGKILLed ranks vanish).
fn assert_no_orphans(pids: &[u32]) {
    // A freshly reaped PID can linger in /proc for an instant on a
    // loaded box; give the kernel a beat before declaring an orphan.
    for _ in 0..20 {
        if pids.iter().all(|p| !std::path::Path::new(&format!("/proc/{p}")).exists()) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let alive: Vec<&u32> =
        pids.iter().filter(|p| std::path::Path::new(&format!("/proc/{p}")).exists()).collect();
    panic!("orphaned rank processes left behind: {alive:?}");
}

#[test]
fn clean_job_exits_zero_with_all_rounds_done() {
    let out =
        launch(&["-n", "2", "--timeout-secs", "120", "--", LAUNCH, "_worker", "--rounds", "5"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("all 2 ranks exited cleanly"), "{stdout}");
    // Both ranks ran every round, and output is rank-tagged.
    for rank in 0..2 {
        assert!(stdout.contains(&format!("[rank {rank}] round 4 ok")), "{stdout}");
    }
    assert_eq!(spawned_pids(&stdout).len(), 2);
}

#[test]
fn crashed_rank_kills_the_job_with_a_diagnostic_and_no_orphans() {
    let out = launch(&[
        "-n",
        "3",
        "--timeout-secs",
        "120",
        "--",
        LAUNCH,
        "_worker",
        "--rounds",
        "50",
        "--crash-rank",
        "1",
        "--crash-round",
        "2",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a dead rank must fail the job\nstdout:\n{stdout}");
    assert_ne!(out.status.code(), Some(124), "death, not timeout:\n{stderr}");
    // The launcher names the rank that died (rank 1 exits first; peers
    // may cascade-panic afterwards and be reported too).
    assert!(stderr.contains("rank 1 died"), "{stderr}");
    // The failure report carries the rank-tagged output tails.
    assert!(stderr.contains("last output of each rank"), "{stderr}");
    assert!(stderr.contains("crashing deliberately"), "{stderr}");
    let pids = spawned_pids(&stdout);
    assert_eq!(pids.len(), 3);
    assert_no_orphans(&pids);
}

#[test]
fn bad_arguments_print_usage_and_exit_2() {
    // Each malformed invocation gets a one-line diagnostic naming the
    // problem, the usage text, and the distinct exit code 2 (so CI can
    // tell "you called it wrong" from "the job failed").
    let cases: &[&[&str]] = &[
        &[],                             // no arguments at all
        &["-n", "2"],                    // missing `-- command`
        &["--", "true"],                 // missing -n
        &["-n", "zero", "--", "true"],   // unparseable rank count
        &["-n", "2", "--retries"],       // flag missing its value
        &["--frobnicate", "--", "true"], // unknown option
    ];
    for args in cases {
        let out = launch(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "args {args:?}\nstderr:\n{stderr}");
        assert!(stderr.contains("hpgmxp-launch:"), "args {args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?} must print usage: {stderr}");
    }
}

#[test]
fn hung_rank_trips_the_timeout() {
    let out = launch(&[
        "-n",
        "2",
        "--timeout-secs",
        "3",
        "--",
        LAUNCH,
        "_worker",
        "--rounds",
        "5",
        "--hang-rank",
        "0",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(124), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("exceeded --timeout-secs"), "{stderr}");
    assert_no_orphans(&spawned_pids(&stdout));
}
