//! Chaos tests: seeded fault plans driven through [`FaultyComm`] over a
//! 4-rank thread world. The invariants under test:
//!
//! * a crashed or hung rank never wedges its peers — every survivor
//!   returns a *typed* [`CommError`] within the recv deadline;
//! * benign wire faults (duplicate, delay, reorder) never change the
//!   result of a deterministic workload;
//! * the same plan seed replays the same outcome.
//!
//! Every test bounds its blocking operations with a deadline, so the
//! suite can fail loudly but can never hang CI.

// The proptest shim's muncher needs headroom for the 3-parameter
// property at the bottom.
#![recursion_limit = "512"]

use hpgmxp_comm::socket_world::SocketConfig;
use hpgmxp_comm::{
    run_threads_fallible, set_algo_override, CollAlgo, Comm, CommError, CommErrorKind, CommResult,
    FaultEvent, FaultKind, FaultPlan, FaultyComm, ReduceOp, ShmemWorld, ThreadComm,
};
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

const P: usize = 4;

/// Serializes the tests that pin the process-global `HPGMXP_COLL`
/// override, so concurrently running tests cannot flip each other's
/// algorithm mid-run. (Every *other* test in this file is
/// algorithm-agnostic by the determinism contract.)
static ALGO_LOCK: Mutex<()> = Mutex::new(());

/// A deterministic SPMD workload: `rounds` of (allreduce, ring
/// send/recv). Returns the final allreduce value so clean runs can be
/// compared across fault plans.
fn ring_workload(c: &FaultyComm<ThreadComm>, rounds: usize) -> CommResult<f64> {
    let rank = c.rank();
    let size = c.size();
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let mut acc = 0.0f64;
    let mut buf = [0u8; 8];
    for round in 0..rounds {
        acc = c.allreduce_scalar_checked(acc + (rank + round) as f64, ReduceOp::Sum)?;
        c.send_from_checked(next, round as u64, &acc.to_le_bytes())?;
        c.recv_into_checked(prev, round as u64, &mut buf)?;
        let got = f64::from_le_bytes(buf);
        assert_eq!(got, acc, "ring payload must survive the wire");
    }
    Ok(acc)
}

fn run_plan(
    plan: &FaultPlan,
    rounds: usize,
    deadline: Duration,
) -> Vec<std::thread::Result<CommResult<f64>>> {
    run_threads_fallible(P, Some(deadline), move |c| {
        let c = FaultyComm::new(c, plan.clone());
        ring_workload(&c, rounds)
    })
}

fn crash_plan(seed: u64, rank: usize, at_exchange: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    plan.events = Some(vec![FaultEvent { kind: FaultKind::CrashRank, rank, at_exchange }]);
    plan
}

#[test]
fn crashed_rank_surfaces_typed_errors_on_every_survivor() {
    let plan = crash_plan(11, 1, 4);
    let started = std::time::Instant::now();
    let results = run_plan(&plan, 20, Duration::from_millis(400));
    // The victim panicked (thread-world crash semantics).
    assert!(results[1].is_err(), "rank 1 must have crashed");
    // Every survivor got a typed error — not a hang, not a panic.
    for (rank, res) in results.iter().enumerate() {
        if rank == 1 {
            continue;
        }
        let err: &CommError =
            res.as_ref().expect("survivors must not panic").as_ref().expect_err("typed error");
        assert!(
            matches!(
                err.kind,
                CommErrorKind::Timeout | CommErrorKind::PeerClosed | CommErrorKind::PeerLost
            ),
            "rank {rank}: unexpected kind in {err}"
        );
        // The message is actionable: it names a peer or the barrier.
        assert!(!err.detail.is_empty(), "rank {rank}: {err}");
    }
    // Detection is bounded by the deadline, not by luck.
    assert!(started.elapsed() < Duration::from_secs(30), "took {:?}", started.elapsed());
}

#[test]
fn hung_rank_is_detected_within_the_deadline() {
    let mut plan = FaultPlan::clean(5);
    plan.hang_millis = Some(900);
    plan.events = Some(vec![FaultEvent { kind: FaultKind::HangRank, rank: 2, at_exchange: 6 }]);
    let results = run_plan(&plan, 20, Duration::from_millis(200));
    // A hung rank still holds its endpoint (it heartbeats in the socket
    // world; here it simply sleeps), so the *only* way peers notice is
    // the recv deadline: every survivor must report Timeout.
    let mut timeouts = 0;
    for (rank, res) in results.iter().enumerate() {
        if rank == 2 {
            continue;
        }
        if let Ok(Err(e)) = res {
            assert!(
                matches!(e.kind, CommErrorKind::Timeout | CommErrorKind::PeerClosed),
                "rank {rank}: {e}"
            );
            if e.kind == CommErrorKind::Timeout {
                assert!(e.elapsed >= Duration::from_millis(200), "rank {rank}: {e}");
                timeouts += 1;
            }
        } else {
            panic!("rank {rank} must fail typed, got {res:?}");
        }
    }
    assert!(timeouts >= 1, "at least one peer times out waiting on the hung rank");
}

#[test]
fn benign_wire_faults_do_not_change_the_answer() {
    // Duplicates, delays, and reorders are absorbed by tag matching and
    // FIFO-per-(peer, tag) delivery: the workload's asserts verify
    // payload integrity and this test verifies the reduced value.
    let clean: Vec<f64> = run_plan(&FaultPlan::clean(3), 12, Duration::from_secs(20))
        .into_iter()
        .map(|r| r.expect("no panics").expect("no faults"))
        .collect();
    let mut noisy_plan = FaultPlan::clean(3);
    noisy_plan.duplicate = Some(0.3);
    noisy_plan.delay = Some(0.2);
    noisy_plan.delay_millis = Some(2);
    noisy_plan.reorder = Some(0.25);
    let noisy: Vec<f64> = run_plan(&noisy_plan, 12, Duration::from_secs(20))
        .into_iter()
        .map(|r| r.expect("no panics").expect("benign faults must not error"))
        .collect();
    assert_eq!(clean, noisy);
}

#[test]
fn same_seed_replays_the_same_outcome() {
    // Determinism is the whole point of the plan: two runs of the same
    // scenario classify every rank identically.
    let plan = crash_plan(77, 3, 9);
    // Classification is by *fate* (crashed / failed typed / finished
    // with a value), not by error kind: which survivor's deadline fires
    // first is scheduler timing, the fates are the scripted scenario.
    let classify = |results: Vec<std::thread::Result<CommResult<f64>>>| -> Vec<String> {
        results
            .into_iter()
            .map(|r| match r {
                Err(_) => "panic".to_string(),
                Ok(Err(_)) => "err".to_string(),
                Ok(Ok(v)) => format!("ok:{v}"),
            })
            .collect()
    };
    let a = classify(run_plan(&plan, 20, Duration::from_millis(300)));
    let b = classify(run_plan(&plan, 20, Duration::from_millis(300)));
    assert_eq!(a[3], "panic", "the scripted victim dies both times");
    assert_eq!(a, b, "same seed, same scenario, same outcome");
}

/// A workload of nothing but collectives, so a scripted event at any
/// exchange index fires *inside* an allreduce or barrier — the
/// fault-mid-collective cases the engine must surface typed.
fn collective_workload<C: Comm>(c: &C, rounds: usize) -> CommResult<f64> {
    let mut acc = 0.0f64;
    for round in 0..rounds {
        acc = c.allreduce_scalar_checked(acc + (c.rank() + round) as f64, ReduceOp::Sum)?;
        c.barrier_checked()?;
    }
    Ok(acc)
}

/// Assert every survivor of a faulted collective run failed typed
/// (Timeout / PeerClosed / PeerLost) with a non-empty detail, and that
/// timeouts carry the elapsed wait.
fn assert_survivors_failed_typed(
    results: &[std::thread::Result<CommResult<f64>>],
    victim: usize,
    deadline: Duration,
    label: &str,
) {
    let mut typed = 0;
    for (rank, res) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        let err: &CommError = res
            .as_ref()
            .unwrap_or_else(|_| panic!("{label}: survivor rank {rank} must not panic"))
            .as_ref()
            .expect_err("survivor must fail typed");
        assert!(
            matches!(
                err.kind,
                CommErrorKind::Timeout | CommErrorKind::PeerClosed | CommErrorKind::PeerLost
            ),
            "{label}: rank {rank}: unexpected kind in {err}"
        );
        assert!(!err.detail.is_empty(), "{label}: rank {rank}: {err}");
        // The attribution contract: a typed failure names the peer it
        // was waiting on or carries how long it waited (timeouts carry
        // both).
        assert!(
            err.peer.is_some() || err.elapsed > Duration::ZERO,
            "{label}: rank {rank}: unattributed error {err}"
        );
        if err.kind == CommErrorKind::Timeout {
            assert!(err.elapsed >= deadline, "{label}: rank {rank}: {err}");
        }
        typed += 1;
    }
    assert_eq!(typed, P - 1, "{label}: every survivor reports");
}

#[test]
fn crash_inside_an_allreduce_fails_typed_under_both_algorithms() {
    let _guard = ALGO_LOCK.lock().unwrap();
    for algo in [CollAlgo::Star, CollAlgo::RecursiveDoubling] {
        set_algo_override(Some(algo));
        // Exchange 5 is mid-stream in the pure-collective workload:
        // rank 1 dies inside its 3rd allreduce (alternating
        // allreduce/barrier, 0-indexed), under way on every rank.
        let plan = crash_plan(21, 1, 5);
        let started = std::time::Instant::now();
        let results = run_threads_fallible(P, Some(Duration::from_millis(300)), {
            let plan = plan.clone();
            move |c| {
                let c = FaultyComm::new(c, plan.clone());
                collective_workload(&c, 20)
            }
        });
        set_algo_override(None);
        assert!(results[1].is_err(), "[{}] rank 1 must have crashed", algo.name());
        assert_survivors_failed_typed(
            &results,
            1,
            Duration::from_millis(300),
            &format!("crash/{}", algo.name()),
        );
        assert!(started.elapsed() < Duration::from_secs(30), "bounded detection");
    }
}

#[test]
fn hang_inside_an_allreduce_times_out_under_both_algorithms() {
    let _guard = ALGO_LOCK.lock().unwrap();
    for algo in [CollAlgo::Star, CollAlgo::RecursiveDoubling] {
        set_algo_override(Some(algo));
        let mut plan = FaultPlan::clean(22);
        plan.hang_millis = Some(1_200);
        plan.events = Some(vec![FaultEvent { kind: FaultKind::HangRank, rank: 2, at_exchange: 4 }]);
        let results = run_threads_fallible(P, Some(Duration::from_millis(200)), {
            let plan = plan.clone();
            move |c| {
                let c = FaultyComm::new(c, plan.clone());
                collective_workload(&c, 20)
            }
        });
        set_algo_override(None);
        // The hung rank resumes after its stall and then fails typed
        // itself (its peers have already torn down) — nobody panics
        // and nobody hangs.
        let mut timeouts = 0;
        for (rank, res) in results.iter().enumerate() {
            let res = res.as_ref().unwrap_or_else(|_| panic!("rank {rank} must not panic"));
            if rank == 2 {
                continue;
            }
            let err = res.as_ref().expect_err("survivor must fail typed");
            assert!(
                matches!(err.kind, CommErrorKind::Timeout | CommErrorKind::PeerClosed),
                "[{}] rank {rank}: {err}",
                algo.name()
            );
            if err.kind == CommErrorKind::Timeout {
                assert!(err.elapsed >= Duration::from_millis(200));
                timeouts += 1;
            }
        }
        assert!(timeouts >= 1, "[{}] a peer timed out on the hung rank", algo.name());
    }
}

/// Run `f` on every rank of a P-rank in-process shmem world with a
/// recv deadline, collecting per-rank outcomes (panics included) like
/// [`run_threads_fallible`] does for the thread world.
fn run_shmem_fallible<F>(deadline: Duration, f: F) -> Vec<std::thread::Result<CommResult<f64>>>
where
    F: Fn(hpgmxp_comm::ShmemComm) -> CommResult<f64> + Send + Sync + Copy,
{
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let shm_id = format!(
        "chaos-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let config = SocketConfig {
        recv_deadline: Some(deadline),
        heartbeat: Some(Duration::from_millis(50)),
        peer_timeout: Some(Duration::from_secs(5)),
        faults: None,
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..P)
            .map(|rank| {
                let shm_id = shm_id.clone();
                let config = config.clone();
                s.spawn(move || f(ShmemWorld::connect_with_config(rank, P, &shm_id, config)))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
}

#[test]
fn crash_inside_a_shmem_exchange_fails_typed_under_both_algorithms() {
    let _guard = ALGO_LOCK.lock().unwrap();
    for algo in [CollAlgo::Star, CollAlgo::RecursiveDoubling] {
        set_algo_override(Some(algo));
        // Rank 3 panics inside its 3rd collective; its Drop marks the
        // outgoing rings closed, so survivors see PeerClosed (or their
        // deadline, whichever their blocking wait hits first).
        let results = run_shmem_fallible(Duration::from_millis(400), |c| {
            let mut plan = FaultPlan::clean(31);
            plan.events =
                Some(vec![FaultEvent { kind: FaultKind::CrashRank, rank: 3, at_exchange: 4 }]);
            let c = FaultyComm::new(c, plan);
            collective_workload(&c, 20)
        });
        set_algo_override(None);
        assert!(results[3].is_err(), "[{}] rank 3 must have crashed", algo.name());
        assert_survivors_failed_typed(
            &results,
            3,
            Duration::from_millis(400),
            &format!("shmem-crash/{}", algo.name()),
        );
    }
}

#[test]
fn hang_inside_a_shmem_exchange_times_out_under_both_algorithms() {
    let _guard = ALGO_LOCK.lock().unwrap();
    for algo in [CollAlgo::Star, CollAlgo::RecursiveDoubling] {
        set_algo_override(Some(algo));
        let results = run_shmem_fallible(Duration::from_millis(250), |c| {
            let mut plan = FaultPlan::clean(32);
            plan.hang_millis = Some(1_500);
            plan.events =
                Some(vec![FaultEvent { kind: FaultKind::HangRank, rank: 1, at_exchange: 6 }]);
            let c = FaultyComm::new(c, plan);
            collective_workload(&c, 20)
        });
        set_algo_override(None);
        // A hung shmem rank still heartbeats (its emitter thread is
        // alive), so only the recv deadline catches it: at least one
        // survivor reports Timeout with the waited duration attached.
        let mut timeouts = 0;
        for (rank, res) in results.iter().enumerate() {
            let res = res.as_ref().unwrap_or_else(|_| panic!("rank {rank} must not panic"));
            if rank == 1 {
                continue;
            }
            let err = res.as_ref().expect_err("survivor must fail typed");
            assert!(
                matches!(err.kind, CommErrorKind::Timeout | CommErrorKind::PeerClosed),
                "[{}] rank {rank}: {err}",
                algo.name()
            );
            if err.kind == CommErrorKind::Timeout {
                assert!(err.elapsed >= Duration::from_millis(250), "{err}");
                timeouts += 1;
            }
        }
        assert!(timeouts >= 1, "[{}] a peer timed out on the hung rank", algo.name());
    }
}

/// The body of the property below: any single scripted crash, at any
/// rank and any early exchange index, is always detected — the victim
/// panics, no survivor hangs, and each survivor either finished
/// cleanly (crash landed after its last dependence) or failed typed.
fn check_single_crash(seed: u64, victim: usize, at_exchange: u64) -> Result<(), String> {
    let plan = crash_plan(seed, victim, at_exchange);
    let results = run_plan(&plan, 6, Duration::from_millis(300));
    if results[victim].is_ok() {
        return Err(format!("victim rank {victim} must crash"));
    }
    for (rank, res) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        match res {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                let typed = matches!(
                    e.kind,
                    CommErrorKind::Timeout | CommErrorKind::PeerClosed | CommErrorKind::PeerLost
                );
                if !typed {
                    return Err(format!("rank {rank}: unexpected kind in {e}"));
                }
            }
            Err(_) => return Err(format!("survivor rank {rank} panicked")),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_single_crash_is_always_detected(
        seed in 0u64..1000,
        victim in 0usize..P,
        at_exchange in 0u64..12,
    ) {
        let outcome = check_single_crash(seed, victim, at_exchange);
        prop_assert!(outcome.is_ok(), "{:?}", outcome);
    }
}
