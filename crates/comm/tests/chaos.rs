//! Chaos tests: seeded fault plans driven through [`FaultyComm`] over a
//! 4-rank thread world. The invariants under test:
//!
//! * a crashed or hung rank never wedges its peers — every survivor
//!   returns a *typed* [`CommError`] within the recv deadline;
//! * benign wire faults (duplicate, delay, reorder) never change the
//!   result of a deterministic workload;
//! * the same plan seed replays the same outcome.
//!
//! Every test bounds its blocking operations with a deadline, so the
//! suite can fail loudly but can never hang CI.

// The proptest shim's muncher needs headroom for the 3-parameter
// property at the bottom.
#![recursion_limit = "512"]

use hpgmxp_comm::{
    run_threads_fallible, Comm, CommError, CommErrorKind, CommResult, FaultEvent, FaultKind,
    FaultPlan, FaultyComm, ReduceOp, ThreadComm,
};
use proptest::prelude::*;
use std::time::Duration;

const P: usize = 4;

/// A deterministic SPMD workload: `rounds` of (allreduce, ring
/// send/recv). Returns the final allreduce value so clean runs can be
/// compared across fault plans.
fn ring_workload(c: &FaultyComm<ThreadComm>, rounds: usize) -> CommResult<f64> {
    let rank = c.rank();
    let size = c.size();
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let mut acc = 0.0f64;
    let mut buf = [0u8; 8];
    for round in 0..rounds {
        acc = c.allreduce_scalar_checked(acc + (rank + round) as f64, ReduceOp::Sum)?;
        c.send_from_checked(next, round as u64, &acc.to_le_bytes())?;
        c.recv_into_checked(prev, round as u64, &mut buf)?;
        let got = f64::from_le_bytes(buf);
        assert_eq!(got, acc, "ring payload must survive the wire");
    }
    Ok(acc)
}

fn run_plan(
    plan: &FaultPlan,
    rounds: usize,
    deadline: Duration,
) -> Vec<std::thread::Result<CommResult<f64>>> {
    run_threads_fallible(P, Some(deadline), move |c| {
        let c = FaultyComm::new(c, plan.clone());
        ring_workload(&c, rounds)
    })
}

fn crash_plan(seed: u64, rank: usize, at_exchange: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    plan.events = Some(vec![FaultEvent { kind: FaultKind::CrashRank, rank, at_exchange }]);
    plan
}

#[test]
fn crashed_rank_surfaces_typed_errors_on_every_survivor() {
    let plan = crash_plan(11, 1, 4);
    let started = std::time::Instant::now();
    let results = run_plan(&plan, 20, Duration::from_millis(400));
    // The victim panicked (thread-world crash semantics).
    assert!(results[1].is_err(), "rank 1 must have crashed");
    // Every survivor got a typed error — not a hang, not a panic.
    for (rank, res) in results.iter().enumerate() {
        if rank == 1 {
            continue;
        }
        let err: &CommError =
            res.as_ref().expect("survivors must not panic").as_ref().expect_err("typed error");
        assert!(
            matches!(
                err.kind,
                CommErrorKind::Timeout | CommErrorKind::PeerClosed | CommErrorKind::PeerLost
            ),
            "rank {rank}: unexpected kind in {err}"
        );
        // The message is actionable: it names a peer or the barrier.
        assert!(!err.detail.is_empty(), "rank {rank}: {err}");
    }
    // Detection is bounded by the deadline, not by luck.
    assert!(started.elapsed() < Duration::from_secs(30), "took {:?}", started.elapsed());
}

#[test]
fn hung_rank_is_detected_within_the_deadline() {
    let mut plan = FaultPlan::clean(5);
    plan.hang_millis = Some(900);
    plan.events = Some(vec![FaultEvent { kind: FaultKind::HangRank, rank: 2, at_exchange: 6 }]);
    let results = run_plan(&plan, 20, Duration::from_millis(200));
    // A hung rank still holds its endpoint (it heartbeats in the socket
    // world; here it simply sleeps), so the *only* way peers notice is
    // the recv deadline: every survivor must report Timeout.
    let mut timeouts = 0;
    for (rank, res) in results.iter().enumerate() {
        if rank == 2 {
            continue;
        }
        if let Ok(Err(e)) = res {
            assert!(
                matches!(e.kind, CommErrorKind::Timeout | CommErrorKind::PeerClosed),
                "rank {rank}: {e}"
            );
            if e.kind == CommErrorKind::Timeout {
                assert!(e.elapsed >= Duration::from_millis(200), "rank {rank}: {e}");
                timeouts += 1;
            }
        } else {
            panic!("rank {rank} must fail typed, got {res:?}");
        }
    }
    assert!(timeouts >= 1, "at least one peer times out waiting on the hung rank");
}

#[test]
fn benign_wire_faults_do_not_change_the_answer() {
    // Duplicates, delays, and reorders are absorbed by tag matching and
    // FIFO-per-(peer, tag) delivery: the workload's asserts verify
    // payload integrity and this test verifies the reduced value.
    let clean: Vec<f64> = run_plan(&FaultPlan::clean(3), 12, Duration::from_secs(20))
        .into_iter()
        .map(|r| r.expect("no panics").expect("no faults"))
        .collect();
    let mut noisy_plan = FaultPlan::clean(3);
    noisy_plan.duplicate = Some(0.3);
    noisy_plan.delay = Some(0.2);
    noisy_plan.delay_millis = Some(2);
    noisy_plan.reorder = Some(0.25);
    let noisy: Vec<f64> = run_plan(&noisy_plan, 12, Duration::from_secs(20))
        .into_iter()
        .map(|r| r.expect("no panics").expect("benign faults must not error"))
        .collect();
    assert_eq!(clean, noisy);
}

#[test]
fn same_seed_replays_the_same_outcome() {
    // Determinism is the whole point of the plan: two runs of the same
    // scenario classify every rank identically.
    let plan = crash_plan(77, 3, 9);
    // Classification is by *fate* (crashed / failed typed / finished
    // with a value), not by error kind: which survivor's deadline fires
    // first is scheduler timing, the fates are the scripted scenario.
    let classify = |results: Vec<std::thread::Result<CommResult<f64>>>| -> Vec<String> {
        results
            .into_iter()
            .map(|r| match r {
                Err(_) => "panic".to_string(),
                Ok(Err(_)) => "err".to_string(),
                Ok(Ok(v)) => format!("ok:{v}"),
            })
            .collect()
    };
    let a = classify(run_plan(&plan, 20, Duration::from_millis(300)));
    let b = classify(run_plan(&plan, 20, Duration::from_millis(300)));
    assert_eq!(a[3], "panic", "the scripted victim dies both times");
    assert_eq!(a, b, "same seed, same scenario, same outcome");
}

/// The body of the property below: any single scripted crash, at any
/// rank and any early exchange index, is always detected — the victim
/// panics, no survivor hangs, and each survivor either finished
/// cleanly (crash landed after its last dependence) or failed typed.
fn check_single_crash(seed: u64, victim: usize, at_exchange: u64) -> Result<(), String> {
    let plan = crash_plan(seed, victim, at_exchange);
    let results = run_plan(&plan, 6, Duration::from_millis(300));
    if results[victim].is_ok() {
        return Err(format!("victim rank {victim} must crash"));
    }
    for (rank, res) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        match res {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                let typed = matches!(
                    e.kind,
                    CommErrorKind::Timeout | CommErrorKind::PeerClosed | CommErrorKind::PeerLost
                );
                if !typed {
                    return Err(format!("rank {rank}: unexpected kind in {e}"));
                }
            }
            Err(_) => return Err(format!("survivor rank {rank} panicked")),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_single_crash_is_always_detected(
        seed in 0u64..1000,
        victim in 0usize..P,
        at_exchange in 0u64..12,
    ) {
        let outcome = check_single_crash(seed, victim, at_exchange);
        prop_assert!(outcome.is_ok(), "{:?}", outcome);
    }
}
