//! Lightweight event timeline for compute/communication tracing — a
//! thin view over the [`hpgmxp_trace`] recorder.
//!
//! Figure 9 of the paper shows rocprof traces with a GPU compute
//! stream, a halo (pack/copy) stream, and communication markers, used
//! to demonstrate that halo exchange is hidden under the interior
//! Gauss–Seidel kernel. This facade captures the same kind of
//! intervals from real executions of our solver so the overlap can be
//! inspected (and asserted on in tests).
//!
//! Since PR 10 the storage behind it is the trace crate's preallocated
//! lock-free ring ([`hpgmxp_trace::Recorder`]) rather than a private
//! `Mutex<Vec>`: a `Timeline` owns one per-instance recorder for its
//! local views (`events()`, `overlap_records()`, the figure-9
//! assertions), and every span additionally mirrors into the
//! **process-global** recorder whenever `HPGMXP_TRACE=spans` is armed
//! — that is what the per-rank binary trace files and the
//! `hpgmxp-trace` Chrome export read. A disabled timeline allocates
//! nothing and costs one branch per probe; collective traffic
//! ([`Timeline::set_collectives`]) stays a plain snapshot slot because
//! [`CollStats`] is itself a view over the collective engine's
//! counters.

use crate::collectives::CollStats;
use hpgmxp_trace::{EventRec, Kind, Lane, OverlapRec, Recorder};
use parking_lot::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// Which conceptual stream an event belongs to (mirrors the paper's
/// trace lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Kernel work (the GPU "compute stream" in the paper).
    Compute,
    /// Halo buffer packing/unpacking (the "halo stream").
    Halo,
    /// Host-device style copies (the COPY lane).
    Copy,
    /// Message send/receive/wait markers ("Markers and Ranges").
    Comm,
}

impl Stream {
    /// Display label used by trace renderers.
    pub fn label(self) -> &'static str {
        self.lane().label()
    }

    /// The trace-crate lane this stream records into.
    pub fn lane(self) -> Lane {
        match self {
            Stream::Compute => Lane::Compute,
            Stream::Halo => Lane::Halo,
            Stream::Copy => Lane::Copy,
            Stream::Comm => Lane::Comm,
        }
    }

    fn from_lane(lane: Lane) -> Stream {
        match lane {
            Lane::Compute => Stream::Compute,
            Lane::Halo => Stream::Halo,
            Lane::Copy => Stream::Copy,
            _ => Stream::Comm,
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Kernel or operation name.
    pub name: String,
    /// Stream lane.
    pub stream: Stream,
    /// Start, seconds since the timeline epoch.
    pub start: f64,
    /// End, seconds since the timeline epoch.
    pub end: f64,
}

/// Measured anatomy of one split-phase halo exchange: what the halo
/// engine actually did between `begin` and `finish`, recorded so the
/// figure-9 "communication is hidden" claim is testable instead of
/// modeled. All durations are in seconds; the recorder stores the
/// integer-nanosecond [`OverlapRec`] this converts to and from.
#[derive(Debug, Clone)]
pub struct OverlapRecord {
    /// Message tag of the exchange.
    pub tag: u64,
    /// Bytes packed and sent to all neighbors.
    pub bytes_sent: usize,
    /// Bytes received and unpacked from all neighbors.
    pub bytes_received: usize,
    /// Time spent packing boundary values into the send staging buffers.
    pub pack: f64,
    /// Interior-compute span the exchange overlapped with: the gap
    /// between the end of `begin` and the start of `finish`, during
    /// which messages were in flight while the caller computed.
    pub window: f64,
    /// Time `finish` spent blocked waiting for messages — the *exposed*
    /// communication the overlap failed to hide.
    pub wire_wait: f64,
    /// Time spent scattering received values into the ghost region.
    pub unpack: f64,
}

impl OverlapRecord {
    /// Fraction of this exchange's communication hidden under compute:
    /// `window / (window + wire_wait)`. 1.0 means `finish` never
    /// blocked; 0.0 means nothing was overlapped.
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.window + self.wire_wait;
        if total > 0.0 {
            self.window / total
        } else {
            1.0
        }
    }

    fn to_ns(&self) -> OverlapRec {
        OverlapRec {
            tag: self.tag,
            bytes_sent: self.bytes_sent as u64,
            bytes_received: self.bytes_received as u64,
            pack_ns: secs_to_ns(self.pack),
            window_ns: secs_to_ns(self.window),
            wire_wait_ns: secs_to_ns(self.wire_wait),
            unpack_ns: secs_to_ns(self.unpack),
        }
    }

    fn from_ns(o: &OverlapRec) -> OverlapRecord {
        OverlapRecord {
            tag: o.tag,
            bytes_sent: o.bytes_sent as usize,
            bytes_received: o.bytes_received as usize,
            pack: o.pack_ns as f64 / 1e9,
            window: o.window_ns as f64 / 1e9,
            wire_wait: o.wire_wait_ns as f64 / 1e9,
            unpack: o.unpack_ns as f64 / 1e9,
        }
    }
}

fn secs_to_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9).round() as u64
}

/// A concurrent event recorder. A disabled timeline records nothing
/// locally and costs one branch per event; whenever the global span
/// ring is armed (`HPGMXP_TRACE=spans`) every span is mirrored there
/// regardless, so per-rank trace files see solver activity even from
/// code paths that run with a disabled timeline.
#[derive(Debug)]
pub struct Timeline {
    enabled: bool,
    epoch: Instant,
    rec: Recorder,
    /// This timeline's epoch on the global recorder's clock, computed
    /// lazily on the first mirrored record — so spans stay aligned
    /// with the rest of the merged trace even when the global ring is
    /// armed after this timeline was constructed (test overrides,
    /// late env resolution).
    global_offset_ns: OnceLock<u64>,
    collectives: Mutex<Option<CollStats>>,
}

/// Default instance ring capacities: events and overlap records kept
/// per enabled timeline (the global ring is sized independently via
/// `HPGMXP_TRACE_CAPACITY`). `HPGMXP_TIMELINE_CAPACITY` overrides the
/// event capacity; the overlap ring scales with it at the same 16:1
/// ratio. The rings wrap, keeping the newest records — see
/// [`Timeline::dropped_events`] before trusting aggregate figures
/// from a long run.
const INSTANCE_EVENTS: usize = 1 << 16;
const INSTANCE_OVERLAPS: usize = 1 << 12;

fn instance_caps() -> (usize, usize) {
    static CAPS: OnceLock<(usize, usize)> = OnceLock::new();
    *CAPS.get_or_init(|| {
        let ev = std::env::var("HPGMXP_TIMELINE_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(INSTANCE_EVENTS);
        (ev, (ev / (INSTANCE_EVENTS / INSTANCE_OVERLAPS)).max(1))
    })
}

impl Timeline {
    fn new(enabled: bool) -> Self {
        let (cap, ocap) = if enabled { instance_caps() } else { (0, 0) };
        Timeline {
            enabled,
            epoch: Instant::now(),
            rec: Recorder::new(cap, ocap),
            global_offset_ns: OnceLock::new(),
            collectives: Mutex::new(None),
        }
    }

    /// A recording timeline with its epoch at creation time.
    pub fn enabled() -> Self {
        Timeline::new(true)
    }

    /// A no-op timeline (no local storage is allocated).
    pub fn disabled() -> Self {
        Timeline::new(false)
    }

    /// Whether events are being recorded locally.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether event timing is observable anywhere — locally or in the
    /// armed global ring. Instrumentation that pays for clock reads
    /// only when someone is listening gates on this.
    pub fn is_traced(&self) -> bool {
        self.enabled || hpgmxp_trace::spans_armed()
    }

    /// Seconds since the epoch.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record an interval with explicit bounds (and mirror it into the
    /// global ring when armed).
    pub fn add(&self, name: &'static str, stream: Stream, start: f64, end: f64) {
        if self.enabled {
            self.rec.record(EventRec {
                name,
                lane: stream.lane(),
                kind: Kind::Span,
                tid: hpgmxp_trace::current_tid(),
                start_ns: secs_to_ns(start),
                end_ns: secs_to_ns(end),
                arg: 0,
            });
        }
        if hpgmxp_trace::spans_armed() {
            let offset = self.global_offset();
            hpgmxp_trace::global().record(EventRec {
                name,
                lane: stream.lane(),
                kind: Kind::Span,
                tid: hpgmxp_trace::current_tid(),
                start_ns: offset + secs_to_ns(start),
                end_ns: offset + secs_to_ns(end),
                arg: 0,
            });
        }
    }

    /// This timeline's epoch on the global recorder's clock, fixed the
    /// first time a span is mirrored (`now` on both clocks is read
    /// back-to-back, so the skew is nanoseconds).
    fn global_offset(&self) -> u64 {
        *self.global_offset_ns.get_or_init(|| {
            let elapsed = secs_to_ns(self.now());
            hpgmxp_trace::global().now_ns().saturating_sub(elapsed)
        })
    }

    /// RAII guard that records `[creation, drop]` as an interval.
    pub fn span(&self, name: &'static str, stream: Stream) -> Span<'_> {
        Span { tl: self, name, stream, start: self.now() }
    }

    /// Record the measured anatomy of one halo exchange.
    pub fn add_overlap(&self, record: OverlapRecord) {
        let ns = record.to_ns();
        if self.enabled {
            self.rec.add_overlap(ns);
        }
        if hpgmxp_trace::spans_armed() {
            hpgmxp_trace::global().add_overlap(ns);
        }
    }

    /// Snapshot of the per-exchange overlap records, in completion order.
    pub fn overlap_records(&self) -> Vec<OverlapRecord> {
        self.rec.overlaps().iter().map(OverlapRecord::from_ns).collect()
    }

    /// Events this timeline's instance ring lost (wrapped over or
    /// dropped on contention). When non-zero, [`Timeline::events`],
    /// [`Timeline::busy_time`], [`Timeline::overlap_fraction`] and
    /// friends describe only the newest window of the run, not all of
    /// it — raise `HPGMXP_TIMELINE_CAPACITY` to widen the window.
    pub fn dropped_events(&self) -> usize {
        self.rec.dropped()
    }

    /// Overlap records the instance ring lost; when non-zero,
    /// [`Timeline::overlap_efficiency`] aggregates a truncated window.
    pub fn dropped_overlaps(&self) -> usize {
        self.rec.overlaps_dropped()
    }

    /// Measured overlap efficiency over every recorded exchange: the
    /// fraction of total communication time (in-flight window + exposed
    /// wait) that was hidden under interior compute. `None` if no
    /// exchange was recorded. This is the measured counterpart of the
    /// modeled `hidden_fraction` in the figure-9 trace.
    pub fn overlap_efficiency(&self) -> Option<f64> {
        let recs = self.rec.overlaps();
        if recs.is_empty() {
            return None;
        }
        let window: u64 = recs.iter().map(|r| r.window_ns).sum();
        let wait: u64 = recs.iter().map(|r| r.wire_wait_ns).sum();
        let total = window + wait;
        if total > 0 {
            Some(window as f64 / total as f64)
        } else {
            Some(1.0)
        }
    }

    /// Record the measured collective traffic of the run this timeline
    /// traces — typically the [`CollStats`] delta between the start and
    /// end of a solve (the engine's counters are per-endpoint
    /// lifetime totals; see `CollStats::since`). Recorded even on a
    /// disabled timeline: the counters cost nothing to snapshot and the
    /// root-load assertions need them without paying for event
    /// recording.
    pub fn set_collectives(&self, stats: CollStats) {
        *self.collectives.lock() = Some(stats);
    }

    /// The collective traffic recorded by [`Timeline::set_collectives`],
    /// if any.
    pub fn collective_stats(&self) -> Option<CollStats> {
        *self.collectives.lock()
    }

    /// Snapshot of the recorded events, sorted by start time.
    pub fn events(&self) -> Vec<TimelineEvent> {
        self.rec
            .events()
            .into_iter()
            .map(|e| TimelineEvent {
                name: e.name.to_string(),
                stream: Stream::from_lane(e.lane),
                start: e.start_ns as f64 / 1e9,
                end: e.end_ns as f64 / 1e9,
            })
            .collect()
    }

    /// Total time covered by events of a stream (union of intervals).
    pub fn busy_time(&self, stream: Stream) -> f64 {
        let mut spans: Vec<(f64, f64)> =
            self.events().iter().filter(|e| e.stream == stream).map(|e| (e.start, e.end)).collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (s, e) in spans {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Fraction of a stream's busy time that overlaps another stream's
    /// busy intervals — the "hidden communication" metric of figure 9.
    pub fn overlap_fraction(&self, of: Stream, under: Stream) -> f64 {
        let evs = self.events();
        let a: Vec<(f64, f64)> =
            evs.iter().filter(|e| e.stream == of).map(|e| (e.start, e.end)).collect();
        let b: Vec<(f64, f64)> =
            evs.iter().filter(|e| e.stream == under).map(|e| (e.start, e.end)).collect();
        let total: f64 = a.iter().map(|(s, e)| e - s).sum();
        if total == 0.0 {
            return 0.0;
        }
        let mut covered = 0.0;
        for &(s, e) in &a {
            for &(bs, be) in &b {
                let lo = s.max(bs);
                let hi = e.min(be);
                if hi > lo {
                    covered += hi - lo;
                }
            }
        }
        (covered / total).min(1.0)
    }
}

/// RAII interval guard produced by [`Timeline::span`].
pub struct Span<'a> {
    tl: &'a Timeline,
    name: &'static str,
    stream: Stream,
    start: f64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tl.add(self.name, self.stream, self.start, self.tl.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let tl = Timeline::disabled();
        tl.add("x", Stream::Compute, 0.0, 1.0);
        {
            let _s = tl.span("y", Stream::Halo);
        }
        assert!(tl.events().is_empty());
    }

    #[test]
    fn add_and_sort() {
        let tl = Timeline::enabled();
        tl.add("b", Stream::Compute, 2.0, 3.0);
        tl.add("a", Stream::Compute, 0.0, 1.0);
        let ev = tl.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "a");
        assert_eq!(ev[1].name, "b");
    }

    #[test]
    fn span_guard_records() {
        let tl = Timeline::enabled();
        {
            let _s = tl.span("work", Stream::Halo);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let ev = tl.events();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].end > ev[0].start);
        assert_eq!(ev[0].stream, Stream::Halo);
    }

    #[test]
    fn busy_time_merges_overlaps() {
        let tl = Timeline::enabled();
        tl.add("a", Stream::Compute, 0.0, 2.0);
        tl.add("b", Stream::Compute, 1.0, 3.0);
        tl.add("c", Stream::Compute, 5.0, 6.0);
        assert!((tl.busy_time(Stream::Compute) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_fraction_full_and_partial() {
        let tl = Timeline::enabled();
        tl.add("comm", Stream::Comm, 1.0, 2.0);
        tl.add("kernel", Stream::Compute, 0.0, 3.0);
        assert!((tl.overlap_fraction(Stream::Comm, Stream::Compute) - 1.0).abs() < 1e-12);

        let tl2 = Timeline::enabled();
        tl2.add("comm", Stream::Comm, 0.0, 2.0);
        tl2.add("kernel", Stream::Compute, 1.0, 2.0);
        assert!((tl2.overlap_fraction(Stream::Comm, Stream::Compute) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stream_labels() {
        assert_eq!(Stream::Compute.label(), "GPU");
        assert_eq!(Stream::Copy.label(), "COPY");
    }

    fn record(window: f64, wait: f64) -> OverlapRecord {
        OverlapRecord {
            tag: 0,
            bytes_sent: 100,
            bytes_received: 100,
            pack: 1e-6,
            window,
            wire_wait: wait,
            unpack: 1e-6,
        }
    }

    #[test]
    fn overlap_efficiency_aggregates_records() {
        let tl = Timeline::enabled();
        assert_eq!(tl.overlap_efficiency(), None, "no exchange recorded yet");
        tl.add_overlap(record(3e-6, 1e-6)); // 75% hidden
        tl.add_overlap(record(1e-6, 3e-6)); // 25% hidden
        let eff = tl.overlap_efficiency().unwrap();
        assert!((eff - 0.5).abs() < 1e-12, "got {eff}");
        assert_eq!(tl.overlap_records().len(), 2);
        assert!((tl.overlap_records()[0].hidden_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disabled_timeline_records_no_overlaps() {
        let tl = Timeline::disabled();
        tl.add_overlap(record(1.0, 1.0));
        assert!(tl.overlap_records().is_empty());
        assert_eq!(tl.overlap_efficiency(), None);
    }

    #[test]
    fn fully_hidden_exchange_has_unit_efficiency() {
        let tl = Timeline::enabled();
        tl.add_overlap(record(5e-6, 0.0));
        assert_eq!(tl.overlap_efficiency(), Some(1.0));
        // Degenerate zero-duration record counts as hidden.
        assert_eq!(record(0.0, 0.0).hidden_fraction(), 1.0);
    }

    #[test]
    fn events_mirror_into_the_global_ring_when_armed() {
        // Serialized on the trace crate's mode override: no other comm
        // test arms it.
        hpgmxp_trace::set_mode_override(hpgmxp_trace::Mode::Spans);
        let before = hpgmxp_trace::global().recorded();
        let tl = Timeline::disabled();
        {
            let _s = tl.span("mirrored work", Stream::Compute);
        }
        tl.add_overlap(record(1e-6, 1e-6));
        hpgmxp_trace::set_mode_override(hpgmxp_trace::Mode::Off);
        assert!(tl.events().is_empty(), "disabled timeline stays empty locally");
        assert!(
            hpgmxp_trace::global().recorded() > before,
            "the armed global ring observed the span"
        );
    }
}
