//! The rank-local mailbox shared by every multi-rank transport.
//!
//! Both [`crate::thread_world::ThreadWorld`] (messages arrive from
//! sibling threads) and [`crate::socket_world::SocketWorld`] (messages
//! arrive from per-peer reader threads) deliver into the same
//! structure: an arrival-ordered deque guarded by a mutex + condvar.
//! Scanning front-to-back preserves FIFO per (sender, tag) pair
//! because each producer appends its messages in program order, and
//! out-of-tag arrivals simply stay parked until a matching receive —
//! MPI's unexpected-message queue.
//!
//! The mailbox also owns the *fault* channel of a transport: a reader
//! thread that loses its peer (socket EOF mid-run) calls [`Mailbox::fail`],
//! which wakes every blocked receive so the rank fails with a clear
//! "connection to rank R lost" diagnostic instead of hanging forever.
//! Faults are tracked *per peer*: ranks of one job finish at slightly
//! different moments, so an EOF from an already-finished peer must not
//! poison a receive from a still-live one. Only an operation that
//! needs the faulted peer (a receive from it, a post on it, a barrier
//! — which needs everyone) fails. Parked messages are always checked
//! *before* faults, so data a peer delivered before dying stays
//! receivable.
//!
//! A mailbox may carry a **receive deadline**: every blocking receive
//! then returns a typed [`CommError`] of kind `Timeout` once it has
//! waited that long — the detector for a peer that is alive (still
//! heartbeating) but wedged. The `*_checked` methods return
//! [`CommResult`]; the legacy methods wrap them and panic with the
//! same messages they always produced.

use crate::comm::RecvPost;
use crate::error::{CommError, CommErrorKind, CommResult};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One delivered message, owning its (pool-recycled) byte buffer.
#[derive(Debug)]
pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    pub data: Vec<u8>,
}

struct Queue {
    messages: VecDeque<Message>,
    /// Per-peer transport faults (connection closed, lost, or corrupt);
    /// each peer's entry is set at most once.
    faults: BTreeMap<usize, (CommErrorKind, String)>,
}

/// Arrival-ordered inbox of one rank.
pub(crate) struct Mailbox {
    queue: Mutex<Queue>,
    arrived: Condvar,
    /// Bound on how long a blocking receive may wait (`None` = forever).
    deadline: Option<Duration>,
}

impl Mailbox {
    /// A mailbox with no receive deadline (tests, simple worlds).
    #[allow(dead_code)]
    pub fn new() -> Self {
        Self::with_deadline(None)
    }

    /// A mailbox whose blocking receives give up (with a `Timeout`
    /// fault) after `deadline`.
    pub fn with_deadline(deadline: Option<Duration>) -> Self {
        Mailbox {
            queue: Mutex::new(Queue { messages: VecDeque::new(), faults: BTreeMap::new() }),
            arrived: Condvar::new(),
            deadline,
        }
    }

    /// Deliver one message (producer side) and wake any waiter.
    pub fn push(&self, msg: Message) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.messages.push_back(msg);
        drop(q);
        self.arrived.notify_all();
    }

    /// Record a transport fault on the connection to `from` and wake
    /// every blocked receive (waiters re-check whether the peer they
    /// need is the one that went away).
    pub fn fail(&self, from: usize, kind: CommErrorKind, why: String) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.faults.entry(from).or_insert((kind, why));
        drop(q);
        self.arrived.notify_all();
    }

    /// The fault recorded for `from`, if any (diagnostics).
    #[allow(dead_code)]
    pub fn fault_of(&self, from: usize) -> Option<(CommErrorKind, String)> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).faults.get(&from).cloned()
    }

    /// Grow the parked-message deque to hold at least `slots` messages
    /// without reallocating. Called by the transports' `prewarm_pool`
    /// so a parking burst during a measured window cannot trigger a
    /// deque growth at a scheduler-dependent moment — the same
    /// determinism-by-construction the buffer pools get.
    pub fn reserve(&self, slots: usize) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let additional = slots.saturating_sub(q.messages.len());
        if q.messages.capacity() < slots {
            q.messages.reserve(additional);
        }
    }

    /// Messages currently parked (diagnostics).
    #[allow(dead_code)]
    pub fn parked(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).messages.len()
    }

    /// Remove and return every parked message matching `pred` (the
    /// caller recycles the buffers). Used to isolate consecutive SPMD
    /// runs on a reused transport; the predicate lets the transport
    /// keep protocol-internal messages (a fast peer's next collective
    /// may already be parked here) while draining stale user data.
    pub fn take_where(&self, pred: impl Fn(&Message) -> bool) -> Vec<Message> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        let mut i = 0;
        while i < q.messages.len() {
            if pred(&q.messages[i]) {
                out.push(q.messages.remove(i).expect("index is in range"));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Wait on the condvar, honoring the receive deadline. Returns the
    /// re-acquired guard, or a `Timeout` fault once `started` is older
    /// than the deadline.
    fn wait<'a>(
        &'a self,
        q: MutexGuard<'a, Queue>,
        started: Instant,
        what: impl FnOnce() -> CommError,
    ) -> CommResult<MutexGuard<'a, Queue>> {
        match self.deadline {
            None => Ok(self.arrived.wait(q).unwrap_or_else(|e| e.into_inner())),
            Some(deadline) => {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    return Err(what().with_elapsed(elapsed));
                }
                let (q, _) = self
                    .arrived
                    .wait_timeout(q, deadline - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                Ok(q)
            }
        }
    }

    fn timeout_error(&self, from: usize, tag: u64) -> CommError {
        let d = self.deadline.unwrap_or_default();
        CommError::new(
            CommErrorKind::Timeout,
            Some(from),
            format!(
                "no message from rank {from} (tag {tag}) within the {:.3}s receive deadline \
                 (peer hung?)",
                d.as_secs_f64()
            ),
        )
        .with_tag(tag)
    }

    fn fault_error(from: usize, tag: Option<u64>, kind: CommErrorKind, why: &str) -> CommError {
        let mut e = CommError::new(kind, Some(from), why.to_string());
        if let Some(tag) = tag {
            e = e.with_tag(tag);
        }
        e
    }

    /// Blocking receive of the next message matching `(from, tag)`,
    /// returning a typed fault if the peer failed or the receive
    /// deadline elapsed.
    pub fn recv_matching_checked(&self, from: usize, tag: u64) -> CommResult<Message> {
        let started = Instant::now();
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(pos) = q.messages.iter().position(|m| m.from == from && m.tag == tag) {
                return Ok(q.messages.remove(pos).expect("position is in range"));
            }
            if let Some((kind, why)) = q.faults.get(&from) {
                return Err(
                    Self::fault_error(from, Some(tag), *kind, why).with_elapsed(started.elapsed())
                );
            }
            q = self.wait(q, started, || self.timeout_error(from, tag))?;
        }
    }

    /// Blocking receive of the next message matching `(from, tag)`.
    /// Panics on a fault or deadline — the legacy loud-failure path.
    pub fn recv_matching(&self, from: usize, tag: u64) -> Message {
        self.recv_matching_checked(from, tag).unwrap_or_else(|e| {
            panic!("receive from rank {from} (tag {tag}) cannot complete: {}", e.detail)
        })
    }

    /// Non-blocking receive of the next message matching `(from, tag)`.
    pub fn try_recv_matching(&self, from: usize, tag: u64) -> Option<Message> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let pos = q.messages.iter().position(|m| m.from == from && m.tag == tag)?;
        Some(q.messages.remove(pos).expect("position is in range"))
    }

    /// Block until a message matching any live slot in `posts` arrives,
    /// preferring the *earliest arrival* — the `MPI_Waitany` pattern.
    /// Returns the slot index and the message; the caller takes the
    /// post, copies the payload, and recycles the buffer. A fault on
    /// any still-posted peer, or the receive deadline, is a typed
    /// error.
    pub fn wait_any_matching_checked(
        &self,
        posts: &[Option<RecvPost<'_>>],
    ) -> CommResult<(usize, Message)> {
        let started = Instant::now();
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let hit = q.messages.iter().position(|m| {
                posts.iter().any(|p| p.as_ref().is_some_and(|p| p.from == m.from && p.tag == m.tag))
            });
            if let Some(pos) = hit {
                let msg = q.messages.remove(pos).expect("position is in range");
                let slot = posts
                    .iter()
                    .position(|p| {
                        p.as_ref().is_some_and(|p| p.from == msg.from && p.tag == msg.tag)
                    })
                    .expect("a post matched above");
                return Ok((slot, msg));
            }
            // A live post on a faulted peer can never complete (its
            // messages, had any been in flight, were delivered before
            // the fault was recorded).
            for p in posts.iter().flatten() {
                if let Some((kind, why)) = q.faults.get(&p.from) {
                    return Err(Self::fault_error(p.from, Some(p.tag), *kind, why)
                        .with_elapsed(started.elapsed()));
                }
            }
            q = self.wait(q, started, || {
                let p = posts.iter().flatten().next().expect("a live post (checked by caller)");
                self.timeout_error(p.from, p.tag)
            })?;
        }
    }

    /// [`Mailbox::wait_any_matching_checked`], panicking on failure —
    /// the legacy loud-failure path.
    pub fn wait_any_matching(&self, posts: &[Option<RecvPost<'_>>]) -> (usize, Message) {
        self.wait_any_matching_checked(posts).unwrap_or_else(|e| {
            panic!(
                "wait_any on rank {} (tag {}) cannot complete: {}",
                e.peer.unwrap_or(usize::MAX),
                e.tag.unwrap_or(u64::MAX),
                e.detail
            )
        })
    }

    /// Block until `enough()` (re-evaluated after every delivery)
    /// returns true — the socket flush-barrier waits on per-peer
    /// delivery counters this way. Any peer fault (a barrier needs
    /// everyone), or the receive deadline, is a typed error.
    pub fn wait_until_checked(&self, mut enough: impl FnMut() -> bool) -> CommResult<()> {
        let started = Instant::now();
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if enough() {
                return Ok(());
            }
            if let Some((from, (kind, why))) = q.faults.iter().next() {
                return Err(CommError::new(
                    *kind,
                    Some(*from),
                    format!("barrier cannot complete: rank {from}: {why}"),
                )
                .with_elapsed(started.elapsed()));
            }
            q = self.wait(q, started, || {
                let d = self.deadline.unwrap_or_default();
                CommError::new(
                    CommErrorKind::Timeout,
                    None,
                    format!(
                        "barrier did not complete within the {:.3}s receive deadline",
                        d.as_secs_f64()
                    ),
                )
            })?;
        }
    }

    /// [`Mailbox::wait_until_checked`], panicking on failure.
    #[allow(dead_code)]
    pub fn wait_until(&self, enough: impl FnMut() -> bool) {
        self.wait_until_checked(enough).unwrap_or_else(|e| panic!("{}", e.detail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: usize, tag: u64, byte: u8) -> Message {
        Message { from, tag, data: vec![byte] }
    }

    #[test]
    fn fault_from_one_peer_does_not_poison_live_receives() {
        // The per-peer fault property PR 6 fixed by hand: an EOF from a
        // finished peer keeps receives from live peers working.
        let mb = Mailbox::new();
        mb.fail(1, CommErrorKind::PeerClosed, "connection to rank 1 closed".into());
        mb.push(msg(2, 7, 42));
        let got = mb.recv_matching_checked(2, 7).expect("rank 2 is alive");
        assert_eq!((got.from, got.tag, got.data[0]), (2, 7, 42));
        // But a receive that *needs* the dead peer fails, typed.
        let err = mb.recv_matching_checked(1, 7).unwrap_err();
        assert_eq!(err.kind, CommErrorKind::PeerClosed);
        assert_eq!(err.peer, Some(1));
        assert_eq!(err.tag, Some(7));
        assert!(err.detail.contains("connection to rank 1"), "{}", err.detail);
    }

    #[test]
    fn messages_delivered_before_a_fault_stay_receivable() {
        // Parked data is checked before faults: what a peer sent before
        // dying must still be consumable.
        let mb = Mailbox::new();
        mb.push(msg(1, 3, 9));
        mb.fail(1, CommErrorKind::PeerClosed, "connection to rank 1 closed".into());
        let got = mb.recv_matching_checked(1, 3).expect("pre-fault message is receivable");
        assert_eq!(got.data[0], 9);
        // The next receive hits the fault.
        assert!(mb.recv_matching_checked(1, 3).is_err());
    }

    #[test]
    fn take_where_does_not_disturb_parked_tags() {
        // The quiesce drain must leave non-matching (protocol) messages
        // parked and receivable, in order.
        let mb = Mailbox::new();
        mb.push(msg(0, 10, 1));
        mb.push(msg(0, 99, 2)); // "protocol" message the drain must keep
        mb.push(msg(1, 10, 3));
        mb.push(msg(0, 99, 4));
        let drained = mb.take_where(|m| m.tag == 10);
        assert_eq!(drained.len(), 2);
        assert_eq!(mb.parked(), 2);
        // Parked survivors still arrive FIFO per (sender, tag).
        assert_eq!(mb.try_recv_matching(0, 99).unwrap().data[0], 2);
        assert_eq!(mb.try_recv_matching(0, 99).unwrap().data[0], 4);
        assert!(mb.try_recv_matching(0, 99).is_none());
    }

    #[test]
    fn receive_deadline_returns_typed_timeout() {
        let mb = Mailbox::with_deadline(Some(Duration::from_millis(30)));
        let started = Instant::now();
        let err = mb.recv_matching_checked(0, 5).unwrap_err();
        assert_eq!(err.kind, CommErrorKind::Timeout);
        assert_eq!((err.peer, err.tag), (Some(0), Some(5)));
        assert!(err.elapsed >= Duration::from_millis(30), "elapsed {:?}", err.elapsed);
        assert!(started.elapsed() < Duration::from_secs(5), "bounded wait");
    }

    #[test]
    fn wait_any_times_out_with_peer_attribution() {
        let mb = Mailbox::with_deadline(Some(Duration::from_millis(30)));
        let mut b = [0u8; 1];
        let posts = [Some(RecvPost::new(3, 11, &mut b))];
        let err = mb.wait_any_matching_checked(&posts).unwrap_err();
        assert_eq!(err.kind, CommErrorKind::Timeout);
        assert_eq!((err.peer, err.tag), (Some(3), Some(11)));
    }

    #[test]
    fn barrier_wait_reports_any_fault() {
        let mb = Mailbox::new();
        mb.fail(2, CommErrorKind::PeerLost, "connection to rank 2 lost: io".into());
        let err = mb.wait_until_checked(|| false).unwrap_err();
        assert_eq!(err.kind, CommErrorKind::PeerLost);
        assert!(err.detail.contains("barrier cannot complete: rank 2"), "{}", err.detail);
    }

    #[test]
    fn fault_of_tracks_peers_independently() {
        let mb = Mailbox::new();
        mb.fail(1, CommErrorKind::PeerClosed, "eof".into());
        mb.fail(3, CommErrorKind::Corrupt, "bad crc".into());
        assert_eq!(mb.fault_of(1).unwrap().0, CommErrorKind::PeerClosed);
        assert_eq!(mb.fault_of(3).unwrap().0, CommErrorKind::Corrupt);
        assert!(mb.fault_of(2).is_none(), "healthy peers carry no fault");
    }

    #[test]
    fn first_fault_per_peer_wins() {
        // The root cause must not be overwritten by cascade errors that
        // follow it (e.g. Corrupt followed by the reader closing).
        let mb = Mailbox::new();
        mb.fail(1, CommErrorKind::Corrupt, "frame CRC mismatch".into());
        mb.fail(1, CommErrorKind::PeerClosed, "connection closed".into());
        let (kind, why) = mb.fault_of(1).unwrap();
        assert_eq!(kind, CommErrorKind::Corrupt);
        assert!(why.contains("CRC"), "{why}");
    }

    #[test]
    #[should_panic(expected = "receive from rank 1 (tag 7) cannot complete")]
    fn legacy_recv_still_panics_loudly() {
        let mb = Mailbox::new();
        mb.fail(1, CommErrorKind::PeerClosed, "connection to rank 1 closed".into());
        mb.recv_matching(1, 7);
    }
}
