//! The rank-local mailbox shared by every multi-rank transport.
//!
//! Both [`crate::thread_world::ThreadWorld`] (messages arrive from
//! sibling threads) and [`crate::socket_world::SocketWorld`] (messages
//! arrive from per-peer reader threads) deliver into the same
//! structure: an arrival-ordered deque guarded by a mutex + condvar.
//! Scanning front-to-back preserves FIFO per (sender, tag) pair
//! because each producer appends its messages in program order, and
//! out-of-tag arrivals simply stay parked until a matching receive —
//! MPI's unexpected-message queue.
//!
//! The mailbox also owns the *fault* channel of a transport: a reader
//! thread that loses its peer (socket EOF mid-run) calls [`Mailbox::fail`],
//! which wakes every blocked receive so the rank dies with a clear
//! "connection to rank R lost" panic instead of hanging forever — the
//! stalled-rank failure mode the launcher's timeout then cleans up.
//! Faults are tracked *per peer*: ranks of one job finish at slightly
//! different moments, so an EOF from an already-finished peer must not
//! poison a receive from a still-live one. Only an operation that
//! needs the faulted peer (a receive from it, a post on it, a barrier
//! — which needs everyone) panics.

use crate::comm::RecvPost;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// One delivered message, owning its (pool-recycled) byte buffer.
pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    pub data: Vec<u8>,
}

struct Queue {
    messages: VecDeque<Message>,
    /// Per-peer transport faults (connection closed or lost); each
    /// peer's entry is set at most once.
    faults: BTreeMap<usize, String>,
}

/// Arrival-ordered inbox of one rank.
pub(crate) struct Mailbox {
    queue: Mutex<Queue>,
    arrived: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox {
            queue: Mutex::new(Queue { messages: VecDeque::new(), faults: BTreeMap::new() }),
            arrived: Condvar::new(),
        }
    }

    /// Deliver one message (producer side) and wake any waiter.
    pub fn push(&self, msg: Message) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.messages.push_back(msg);
        drop(q);
        self.arrived.notify_all();
    }

    /// Record a transport fault on the connection to `from` and wake
    /// every blocked receive (waiters re-check whether the peer they
    /// need is the one that went away).
    pub fn fail(&self, from: usize, why: String) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.faults.entry(from).or_insert(why);
        drop(q);
        self.arrived.notify_all();
    }

    /// Grow the parked-message deque to hold at least `slots` messages
    /// without reallocating. Called by the transports' `prewarm_pool`
    /// so a parking burst during a measured window cannot trigger a
    /// deque growth at a scheduler-dependent moment — the same
    /// determinism-by-construction the buffer pools get.
    pub fn reserve(&self, slots: usize) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let additional = slots.saturating_sub(q.messages.len());
        if q.messages.capacity() < slots {
            q.messages.reserve(additional);
        }
    }

    /// Messages currently parked (diagnostics).
    #[allow(dead_code)]
    pub fn parked(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).messages.len()
    }

    /// Remove and return every parked message matching `pred` (the
    /// caller recycles the buffers). Used to isolate consecutive SPMD
    /// runs on a reused transport; the predicate lets the transport
    /// keep protocol-internal messages (a fast peer's next collective
    /// may already be parked here) while draining stale user data.
    pub fn take_where(&self, pred: impl Fn(&Message) -> bool) -> Vec<Message> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        let mut i = 0;
        while i < q.messages.len() {
            if pred(&q.messages[i]) {
                out.push(q.messages.remove(i).expect("index is in range"));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Blocking receive of the next message matching `(from, tag)`.
    pub fn recv_matching(&self, from: usize, tag: u64) -> Message {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(pos) = q.messages.iter().position(|m| m.from == from && m.tag == tag) {
                return q.messages.remove(pos).expect("position is in range");
            }
            if let Some(why) = q.faults.get(&from) {
                panic!("receive from rank {from} (tag {tag}) cannot complete: {why}");
            }
            q = self.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive of the next message matching `(from, tag)`.
    pub fn try_recv_matching(&self, from: usize, tag: u64) -> Option<Message> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let pos = q.messages.iter().position(|m| m.from == from && m.tag == tag)?;
        Some(q.messages.remove(pos).expect("position is in range"))
    }

    /// Block until a message matching any live slot in `posts` arrives,
    /// preferring the *earliest arrival* — the `MPI_Waitany` pattern.
    /// Returns the slot index and the message; the caller takes the
    /// post, copies the payload, and recycles the buffer.
    pub fn wait_any_matching(&self, posts: &[Option<RecvPost<'_>>]) -> (usize, Message) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let hit = q.messages.iter().position(|m| {
                posts.iter().any(|p| p.as_ref().is_some_and(|p| p.from == m.from && p.tag == m.tag))
            });
            if let Some(pos) = hit {
                let msg = q.messages.remove(pos).expect("position is in range");
                let slot = posts
                    .iter()
                    .position(|p| {
                        p.as_ref().is_some_and(|p| p.from == msg.from && p.tag == msg.tag)
                    })
                    .expect("a post matched above");
                return (slot, msg);
            }
            // A live post on a faulted peer can never complete (its
            // messages, had any been in flight, were delivered before
            // the fault was recorded).
            for p in posts.iter().flatten() {
                if let Some(why) = q.faults.get(&p.from) {
                    panic!("wait_any on rank {} (tag {}) cannot complete: {why}", p.from, p.tag);
                }
            }
            q = self.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until `enough()` (re-evaluated after every delivery)
    /// returns true — the socket flush-barrier waits on per-peer
    /// delivery counters this way.
    pub fn wait_until(&self, mut enough: impl FnMut() -> bool) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if enough() {
                return;
            }
            // A barrier needs every peer, so any fault is fatal here.
            if let Some((from, why)) = q.faults.iter().next() {
                panic!("barrier cannot complete: rank {from}: {why}");
            }
            q = self.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}
