//! The deterministic collective engine shared by every transport.
//!
//! Both multi-rank transports used to carry their own allreduce and
//! barrier (a rank-0 star in the socket world, a leader-reduces path
//! behind a condvar barrier in the thread world). This module factors
//! the collectives out into one engine written against checked
//! point-to-point operations ([`CollEndpoint`]), so a transport only
//! has to provide `send`/`recv`/`tag` and inherits every algorithm —
//! including the fault semantics of its mailbox (typed [`CommError`]s
//! with peer attribution instead of hangs).
//!
//! Two algorithms are implemented, selectable via `HPGMXP_COLL`:
//!
//! * **`star`** — the original O(P) pattern: rank 0 receives every
//!   contribution in rank order, reduces, and broadcasts. The root
//!   performs P−1 sequential receives per collective.
//! * **`rd`** (the default) — a recursive-doubling / Bruck
//!   **allgather**-based allreduce in ⌈log₂P⌉ rounds: round `k` sends
//!   the `min(2^k, P−2^k)` blocks held so far to rank `r−2^k` and
//!   receives as many from `r+2^k`, so every rank ends holding all `P`
//!   contributions after ⌈log₂P⌉ receives. The barrier is the classic
//!   dissemination barrier (same round structure, empty payloads).
//!
//! **Determinism contract.** Whatever the algorithm, every rank folds
//! the gathered contributions *locally in rank order 0..P* — the same
//! trick as the deterministic blocked-pairwise dot. The floating-point
//! reduction tree is therefore a constant of the program: `star` and
//! `rd` produce bit-identical results to each other and across
//! transports and world sizes, which is what lets GMRES-IR residual
//! histories replay bit-for-bit under any `HPGMXP_COMM`/`HPGMXP_COLL`
//! combination (pinned by the multirank determinism suite).
//!
//! Every operation updates the endpoint's [`CollCounters`] (operation,
//! round, receive, and byte counts), so the O(P)→O(log P) root-load
//! claim is measured, not asserted: rank 0's per-allreduce receive
//! count drops from P−1 to ⌈log₂P⌉, and the Timeline can record the
//! per-solve totals.

use crate::comm::{reduce_into, ReduceOp};
use crate::error::CommResult;
use hpgmxp_trace::{counter, Lane};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which collective algorithm the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollAlgo {
    /// Rank-0 gather + broadcast: O(P) sequential receives at the root.
    Star,
    /// Recursive-doubling (Bruck) allgather + local rank-order fold:
    /// O(log P) rounds on every rank. The default.
    RecursiveDoubling,
}

impl CollAlgo {
    /// Stable lowercase name (`HPGMXP_COLL` values, report fields).
    pub fn name(self) -> &'static str {
        match self {
            CollAlgo::Star => "star",
            CollAlgo::RecursiveDoubling => "rd",
        }
    }

    /// Parse an `HPGMXP_COLL` value. Unknown values are a loud error.
    pub fn parse(v: &str) -> Option<CollAlgo> {
        match v {
            "star" => Some(CollAlgo::Star),
            "rd" => Some(CollAlgo::RecursiveDoubling),
            _ => None,
        }
    }

    /// Read `HPGMXP_COLL` (default: `rd`). Unknown values panic —
    /// a typo must not silently change the message pattern.
    pub fn from_env() -> CollAlgo {
        static ENV: OnceLock<CollAlgo> = OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("HPGMXP_COLL") {
            Ok(v) if v.is_empty() => CollAlgo::RecursiveDoubling,
            Ok(v) => CollAlgo::parse(&v).unwrap_or_else(|| {
                panic!("unknown HPGMXP_COLL={v:?} (expected \"star\" or \"rd\")")
            }),
            Err(_) => CollAlgo::RecursiveDoubling,
        })
    }
}

/// Process-wide algorithm override: 0 = follow the environment,
/// otherwise the algorithm in force. In-process A/B tests and the
/// microbenchmarks use this because `HPGMXP_COLL` is read once and
/// mutating the environment races other threads.
static ALGO_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force every subsequent collective onto `algo` (or back to the
/// environment's choice with `None`). Applies process-wide; intended
/// for tests and benchmarks, not steady-state configuration.
pub fn set_algo_override(algo: Option<CollAlgo>) {
    let v = match algo {
        None => 0,
        Some(CollAlgo::Star) => 1,
        Some(CollAlgo::RecursiveDoubling) => 2,
    };
    ALGO_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The algorithm in force: the override if set, else `HPGMXP_COLL`.
pub fn algo() -> CollAlgo {
    match ALGO_OVERRIDE.load(Ordering::SeqCst) {
        1 => CollAlgo::Star,
        2 => CollAlgo::RecursiveDoubling,
        _ => CollAlgo::from_env(),
    }
}

/// Per-endpoint collective traffic counters, updated by the engine on
/// every operation. All counts are cumulative since endpoint creation;
/// snapshot with [`CollCounters::snapshot`] and diff two snapshots to
/// attribute traffic to a phase (the Timeline records per-solve
/// deltas this way).
#[derive(Debug, Default)]
pub struct CollCounters {
    allreduces: AtomicU64,
    barriers: AtomicU64,
    allgathers: AtomicU64,
    /// Sequential message waves this rank participated in.
    rounds: AtomicU64,
    /// Blocking collective receives this rank performed — the root-load
    /// metric: per allreduce, P−1 at rank 0 under `star`, ⌈log₂P⌉
    /// everywhere under `rd`.
    recvs: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl CollCounters {
    /// Record a barrier that completed outside the engine's `barrier`
    /// path — the socket/shmem flush barrier is an engine allgather
    /// plus a ledger wait, but it is still one barrier to the caller.
    pub(crate) fn count_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::SeqCst);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CollStats {
        CollStats {
            allreduces: self.allreduces.load(Ordering::SeqCst),
            barriers: self.barriers.load(Ordering::SeqCst),
            allgathers: self.allgathers.load(Ordering::SeqCst),
            rounds: self.rounds.load(Ordering::SeqCst),
            recvs: self.recvs.load(Ordering::SeqCst),
            bytes_sent: self.bytes_sent.load(Ordering::SeqCst),
            bytes_received: self.bytes_received.load(Ordering::SeqCst),
        }
    }
}

/// Snapshot of an endpoint's [`CollCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollStats {
    /// Allreduce operations completed.
    pub allreduces: u64,
    /// Barrier operations completed.
    pub barriers: u64,
    /// Allgather operations completed (the socket/shmem flush barrier
    /// runs one per barrier, on top of the barrier count).
    pub allgathers: u64,
    /// Sequential message waves across all operations.
    pub rounds: u64,
    /// Blocking collective receives performed.
    pub recvs: u64,
    /// Collective payload bytes sent.
    pub bytes_sent: u64,
    /// Collective payload bytes received.
    pub bytes_received: u64,
}

impl CollStats {
    /// Counter increments between an earlier snapshot and this one.
    pub fn since(&self, earlier: &CollStats) -> CollStats {
        CollStats {
            allreduces: self.allreduces - earlier.allreduces,
            barriers: self.barriers - earlier.barriers,
            allgathers: self.allgathers - earlier.allgathers,
            rounds: self.rounds - earlier.rounds,
            recvs: self.recvs - earlier.recvs,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
        }
    }
}

/// Rounds of the recursive-doubling schedule: ⌈log₂P⌉.
pub fn rd_rounds(p: usize) -> u32 {
    debug_assert!(p > 0);
    usize::BITS - (p - 1).leading_zeros()
}

/// The checked point-to-point operations a transport lends the engine.
///
/// `coll_send` must be non-blocking with respect to the peer's receive
/// (delivery into a mailbox / kernel buffer), or the round schedules
/// deadlock. `coll_recv` blocks until exactly `out.len()` bytes arrive
/// from `(from, tag)` and must honor the transport's fault channel
/// (typed error when the peer died or the receive deadline elapsed).
/// `next_coll_tag` returns a fresh reserved tag; collectives execute
/// in SPMD program order, so every rank draws the same sequence.
pub(crate) trait CollEndpoint {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn coll_send(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()>;
    fn coll_recv(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()>;
    fn next_coll_tag(&self) -> u64;
    fn counters(&self) -> &CollCounters;
}

/// Reusable per-endpoint scratch: sized on first use (or by
/// `prewarm`), then stable — collectives allocate nothing at steady
/// state, preserving the transports' zero-allocation discipline.
#[derive(Debug, Default)]
pub(crate) struct CollScratch {
    /// Bruck ring / star staging: up to P blocks of the payload.
    ring: Vec<u8>,
    /// Rank-order fold accumulator.
    acc: Vec<f64>,
    /// Decoded peer contribution.
    peer: Vec<f64>,
}

impl CollScratch {
    /// Grow the scratch so a `vals_len`-element allreduce in a world of
    /// `p` ranks runs without allocating.
    pub fn prewarm(&mut self, p: usize, vals_len: usize) {
        let want = p * vals_len * 8;
        if self.ring.capacity() < want {
            self.ring.reserve(want - self.ring.len());
        }
        if self.acc.capacity() < vals_len {
            self.acc.reserve(vals_len - self.acc.len());
        }
        if self.peer.capacity() < vals_len {
            self.peer.reserve(vals_len - self.peer.len());
        }
    }
}

fn encode_f64s(vals: &[f64], out: &mut [u8]) {
    debug_assert_eq!(out.len(), vals.len() * 8);
    for (v, c) in vals.iter().zip(out.chunks_exact_mut(8)) {
        c.copy_from_slice(&v.to_le_bytes());
    }
}

fn decode_f64s_into(bytes: &[u8], out: &mut Vec<f64>) {
    debug_assert_eq!(bytes.len() % 8, 0);
    out.clear();
    out.extend(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())));
}

/// Allreduce under the algorithm in force (override / `HPGMXP_COLL`).
pub(crate) fn allreduce<E: CollEndpoint + ?Sized>(
    ep: &E,
    scratch: &mut CollScratch,
    vals: &mut [f64],
    op: ReduceOp,
) -> CommResult<()> {
    allreduce_with(ep, algo(), scratch, vals, op)
}

/// Allreduce under an explicit algorithm. Both algorithms fold the P
/// contributions in rank order 0..P, so their results are
/// bit-identical; only the message pattern differs.
pub(crate) fn allreduce_with<E: CollEndpoint + ?Sized>(
    ep: &E,
    algo: CollAlgo,
    scratch: &mut CollScratch,
    vals: &mut [f64],
    op: ReduceOp,
) -> CommResult<()> {
    let (p, r) = (ep.size(), ep.rank());
    let c = ep.counters();
    c.allreduces.fetch_add(1, Ordering::SeqCst);
    counter!("coll.allreduces").inc();
    if p == 1 {
        return Ok(());
    }
    let mut sp = hpgmxp_trace::span("allreduce", Lane::Coll);
    sp.set_arg(vals.len() as u64);
    let tag = ep.next_coll_tag();
    let b = vals.len() * 8;
    match algo {
        CollAlgo::Star => {
            scratch.ring.clear();
            scratch.ring.resize(b, 0);
            if r == 0 {
                // Reduce in rank order 0..P — the fixed fold order the
                // determinism contract pins.
                scratch.acc.clear();
                scratch.acc.extend_from_slice(vals);
                for src in 1..p {
                    ep.coll_recv(src, tag, &mut scratch.ring)?;
                    c.recvs.fetch_add(1, Ordering::SeqCst);
                    c.bytes_received.fetch_add(b as u64, Ordering::SeqCst);
                    decode_f64s_into(&scratch.ring, &mut scratch.peer);
                    reduce_into(op, &mut scratch.acc, &scratch.peer);
                }
                vals.copy_from_slice(&scratch.acc);
                encode_f64s(vals, &mut scratch.ring);
                for dst in 1..p {
                    ep.coll_send(dst, tag, &scratch.ring)?;
                    c.bytes_sent.fetch_add(b as u64, Ordering::SeqCst);
                }
                c.rounds.fetch_add((p - 1) as u64, Ordering::SeqCst);
            } else {
                encode_f64s(vals, &mut scratch.ring);
                ep.coll_send(0, tag, &scratch.ring)?;
                c.bytes_sent.fetch_add(b as u64, Ordering::SeqCst);
                ep.coll_recv(0, tag, &mut scratch.ring)?;
                c.recvs.fetch_add(1, Ordering::SeqCst);
                c.bytes_received.fetch_add(b as u64, Ordering::SeqCst);
                for (v, chunk) in vals.iter_mut().zip(scratch.ring.chunks_exact(8)) {
                    *v = f64::from_le_bytes(chunk.try_into().unwrap());
                }
                c.rounds.fetch_add(2, Ordering::SeqCst);
            }
        }
        CollAlgo::RecursiveDoubling => {
            scratch.ring.clear();
            scratch.ring.resize(p * b, 0);
            encode_f64s(vals, &mut scratch.ring[..b]);
            bruck_allgather(ep, tag, b, &mut scratch.ring)?;
            // Every rank now holds all P blocks (slot j = rank
            // (r+j) mod P); fold them locally in rank order 0..P.
            scratch.acc.clear();
            for i in 0..p {
                let slot = (i + p - r) % p;
                let block = &scratch.ring[slot * b..slot * b + b];
                if i == 0 {
                    decode_f64s_into(block, &mut scratch.acc);
                } else {
                    decode_f64s_into(block, &mut scratch.peer);
                    reduce_into(op, &mut scratch.acc, &scratch.peer);
                }
            }
            vals.copy_from_slice(&scratch.acc);
        }
    }
    Ok(())
}

/// The Bruck allgather kernel: `ring` holds P slots of `b` bytes, slot
/// 0 = this rank's own block on entry; on exit slot `j` holds the
/// block of rank `(r+j) mod P`. ⌈log₂P⌉ rounds, any P.
fn bruck_allgather<E: CollEndpoint + ?Sized>(
    ep: &E,
    tag: u64,
    b: usize,
    ring: &mut [u8],
) -> CommResult<()> {
    let (p, r) = (ep.size(), ep.rank());
    let c = ep.counters();
    let mut k = 1usize;
    while k < p {
        let _round = hpgmxp_trace::span("coll round", Lane::Coll);
        let cnt = k.min(p - k);
        let to = (r + p - k) % p;
        let from = (r + k) % p;
        // Send before receive: sends are mailbox/buffer posted, so the
        // symmetric round schedule cannot deadlock.
        ep.coll_send(to, tag, &ring[..cnt * b])?;
        c.bytes_sent.fetch_add((cnt * b) as u64, Ordering::SeqCst);
        ep.coll_recv(from, tag, &mut ring[k * b..(k + cnt) * b])?;
        c.recvs.fetch_add(1, Ordering::SeqCst);
        c.bytes_received.fetch_add((cnt * b) as u64, Ordering::SeqCst);
        c.rounds.fetch_add(1, Ordering::SeqCst);
        k <<= 1;
    }
    Ok(())
}

/// Barrier under the algorithm in force.
pub(crate) fn barrier<E: CollEndpoint + ?Sized>(ep: &E) -> CommResult<()> {
    barrier_with(ep, algo())
}

/// Barrier under an explicit algorithm: a rank-0 star of empty
/// messages, or the dissemination barrier (round `k`: send to
/// `r+2^k`, receive from `r−2^k`, ⌈log₂P⌉ rounds).
pub(crate) fn barrier_with<E: CollEndpoint + ?Sized>(ep: &E, algo: CollAlgo) -> CommResult<()> {
    let (p, r) = (ep.size(), ep.rank());
    let c = ep.counters();
    c.barriers.fetch_add(1, Ordering::SeqCst);
    counter!("coll.barriers").inc();
    if p == 1 {
        return Ok(());
    }
    let _sp = hpgmxp_trace::span("barrier", Lane::Coll);
    let tag = ep.next_coll_tag();
    match algo {
        CollAlgo::Star => {
            if r == 0 {
                for src in 1..p {
                    ep.coll_recv(src, tag, &mut [])?;
                    c.recvs.fetch_add(1, Ordering::SeqCst);
                }
                for dst in 1..p {
                    ep.coll_send(dst, tag, &[])?;
                }
                c.rounds.fetch_add((p - 1) as u64, Ordering::SeqCst);
            } else {
                ep.coll_send(0, tag, &[])?;
                ep.coll_recv(0, tag, &mut [])?;
                c.recvs.fetch_add(1, Ordering::SeqCst);
                c.rounds.fetch_add(2, Ordering::SeqCst);
            }
        }
        CollAlgo::RecursiveDoubling => {
            let mut k = 1usize;
            while k < p {
                let _round = hpgmxp_trace::span("coll round", Lane::Coll);
                ep.coll_send((r + k) % p, tag, &[])?;
                ep.coll_recv((r + p - k) % p, tag, &mut [])?;
                c.recvs.fetch_add(1, Ordering::SeqCst);
                c.rounds.fetch_add(1, Ordering::SeqCst);
                k <<= 1;
            }
        }
    }
    Ok(())
}

/// Allgather of one `u64` row per rank under the algorithm in force:
/// on return `out` holds P rows of `row.len()` values in rank order.
/// This is how the socket/shmem flush barrier distributes the
/// sent-count matrix (row `i` = what rank `i` has sent to each peer).
pub(crate) fn allgather_u64<E: CollEndpoint + ?Sized>(
    ep: &E,
    scratch: &mut CollScratch,
    row: &[u64],
    out: &mut Vec<u64>,
) -> CommResult<()> {
    allgather_u64_with(ep, algo(), scratch, row, out)
}

/// [`allgather_u64`] under an explicit algorithm.
pub(crate) fn allgather_u64_with<E: CollEndpoint + ?Sized>(
    ep: &E,
    algo: CollAlgo,
    scratch: &mut CollScratch,
    row: &[u64],
    out: &mut Vec<u64>,
) -> CommResult<()> {
    let (p, r) = (ep.size(), ep.rank());
    let c = ep.counters();
    c.allgathers.fetch_add(1, Ordering::SeqCst);
    counter!("coll.allgathers").inc();
    let _sp = hpgmxp_trace::span("allgather", Lane::Coll);
    let n = row.len();
    out.clear();
    out.resize(p * n, 0);
    if p == 1 {
        out.copy_from_slice(row);
        return Ok(());
    }
    let tag = ep.next_coll_tag();
    let b = n * 8;
    let encode_row = |row: &[u64], dst: &mut [u8]| {
        for (v, chunk) in row.iter().zip(dst.chunks_exact_mut(8)) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    };
    let decode_row = |src: &[u8], dst: &mut [u64]| {
        for (v, chunk) in dst.iter_mut().zip(src.chunks_exact(8)) {
            *v = u64::from_le_bytes(chunk.try_into().unwrap());
        }
    };
    match algo {
        CollAlgo::Star => {
            scratch.ring.clear();
            scratch.ring.resize(p * b, 0);
            if r == 0 {
                out[..n].copy_from_slice(row);
                for src in 1..p {
                    let (lo, hi) = (src * b, (src + 1) * b);
                    ep.coll_recv(src, tag, &mut scratch.ring[lo..hi])?;
                    c.recvs.fetch_add(1, Ordering::SeqCst);
                    c.bytes_received.fetch_add(b as u64, Ordering::SeqCst);
                    decode_row(&scratch.ring[lo..hi], &mut out[src * n..(src + 1) * n]);
                }
                encode_row(out, &mut scratch.ring);
                for dst in 1..p {
                    ep.coll_send(dst, tag, &scratch.ring)?;
                    c.bytes_sent.fetch_add((p * b) as u64, Ordering::SeqCst);
                }
                c.rounds.fetch_add((p - 1) as u64, Ordering::SeqCst);
            } else {
                encode_row(row, &mut scratch.ring[..b]);
                ep.coll_send(0, tag, &scratch.ring[..b])?;
                c.bytes_sent.fetch_add(b as u64, Ordering::SeqCst);
                ep.coll_recv(0, tag, &mut scratch.ring)?;
                c.recvs.fetch_add(1, Ordering::SeqCst);
                c.bytes_received.fetch_add((p * b) as u64, Ordering::SeqCst);
                decode_row(&scratch.ring, out);
                c.rounds.fetch_add(2, Ordering::SeqCst);
            }
        }
        CollAlgo::RecursiveDoubling => {
            scratch.ring.clear();
            scratch.ring.resize(p * b, 0);
            encode_row(row, &mut scratch.ring[..b]);
            bruck_allgather(ep, tag, b, &mut scratch.ring)?;
            for i in 0..p {
                let slot = (i + p - r) % p;
                decode_row(&scratch.ring[slot * b..(slot + 1) * b], &mut out[i * n..(i + 1) * n]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_and_parse_roundtrip() {
        assert_eq!(CollAlgo::parse("star"), Some(CollAlgo::Star));
        assert_eq!(CollAlgo::parse("rd"), Some(CollAlgo::RecursiveDoubling));
        assert_eq!(CollAlgo::parse("tree"), None);
        assert_eq!(CollAlgo::Star.name(), "star");
        assert_eq!(CollAlgo::RecursiveDoubling.name(), "rd");
    }

    #[test]
    fn rd_round_counts() {
        for (p, rounds) in [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4)] {
            assert_eq!(rd_rounds(p), rounds, "P = {p}");
        }
    }

    #[test]
    fn stats_since_diffs_counters() {
        let c = CollCounters::default();
        c.allreduces.fetch_add(3, Ordering::SeqCst);
        c.recvs.fetch_add(7, Ordering::SeqCst);
        let before = c.snapshot();
        c.allreduces.fetch_add(2, Ordering::SeqCst);
        c.recvs.fetch_add(4, Ordering::SeqCst);
        c.bytes_sent.fetch_add(100, Ordering::SeqCst);
        let delta = c.snapshot().since(&before);
        assert_eq!((delta.allreduces, delta.recvs, delta.bytes_sent), (2, 4, 100));
    }
}
