//! Typed communication failures — the vocabulary of the fault layer.
//!
//! Every detectable transport fault (peer process death, a wedged
//! connection that stopped heartbeating, a corrupt frame, a receive
//! that outlived its deadline) surfaces as a [`CommError`] carrying
//! the peer rank, the tag being waited on, and how long the operation
//! ran before failing — enough for a rank to exit with a diagnostic
//! that names the culprit instead of hanging until an external
//! watchdog kills the job.
//!
//! The `*_checked` methods on [`crate::Comm`] return
//! [`CommResult`]; the legacy infallible methods wrap them and panic
//! with the error's `Display` form, so existing callers keep their
//! loud-failure behavior and existing diagnostics (every message still
//! names the peer, e.g. "connection to rank 1 closed").

use std::time::Duration;

/// What kind of transport fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommErrorKind {
    /// The peer closed its side of the connection (clean EOF) — the
    /// signature of a rank that exited, cleanly or not.
    PeerClosed,
    /// The connection to the peer is gone or silent: an I/O error on
    /// the stream, or no heartbeat within the peer-timeout window.
    PeerLost,
    /// A frame failed validation (bad magic, CRC mismatch, oversized
    /// length) — the payload cannot be trusted.
    Corrupt,
    /// A receive ran past its deadline with the peer still apparently
    /// alive — the signature of a hung (but not dead) rank.
    Timeout,
    /// The transport protocol was violated (unexpected message shape,
    /// length skew in a collective).
    Protocol,
}

impl CommErrorKind {
    /// Stable lowercase name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            CommErrorKind::PeerClosed => "peer-closed",
            CommErrorKind::PeerLost => "peer-lost",
            CommErrorKind::Corrupt => "corrupt",
            CommErrorKind::Timeout => "timeout",
            CommErrorKind::Protocol => "protocol",
        }
    }
}

/// A detected communication fault, attributed to a peer when one is
/// known and stamped with the time the failing operation had been
/// blocked.
#[derive(Debug, Clone, PartialEq)]
pub struct CommError {
    /// The failure class.
    pub kind: CommErrorKind,
    /// The rank this failure is attributed to, when attributable.
    pub peer: Option<usize>,
    /// The tag the failing operation was posted on, when it had one.
    pub tag: Option<u64>,
    /// How long the operation ran before the fault was detected.
    pub elapsed: Duration,
    /// Human-readable cause (e.g. "connection to rank 2 closed").
    pub detail: String,
}

impl CommError {
    /// A fault with no timing information yet (elapsed zero).
    pub fn new(kind: CommErrorKind, peer: Option<usize>, detail: impl Into<String>) -> Self {
        CommError { kind, peer, tag: None, elapsed: Duration::ZERO, detail: detail.into() }
    }

    /// Attach the tag of the operation that observed the fault.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Attach how long the operation ran before failing.
    pub fn with_elapsed(mut self, elapsed: Duration) -> Self {
        self.elapsed = elapsed;
        self
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "comm fault [{}]", self.kind.name())?;
        if let Some(peer) = self.peer {
            write!(f, " from rank {peer}")?;
        }
        if let Some(tag) = self.tag {
            write!(f, " (tag {tag})")?;
        }
        if !self.elapsed.is_zero() {
            write!(f, " after {:.3}s", self.elapsed.as_secs_f64())?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for CommError {}

/// Result alias used by every fallible comm operation.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_peer_tag_and_elapsed() {
        let e = CommError::new(CommErrorKind::PeerClosed, Some(1), "connection to rank 1 closed")
            .with_tag(5)
            .with_elapsed(Duration::from_millis(1500));
        let s = e.to_string();
        assert!(s.contains("from rank 1"), "{s}");
        assert!(s.contains("(tag 5)"), "{s}");
        assert!(s.contains("1.500s"), "{s}");
        assert!(s.contains("connection to rank 1 closed"), "{s}");
        assert!(s.contains("peer-closed"), "{s}");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(CommErrorKind::Timeout.name(), "timeout");
        assert_eq!(CommErrorKind::Corrupt.name(), "corrupt");
        assert_eq!(CommErrorKind::PeerLost.name(), "peer-lost");
        assert_eq!(CommErrorKind::Protocol.name(), "protocol");
    }
}
