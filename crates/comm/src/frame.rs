//! The framed wire protocol of the socket transport.
//!
//! Every message between two socket ranks travels as one *frame*: a
//! fixed 24-byte little-endian header followed by the payload bytes.
//!
//! ```text
//! offset  size  field
//!      0     4  magic   0x4D_46_50_48 ("HPFM")
//!      4     4  from    sending rank
//!      8     4  len     payload length in bytes
//!     12     4  crc     CRC32 (IEEE) of the payload bytes
//!     16     8  tag     message tag
//! ```
//!
//! The CRC turns a corrupted frame from silent bad numerics into a
//! rank-attributed protocol error: [`read_frame`] recomputes the
//! payload checksum and refuses a mismatch with `InvalidData`, which
//! the socket transport converts into a "corrupt frame from rank R"
//! fault on that connection.
//!
//! The reader side is written against plain [`std::io::Read`] streams
//! and survives arbitrary short reads (a TCP segment boundary can land
//! anywhere, including inside the header). The writer stages header +
//! payload into one caller-owned buffer so a frame costs a single
//! `write_all` — and zero heap allocations once the buffer has grown
//! to the steady-state frame size, which is what keeps the socket
//! transport's hot path allocation-free.
//!
//! Frames longer than [`MAX_FRAME_LEN`] are rejected on *both* sides:
//! the writer refuses to emit them and the reader refuses to trust a
//! length field that large (a corrupted or malicious header must not
//! make a rank try to allocate gigabytes).

use std::io::{ErrorKind, Read};

/// Frame magic: `"HPFM"` as little-endian bytes.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"HPFM");

/// Bytes of the fixed frame header.
pub const HEADER_LEN: usize = 24;

/// Upper bound on a frame payload (64 MiB). Far above any halo or
/// collective message this benchmark produces, far below anything that
/// could take down a rank on a bad length field.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// CRC32 (IEEE, reflected polynomial 0xEDB88320) lookup table, built
/// at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum carried in every frame
/// header and in the checkpoint file trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sending rank.
    pub from: u32,
    /// Message tag.
    pub tag: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 of the payload bytes.
    pub crc: u32,
}

impl FrameHeader {
    /// Encode into the 24-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        h[4..8].copy_from_slice(&self.from.to_le_bytes());
        h[8..12].copy_from_slice(&self.len.to_le_bytes());
        h[12..16].copy_from_slice(&self.crc.to_le_bytes());
        h[16..24].copy_from_slice(&self.tag.to_le_bytes());
        h
    }

    /// Decode and validate the 24-byte wire form. The payload CRC is
    /// carried through; [`read_frame`] verifies it once the payload
    /// bytes are in hand.
    pub fn decode(h: &[u8; HEADER_LEN]) -> Result<FrameHeader, String> {
        let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
        if magic != FRAME_MAGIC {
            return Err(format!("bad frame magic {magic:#010x} (expected {FRAME_MAGIC:#010x})"));
        }
        let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        if len > MAX_FRAME_LEN {
            return Err(format!("oversized frame: {len} bytes (limit {MAX_FRAME_LEN})"));
        }
        Ok(FrameHeader {
            from: u32::from_le_bytes([h[4], h[5], h[6], h[7]]),
            tag: u64::from_le_bytes([h[16], h[17], h[18], h[19], h[20], h[21], h[22], h[23]]),
            len,
            crc: u32::from_le_bytes([h[12], h[13], h[14], h[15]]),
        })
    }
}

/// Stage one frame (header + payload) into `out`, cleared first. With
/// sufficient capacity this never allocates; the caller issues a single
/// `write_all(out)` so a frame is one syscall and cannot interleave
/// with another thread's frame on the same stream.
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — the halo plan and
/// collectives bound every legitimate message far below it.
pub fn stage_frame(out: &mut Vec<u8>, from: usize, tag: u64, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "refusing to send a {} byte frame (limit {MAX_FRAME_LEN})",
        payload.len()
    );
    let header =
        FrameHeader { from: from as u32, tag, len: payload.len() as u32, crc: crc32(payload) }
            .encode();
    out.clear();
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
}

/// Read exactly `buf.len()` bytes, looping over arbitrarily short
/// reads. Distinguishes a *clean* end of stream (zero bytes read —
/// `Ok(false)`) from a truncated one (mid-buffer EOF — `Err`).
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("stream ended {filled} bytes into a {}-byte read", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame from `r`. The payload buffer is obtained from
/// `take_buf(len)` — the socket transport passes a closure that pulls
/// a recycled buffer from the per-peer receive pool, so a steady-state
/// read allocates nothing.
///
/// Returns `Ok(None)` on a clean end of stream (the peer closed its
/// socket at a frame boundary); any mid-frame EOF, bad magic, or
/// oversized length is an error.
pub fn read_frame<R: Read + ?Sized>(
    r: &mut R,
    take_buf: impl FnOnce(usize) -> Vec<u8>,
) -> std::io::Result<Option<(FrameHeader, Vec<u8>)>> {
    let mut h = [0u8; HEADER_LEN];
    if !read_full(r, &mut h)? {
        return Ok(None);
    }
    let header =
        FrameHeader::decode(&h).map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
    let mut payload = take_buf(header.len as usize);
    payload.clear();
    payload.resize(header.len as usize, 0);
    if !read_full(r, &mut payload)? {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            format!("stream ended before the {}-byte payload of tag {}", header.len, header.tag),
        ));
    }
    let got = crc32(&payload);
    if got != header.crc {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "corrupt frame from rank {} (tag {}): payload CRC {got:#010x} != header CRC {:#010x}",
                header.from, header.tag, header.crc
            ),
        ));
    }
    Ok(Some((header, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Write};

    fn frame_bytes(from: usize, tag: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        stage_frame(&mut out, from, tag, payload);
        out
    }

    /// A reader that hands back at most `chunk` bytes per call — the
    /// adversarial segmentation a TCP stream is allowed to produce.
    struct ChunkedReader {
        inner: Cursor<Vec<u8>>,
        chunk: usize,
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.chunk);
            self.inner.read(&mut buf[..n])
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader { from: 3, tag: 0xDEAD_BEEF_0042, len: 4096, crc: 0x1234_5678 };
        assert_eq!(FrameHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut e = FrameHeader { from: 0, tag: 0, len: 0, crc: 0 }.encode();
        e[0] ^= 0xFF;
        let err = FrameHeader::decode(&e).unwrap_err();
        assert!(err.contains("bad frame magic"), "{err}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupt_payload_rejected_with_rank_attribution() {
        // Flip one payload byte after staging: the reader must refuse
        // the frame and name the sending rank.
        let mut bytes = frame_bytes(2, 9, b"good data");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut r = Cursor::new(bytes);
        let err = read_frame(&mut r, Vec::with_capacity).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("corrupt frame from rank 2"), "{msg}");
        assert!(msg.contains("CRC"), "{msg}");
    }

    #[test]
    fn corrupt_crc_field_rejected() {
        let mut bytes = frame_bytes(0, 1, b"payload");
        bytes[13] ^= 0xFF; // inside the header CRC field
        let mut r = Cursor::new(bytes);
        let err = read_frame(&mut r, Vec::with_capacity).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_len_rejected_by_reader() {
        let mut e = FrameHeader { from: 0, tag: 0, len: 0, crc: 0 }.encode();
        e[8..12].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = FrameHeader::decode(&e).unwrap_err();
        assert!(err.contains("oversized frame"), "{err}");
        // And through the stream path it surfaces as InvalidData.
        let mut r = Cursor::new(e.to_vec());
        let io = read_frame(&mut r, Vec::with_capacity).unwrap_err();
        assert_eq!(io.kind(), ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "refusing to send")]
    fn oversized_payload_rejected_by_writer() {
        // A zeroed just-over-limit vec (cheap: the pages stay
        // untouched until written).
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        stage_frame(&mut Vec::new(), 0, 0, &payload);
    }

    #[test]
    fn frame_roundtrips_through_a_stream() {
        let bytes = frame_bytes(2, 77, b"hello halo");
        let mut r = Cursor::new(bytes);
        let (h, p) = read_frame(&mut r, Vec::with_capacity).unwrap().unwrap();
        assert_eq!(h, FrameHeader { from: 2, tag: 77, len: 10, crc: crc32(b"hello halo") });
        assert_eq!(p, b"hello halo");
        assert!(read_frame(&mut r, Vec::with_capacity).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn empty_payload_frames_work() {
        // Barrier/collective control messages are zero-length.
        let mut r = Cursor::new(frame_bytes(1, 9, b""));
        let (h, p) = read_frame(&mut r, Vec::with_capacity).unwrap().unwrap();
        assert_eq!((h.from, h.tag, h.len), (1, 9, 0));
        assert!(p.is_empty());
    }

    #[test]
    fn interleaved_tags_from_one_peer_decode_in_order() {
        // One peer interleaves two tag streams on one connection; the
        // reader must hand frames back in exactly the order written —
        // the FIFO the mailbox's tag parking relies on.
        let mut wire = Vec::new();
        for i in 0..5u8 {
            wire.extend_from_slice(&frame_bytes(0, 10, &[i]));
            wire.extend_from_slice(&frame_bytes(0, 20, &[i + 100]));
        }
        let mut r = ChunkedReader { inner: Cursor::new(wire), chunk: 3 };
        let mut got = Vec::new();
        while let Some((h, p)) = read_frame(&mut r, Vec::with_capacity).unwrap() {
            got.push((h.tag, p[0]));
        }
        let expect: Vec<(u64, u8)> = (0..5u8).flat_map(|i| [(10, i), (20, i + 100)]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn truncated_header_and_payload_are_loud_errors() {
        let full = frame_bytes(0, 5, b"abcdef");
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 2] {
            let mut r = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut r, Vec::with_capacity).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn short_writes_never_tear_a_frame() {
        // A writer that accepts at most 5 bytes per call: `write_all`
        // over the staged buffer must still emit the full frame.
        struct ShortWriter {
            out: Vec<u8>,
        }
        impl Write for ShortWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(5);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut staged = Vec::new();
        stage_frame(&mut staged, 1, 42, &[7u8; 33]);
        let mut w = ShortWriter { out: Vec::new() };
        w.write_all(&staged).unwrap();
        let mut r = Cursor::new(w.out);
        let (h, p) = read_frame(&mut r, Vec::with_capacity).unwrap().unwrap();
        assert_eq!((h.from, h.tag), (1, 42));
        assert_eq!(p, vec![7u8; 33]);
    }

    #[test]
    fn staging_reuses_capacity() {
        let payload = [3u8; 256];
        let mut buf = Vec::with_capacity(HEADER_LEN + 256);
        let ptr = buf.as_ptr();
        for _ in 0..10 {
            stage_frame(&mut buf, 0, 1, &payload);
            assert_eq!(buf.len(), HEADER_LEN + 256);
        }
        assert_eq!(buf.as_ptr(), ptr, "staging a sized buffer must never reallocate");
    }

    /// A reader that segments the stream at a caller-chosen sequence of
    /// boundaries (cycled) — every split a TCP stack could produce.
    struct SplitReader {
        inner: Cursor<Vec<u8>>,
        splits: Vec<usize>,
        next: usize,
    }

    impl Read for SplitReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let chunk = self.splits[self.next % self.splits.len()];
            self.next += 1;
            let n = buf.len().min(chunk);
            self.inner.read(&mut buf[..n])
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The wire invariant the socket transport rests on: however a
        // TCP stream fragments a sequence of frames — any chunk sizes,
        // any boundaries, splits inside headers or payloads — the
        // reader recovers exactly the frames that were staged, in
        // order, ending in a clean EOF.
        #[test]
        fn any_chunk_boundaries_preserve_every_frame(
            frames in proptest::collection::vec((0usize..8, 0u64..1_000_000, 0usize..600), 1..8),
            splits in proptest::collection::vec(1usize..80, 1..10),
        ) {
            let mut wire = Vec::new();
            let mut staged = Vec::new();
            let expect: Vec<(FrameHeader, Vec<u8>)> = frames
                .iter()
                .map(|&(from, tag, len)| {
                    let payload: Vec<u8> =
                        (0..len).map(|i| (i * 31 + from * 7 + tag as usize) as u8).collect();
                    stage_frame(&mut staged, from, tag, &payload);
                    wire.extend_from_slice(&staged);
                    let h =
                        FrameHeader { from: from as u32, tag, len: len as u32, crc: crc32(&payload) };
                    (h, payload)
                })
                .collect();
            let mut r = SplitReader { inner: Cursor::new(wire), splits, next: 0 };
            let mut got = Vec::new();
            while let Some((h, p)) = read_frame(&mut r, Vec::with_capacity).unwrap() {
                got.push((h, p));
            }
            prop_assert_eq!(got, expect);
        }
    }
}
