//! Same-host process ranks over mmap'd `/dev/shm` ring buffers — the
//! third `Comm` backend.
//!
//! A [`ShmemWorld`] rank is a whole OS process, like the socket world,
//! but the data path never enters the kernel: every ordered rank pair
//! `(i, j)` owns a single-producer/single-consumer byte ring in one
//! shared `/dev/shm` file, and rank `i` sends to rank `j` by copying
//! [`crate::frame`]-encoded bytes into ring `(i, j)` and publishing a
//! new head counter. The frame protocol, CRC, per-peer recycled
//! receive pools, shared [`crate::mailbox::Mailbox`], heartbeats,
//! receive deadlines, and the fault-injection interposer are all the
//! same code the socket transport runs — only the byte channel
//! differs, which is precisely the layering the frame module promised.
//!
//! ## File layout
//!
//! ```text
//! [ header page: magic, size P, ring_bytes, attached counter ]
//! [ ring (0,0) ][ ring (0,1) ] ... [ ring (P-1,P-1) ]
//! ```
//!
//! Each ring is a 256-byte header — producer-owned `head` (total bytes
//! ever written), consumer-owned `tail` (total bytes ever read), and a
//! producer-set `closed` flag, each on its own cache line — followed
//! by `ring_bytes` (power of two, `HPGMXP_SHM_RING_BYTES`, default
//! 256 KiB) of data. Counters are monotonic; the write position is
//! `head & (ring_bytes - 1)`, so full (`head - tail == ring_bytes`)
//! and empty (`head == tail`) are unambiguous. Frames larger than the
//! ring stream through it in chunks — the consumer drains while the
//! producer refills, so the ring size bounds memory, not message size.
//!
//! ## Rendezvous
//!
//! Rank 0 creates the file (`HPGMXP_SHM_ID` names it, unique per
//! launch attempt), sizes it, initializes the header, and publishes
//! the magic last; other ranks poll for the file and magic, map it,
//! and bump the `attached` counter. Once every rank is attached rank 0
//! *unlinks* the file — the mapping stays valid for the attached
//! processes, and a crashed job leaks no `/dev/shm` entry.
//!
//! ## Blocking and failure
//!
//! Waits are spin-then-yield (no futex, no crates.io): a reader with
//! an empty ring and a writer against a full one spin briefly, then
//! yield, then sleep in 50 µs steps. A writer stalled longer than the
//! peer timeout fails the send with a typed `PeerLost` naming the
//! peer — the detector for a consumer that died with the ring full.
//! A cleanly dropped endpoint sets `closed` on its outgoing rings, so
//! peer readers see EOF at a frame boundary → `PeerClosed`, exactly
//! like a closed socket. A crashed process never sets `closed`; its
//! silence trips the heartbeat watchdog (`PeerLost`) instead, and a
//! hung-but-alive rank is caught by the receive deadline (`Timeout`)
//! — the same three detectors, same typed faults, as the socket
//! world.

use crate::collectives::{self, CollCounters, CollScratch, CollStats};
use crate::comm::{Comm, RecvPost, ReduceOp};
use crate::error::{CommError, CommErrorKind, CommResult};
use crate::fault::{FaultKind, SplitMix64};
use crate::frame::{read_frame, stage_frame, HEADER_LEN};
use crate::mailbox::{Mailbox, Message};
use crate::socket_world::{SocketConfig, COLLECTIVE_TAG_BIT, HEARTBEAT_TAG};
use hpgmxp_trace::{counter, histogram};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

// The only two syscalls std does not wrap. Values are the x86-64 /
// aarch64 Linux ABI constants (this transport is Linux-only — /dev/shm
// is the whole point).
extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
}

const PROT_READ: i32 = 0x1;
const PROT_WRITE: i32 = 0x2;
const MAP_SHARED: i32 = 0x01;

/// First u64 of the file once fully initialized ("HPGMXSH1").
const SHM_MAGIC: u64 = u64::from_le_bytes(*b"HPGMXSH1");

/// Bytes reserved for the file header.
const FILE_HEADER: usize = 4096;
/// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_SIZE: usize = 8;
const OFF_RING_BYTES: usize = 16;
const OFF_ATTACHED: usize = 64;

/// Bytes of one ring's header (head / tail / closed, one cache line
/// apart so producer and consumer never false-share).
const RING_HEADER: usize = 256;
const OFF_HEAD: usize = 0;
const OFF_TAIL: usize = 64;
const OFF_CLOSED: usize = 128;

/// Default data bytes per ring (`HPGMXP_SHM_RING_BYTES` overrides;
/// must be a power of two).
const DEFAULT_RING_BYTES: usize = 256 * 1024;

/// Buffers stocked per peer pool by [`ShmemComm::prewarm_pool`] —
/// the same in-flight window bound the socket transport uses.
const POOL_STOCK: usize = 8;

fn ring_bytes_from_env() -> usize {
    match std::env::var("HPGMXP_SHM_RING_BYTES") {
        Ok(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("HPGMXP_SHM_RING_BYTES is not a number: {v:?}"));
            assert!(
                n.is_power_of_two() && n >= 4096,
                "HPGMXP_SHM_RING_BYTES must be a power of two >= 4096, got {n}"
            );
            n
        }
        Err(_) => DEFAULT_RING_BYTES,
    }
}

fn connect_timeout() -> Duration {
    let secs = std::env::var("HPGMXP_CONNECT_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_secs(secs)
}

/// Spin-then-yield-then-sleep waiter for ring-full / ring-empty waits:
/// cheap when the peer answers in nanoseconds, polite to a 1-core box
/// when it does not.
struct Backoff {
    step: u32,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn wait(&mut self) {
        self.step = self.step.saturating_add(1);
        if self.step < 64 {
            std::hint::spin_loop();
        } else if self.step < 256 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// An mmap'd shared file. The pointer is valid for the struct's
/// lifetime; `Drop` unmaps. Concurrent access is coordinated entirely
/// through the atomics embedded in the mapping.
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is plain shared memory; all cross-thread /
// cross-process coordination goes through `AtomicU64` fields inside
// it, and raw byte ranges are only touched according to the SPSC ring
// protocol (producer writes [tail+ring .. head) exclusively, consumer
// reads [tail .. head) exclusively).
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    fn map(file: &File, len: usize) -> Mapping {
        // SAFETY: mapping a file we own for its full sized length.
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), len, PROT_READ | PROT_WRITE, MAP_SHARED, file.as_raw_fd(), 0)
        };
        assert!(
            !ptr.is_null() && ptr as isize != -1,
            "mmap of the {len}-byte shmem world file failed"
        );
        Mapping { ptr, len }
    }

    /// The `AtomicU64` embedded at `offset` (must be 8-aligned and in
    /// bounds).
    fn atomic(&self, offset: usize) -> &AtomicU64 {
        debug_assert!(offset.is_multiple_of(8) && offset + 8 <= self.len);
        // SAFETY: in-bounds, aligned, and the underlying memory is
        // only ever accessed atomically at this offset.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU64) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: unmapping exactly what `map` mapped.
        unsafe { munmap(self.ptr, self.len) };
    }
}

/// Geometry of the world file.
#[derive(Clone, Copy)]
struct Layout {
    size: usize,
    ring_bytes: usize,
}

impl Layout {
    fn stride(&self) -> usize {
        RING_HEADER + self.ring_bytes
    }

    fn total_len(&self) -> usize {
        FILE_HEADER + self.size * self.size * self.stride()
    }

    /// Byte offset of ring `(from, to)`'s header.
    fn ring(&self, from: usize, to: usize) -> usize {
        FILE_HEADER + (from * self.size + to) * self.stride()
    }
}

/// The write side of one outgoing ring plus its frame staging buffer.
/// One `write_all`-equivalent per frame, serialized by the mutex this
/// lives in (data senders and the heartbeat thread share it).
struct SendHalf {
    ring: usize,
    staging: Vec<u8>,
}

/// Copy `bytes` into the ring at `ring_off`, chunking through the ring
/// if the frame is larger than it, bounded by `timeout` per stall.
fn ring_write(
    map: &Mapping,
    layout: Layout,
    ring_off: usize,
    bytes: &[u8],
    timeout: Option<Duration>,
    peer: usize,
    tag: u64,
) -> CommResult<()> {
    let head_a = map.atomic(ring_off + OFF_HEAD);
    let tail_a = map.atomic(ring_off + OFF_TAIL);
    let data = ring_off + RING_HEADER;
    let rb = layout.ring_bytes;
    // Sole producer for this ring (serialized by the SendHalf mutex),
    // so a relaxed read of our own head is exact.
    let mut head = head_a.load(Ordering::Relaxed);
    let mut written = 0usize;
    let started = Instant::now();
    let mut backoff = Backoff::new();
    while written < bytes.len() {
        let tail = tail_a.load(Ordering::Acquire);
        let free = rb - (head - tail) as usize;
        if free == 0 {
            if let Some(t) = timeout {
                if started.elapsed() >= t {
                    return Err(CommError::new(
                        CommErrorKind::PeerLost,
                        Some(peer),
                        format!(
                            "send to rank {peer} stalled: ring full for {:.3}s (peer timeout \
                             {:.3}s) — consumer dead?",
                            started.elapsed().as_secs_f64(),
                            t.as_secs_f64()
                        ),
                    )
                    .with_tag(tag)
                    .with_elapsed(started.elapsed()));
                }
            }
            backoff.wait();
            continue;
        }
        backoff.reset();
        let pos = (head as usize) & (rb - 1);
        let n = free.min(bytes.len() - written).min(rb - pos);
        // SAFETY: [pos, pos+n) is free space the consumer will not
        // read until the head store below publishes it.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes[written..].as_ptr(), map.ptr.add(data + pos), n);
        }
        head += n as u64;
        head_a.store(head, Ordering::Release);
        written += n;
    }
    Ok(())
}

/// The read side of one incoming ring, exposed as [`std::io::Read`] so
/// [`crate::frame::read_frame`] layers over it unchanged. Blocks
/// (spin-then-yield) until bytes arrive; returns `Ok(0)` — clean EOF —
/// once the producer has set `closed` and the ring is drained.
struct RingConsumer {
    map: Arc<Mapping>,
    ring: usize,
    ring_bytes: usize,
    /// Local copy of the consumer counter (authoritative; the shared
    /// tail atomic is the producer-visible publication of it).
    tail: u64,
}

impl Read for RingConsumer {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let head_a = self.map.atomic(self.ring + OFF_HEAD);
        let tail_a = self.map.atomic(self.ring + OFF_TAIL);
        let closed_a = self.map.atomic(self.ring + OFF_CLOSED);
        let data = self.ring + RING_HEADER;
        let rb = self.ring_bytes;
        let mut backoff = Backoff::new();
        loop {
            let head = head_a.load(Ordering::Acquire);
            let avail = (head - self.tail) as usize;
            if avail > 0 {
                let pos = (self.tail as usize) & (rb - 1);
                let n = avail.min(buf.len()).min(rb - pos);
                // SAFETY: [pos, pos+n) is published data the producer
                // will not overwrite until the tail store below frees
                // it.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.map.ptr.add(data + pos),
                        buf.as_mut_ptr(),
                        n,
                    );
                }
                self.tail += n as u64;
                tail_a.store(self.tail, Ordering::Release);
                return Ok(n);
            }
            // Producer closes *after* its last head publication, so
            // re-reading head after observing `closed` cannot miss
            // final bytes.
            if closed_a.load(Ordering::Acquire) != 0 && head_a.load(Ordering::Acquire) == self.tail
            {
                return Ok(0);
            }
            backoff.wait();
        }
    }
}

/// Reusable collective state — same shape as the socket world's.
struct CollState {
    scratch: CollScratch,
    row: Vec<u64>,
    counts: Vec<u64>,
}

struct ShmemShared {
    rank: usize,
    size: usize,
    layout: Layout,
    /// `None` only in the trivial single-rank world.
    map: Option<Arc<Mapping>>,
    mailbox: Mailbox,
    /// Write halves indexed by peer rank (`None` at our own index).
    senders: Vec<Option<Mutex<SendHalf>>>,
    /// Per-peer recycled receive pools (own index serves self-sends).
    pools: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Point-to-point frames sent to / delivered from each peer
    /// (collective tags excluded) — the flush barrier's ledger.
    data_sent: Vec<AtomicU64>,
    data_delivered: Vec<AtomicU64>,
    collective_seq: AtomicU64,
    coll: Mutex<CollState>,
    counters: CollCounters,
    config: SocketConfig,
    epoch: Instant,
    last_heard: Vec<AtomicU64>,
    fault_ops: AtomicU64,
    fault_rng: Mutex<SplitMix64>,
}

impl ShmemShared {
    fn millis_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Sets `closed` on this endpoint's outgoing rings when the last user
/// clone drops — peers' readers then see EOF at a frame boundary, the
/// shmem equivalent of a closed socket. Reader threads deliberately do
/// *not* hold this, so an in-process world tears down as soon as the
/// test's endpoints go out of scope.
struct Closer {
    map: Option<Arc<Mapping>>,
    closed_offsets: Vec<usize>,
}

impl Drop for Closer {
    fn drop(&mut self) {
        if let Some(map) = &self.map {
            for &off in &self.closed_offsets {
                map.atomic(off).store(1, Ordering::Release);
            }
        }
    }
}

fn pool_take(pool: &Mutex<Vec<Vec<u8>>>, len: usize) -> Vec<u8> {
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    let best = pool
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= len)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i);
    match best {
        Some(pos) => pool.swap_remove(pos),
        None => pool.pop().unwrap_or_default(),
    }
}

fn pool_put(pool: &Mutex<Vec<Vec<u8>>>, buf: Vec<u8>) {
    pool.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
}

/// One rank's endpoint in a shmem world. Cheap to clone (shared
/// mapping); the process-global instance lives for the process.
#[derive(Clone)]
pub struct ShmemComm {
    shared: Arc<ShmemShared>,
    _closer: Arc<Closer>,
}

/// Factory for shared-memory mesh endpoints.
pub struct ShmemWorld;

impl ShmemWorld {
    /// Join (or, as rank 0, create) the `/dev/shm` world named
    /// `shm_id`, with fault knobs from the environment. Blocks until
    /// every rank is attached.
    pub fn connect(rank: usize, size: usize, shm_id: &str) -> ShmemComm {
        Self::connect_with_config(rank, size, shm_id, SocketConfig::from_env())
    }

    /// [`ShmemWorld::connect`] with explicit fault-detection knobs and
    /// injection plan — the chaos tests' entry point.
    pub fn connect_with_config(
        rank: usize,
        size: usize,
        shm_id: &str,
        config: SocketConfig,
    ) -> ShmemComm {
        Self::connect_custom(rank, size, shm_id, config, ring_bytes_from_env())
    }

    /// Full-control constructor (tests size rings down to force
    /// wrap-around and full-ring stalls).
    pub fn connect_custom(
        rank: usize,
        size: usize,
        shm_id: &str,
        config: SocketConfig,
        ring_bytes: usize,
    ) -> ShmemComm {
        assert!(size > 0 && rank < size, "rank {rank} outside world of {size}");
        assert!(ring_bytes.is_power_of_two(), "ring_bytes must be a power of two");
        let layout = Layout { size, ring_bytes };
        let deadline = Instant::now() + connect_timeout();
        let path = format!("/dev/shm/hpgmxp-{shm_id}");

        let map: Option<Arc<Mapping>> = if size > 1 {
            let map = if rank == 0 {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)
                    .unwrap_or_else(|e| {
                        panic!(
                            "rank 0 could not create the shmem world file {path}: {e} (stale \
                             file from a crashed run? each launch attempt needs a fresh \
                             HPGMXP_SHM_ID)"
                        )
                    });
                file.set_len(layout.total_len() as u64).expect("size the shmem world file");
                let map = Mapping::map(&file, layout.total_len());
                map.atomic(OFF_SIZE).store(size as u64, Ordering::Relaxed);
                map.atomic(OFF_RING_BYTES).store(ring_bytes as u64, Ordering::Relaxed);
                // Publish last: a scanner that sees the magic sees a
                // fully initialized header.
                map.atomic(OFF_MAGIC).store(SHM_MAGIC, Ordering::Release);
                map
            } else {
                let mut backoff = Backoff::new();
                loop {
                    if let Ok(file) = OpenOptions::new().read(true).write(true).open(&path) {
                        if file.metadata().map(|m| m.len()).unwrap_or(0)
                            == layout.total_len() as u64
                        {
                            let map = Mapping::map(&file, layout.total_len());
                            if map.atomic(OFF_MAGIC).load(Ordering::Acquire) == SHM_MAGIC {
                                assert_eq!(
                                    map.atomic(OFF_SIZE).load(Ordering::Relaxed),
                                    size as u64,
                                    "shmem world {shm_id} was created for a different rank count"
                                );
                                assert_eq!(
                                    map.atomic(OFF_RING_BYTES).load(Ordering::Relaxed),
                                    ring_bytes as u64,
                                    "shmem world {shm_id} was created with different ring size"
                                );
                                break map;
                            }
                        }
                    }
                    if Instant::now() >= deadline {
                        panic!(
                            "rank {rank} could not find an initialized shmem world at {path} \
                             within the connect timeout"
                        );
                    }
                    backoff.wait();
                }
            };
            let attached = map.atomic(OFF_ATTACHED);
            attached.fetch_add(1, Ordering::SeqCst);
            if rank == 0 {
                // Wait for the full world, then unlink: the mapping
                // stays valid for every attached process, and a crashed
                // job leaves nothing behind in /dev/shm.
                let mut backoff = Backoff::new();
                while attached.load(Ordering::SeqCst) < size as u64 {
                    if Instant::now() >= deadline {
                        let got = attached.load(Ordering::SeqCst);
                        let _ = std::fs::remove_file(&path);
                        panic!(
                            "only {got} of {size} ranks attached to shmem world {shm_id} within \
                             the connect timeout"
                        );
                    }
                    backoff.wait();
                }
                let _ = std::fs::remove_file(&path);
            }
            Some(Arc::new(map))
        } else {
            None
        };

        let fault_seed = config.faults.as_ref().map(|p| p.seed).unwrap_or(0);
        let shared = Arc::new(ShmemShared {
            rank,
            size,
            layout,
            map: map.clone(),
            mailbox: Mailbox::with_deadline(config.recv_deadline),
            senders: (0..size)
                .map(|peer| {
                    (peer != rank).then(|| {
                        Mutex::new(SendHalf { ring: layout.ring(rank, peer), staging: Vec::new() })
                    })
                })
                .collect(),
            pools: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            data_sent: (0..size).map(|_| AtomicU64::new(0)).collect(),
            data_delivered: (0..size).map(|_| AtomicU64::new(0)).collect(),
            collective_seq: AtomicU64::new(0),
            coll: Mutex::new(CollState {
                scratch: CollScratch::default(),
                row: Vec::new(),
                counts: Vec::new(),
            }),
            counters: CollCounters::default(),
            config,
            epoch: Instant::now(),
            last_heard: (0..size).map(|_| AtomicU64::new(0)).collect(),
            fault_ops: AtomicU64::new(0),
            fault_rng: Mutex::new(SplitMix64::for_rank(fault_seed, rank as u64)),
        });

        if let Some(map) = &map {
            for peer in 0..size {
                if peer == rank {
                    continue;
                }
                let consumer = RingConsumer {
                    map: Arc::clone(map),
                    ring: layout.ring(peer, rank),
                    ring_bytes,
                    tail: 0,
                };
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hpgmxp-shm-reader-{peer}"))
                    .spawn(move || reader_loop(shared, peer, consumer))
                    .expect("spawn shmem reader thread");
            }
            if shared.config.heartbeat.is_some() || shared.config.peer_timeout.is_some() {
                let weak = Arc::downgrade(&shared);
                std::thread::Builder::new()
                    .name(format!("hpgmxp-shm-heartbeat-{rank}"))
                    .spawn(move || heartbeat_loop(weak))
                    .expect("spawn shmem heartbeat thread");
            }
        }

        let closer = Closer {
            map,
            closed_offsets: (0..size)
                .filter(|&peer| peer != rank)
                .map(|peer| layout.ring(rank, peer) + OFF_CLOSED)
                .collect(),
        };
        ShmemComm { shared, _closer: Arc::new(closer) }
    }
}

/// Per-peer reader: decode frames from the incoming ring into the
/// shared mailbox until the producer closes it — the same loop shape,
/// pool discipline, and fault attribution as the socket reader.
fn reader_loop(shared: Arc<ShmemShared>, peer: usize, mut consumer: RingConsumer) {
    loop {
        match read_frame(&mut consumer, |len| pool_take(&shared.pools[peer], len)) {
            Ok(Some((header, data))) => {
                debug_assert_eq!(header.from as usize, peer, "frame from wrong rank");
                counter!("wire.frames_rx").inc();
                counter!("wire.bytes_rx").add((HEADER_LEN + data.len()) as u64);
                shared.last_heard[peer].store(shared.millis_since_epoch(), Ordering::SeqCst);
                if header.tag == HEARTBEAT_TAG {
                    pool_put(&shared.pools[peer], data);
                    continue;
                }
                if header.tag & COLLECTIVE_TAG_BIT == 0 {
                    shared.data_delivered[peer].fetch_add(1, Ordering::SeqCst);
                }
                shared.mailbox.push(Message { from: peer, tag: header.tag, data });
            }
            Ok(None) => {
                shared.mailbox.fail(
                    peer,
                    CommErrorKind::PeerClosed,
                    format!("connection to rank {peer} closed"),
                );
                return;
            }
            Err(e) => {
                let (kind, why) = if e.kind() == std::io::ErrorKind::InvalidData {
                    (
                        CommErrorKind::Corrupt,
                        format!("protocol error on connection to rank {peer}: {e}"),
                    )
                } else {
                    (CommErrorKind::PeerLost, format!("connection to rank {peer} lost: {e}"))
                };
                shared.mailbox.fail(peer, kind, why);
                return;
            }
        }
    }
}

/// Heartbeat emitter + silence watchdog — the socket loop adapted to
/// ring writes. Heartbeat sends are bounded by the heartbeat period
/// (a full ring must not wedge the watchdog) and failures are ignored:
/// silence is what the *peer's* watchdog detects.
fn heartbeat_loop(weak: Weak<ShmemShared>) {
    loop {
        let Some(shared) = weak.upgrade() else { return };
        if let Some(timeout) = shared.config.peer_timeout {
            let now = shared.millis_since_epoch();
            for (peer, heard) in shared.last_heard.iter().enumerate() {
                if peer == shared.rank || shared.senders[peer].is_none() {
                    continue;
                }
                let silent = now.saturating_sub(heard.load(Ordering::SeqCst));
                histogram!("wire.heartbeat_lag_ms").observe(silent);
                if silent > timeout.as_millis() as u64 {
                    shared.mailbox.fail(
                        peer,
                        CommErrorKind::PeerLost,
                        format!(
                            "no heartbeat from rank {peer} for {:.3}s (peer timeout {:.3}s)",
                            silent as f64 / 1e3,
                            timeout.as_secs_f64()
                        ),
                    );
                }
            }
        }
        let pause = shared
            .config
            .heartbeat
            .or(shared.config.peer_timeout)
            .unwrap_or(Duration::from_millis(500));
        if shared.config.heartbeat.is_some() {
            if let Some(map) = &shared.map {
                for half in shared.senders.iter().flatten() {
                    let mut half = half.lock().unwrap_or_else(|e| e.into_inner());
                    stage_frame(&mut half.staging, shared.rank, HEARTBEAT_TAG, &[]);
                    let SendHalf { ring, staging } = &*half;
                    let _ = ring_write(
                        map,
                        shared.layout,
                        *ring,
                        staging,
                        Some(pause),
                        usize::MAX,
                        HEARTBEAT_TAG,
                    );
                }
            }
        }
        drop(shared); // don't pin the mesh while sleeping
        std::thread::sleep(pause);
    }
}

impl ShmemComm {
    fn send_raw(&self, to: usize, tag: u64, bytes: &[u8]) {
        self.send_raw_checked(to, tag, bytes).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Frame and write into the peer's ring, or self-deliver — the
    /// seam where an armed fault plan injects wire faults, byte for
    /// byte the socket transport's interposer.
    fn send_raw_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        let s = &self.shared;
        assert!(to < s.size, "send to rank {to} in a world of {}", s.size);
        if to == s.rank {
            let mut data = pool_take(&s.pools[to], bytes.len());
            data.clear();
            data.extend_from_slice(bytes);
            s.mailbox.push(Message { from: to, tag, data });
            return Ok(());
        }

        let mut corrupt_flip = None;
        let mut duplicate = false;
        if tag & COLLECTIVE_TAG_BIT == 0 {
            if let Some(plan) = &s.config.faults {
                let n = s.fault_ops.fetch_add(1, Ordering::SeqCst);
                if let Some(event) = plan.event_at(s.rank, n) {
                    match event.kind {
                        FaultKind::CrashRank => {
                            eprintln!(
                                "rank {} crashing deliberately at exchange {n} (fault plan seed \
                                 {})",
                                s.rank, plan.seed
                            );
                            std::process::exit(7);
                        }
                        FaultKind::HangRank => {
                            eprintln!(
                                "rank {} hanging deliberately at exchange {n} for {:?} (fault \
                                 plan seed {})",
                                s.rank,
                                plan.hang_duration(),
                                plan.seed
                            );
                            std::thread::sleep(plan.hang_duration());
                        }
                    }
                }
                if plan.has_wire_faults() {
                    let (dropped, delayed, dup, corrupt, flip) = {
                        let mut rng = s.fault_rng.lock().unwrap_or_else(|e| e.into_inner());
                        (
                            rng.hit(plan.drop),
                            rng.hit(plan.delay),
                            rng.hit(plan.duplicate),
                            rng.hit(plan.corrupt),
                            rng.next_u64(),
                        )
                    };
                    if dropped {
                        return Ok(());
                    }
                    if delayed {
                        std::thread::sleep(plan.delay_duration());
                    }
                    duplicate = dup;
                    if corrupt && !bytes.is_empty() {
                        corrupt_flip = Some(flip);
                    }
                }
            }
        }

        let map = s.map.as_ref().expect("multi-rank world has a mapping");
        let mut half =
            s.senders[to].as_ref().expect("peer ring").lock().unwrap_or_else(|e| e.into_inner());
        stage_frame(&mut half.staging, s.rank, tag, bytes);
        if let Some(flip) = corrupt_flip {
            let i = HEADER_LEN + (flip as usize) % bytes.len();
            half.staging[i] ^= 1 << ((flip >> 32) & 7);
        }
        if tag & COLLECTIVE_TAG_BIT == 0 {
            s.data_sent[to].fetch_add(1 + duplicate as u64, Ordering::SeqCst);
        }
        counter!("wire.frames_tx").inc();
        counter!("wire.bytes_tx").add(half.staging.len() as u64);
        let SendHalf { ring, staging } = &*half;
        ring_write(map, s.layout, *ring, staging, s.config.peer_timeout, to, tag)?;
        if duplicate {
            ring_write(map, s.layout, *ring, staging, s.config.peer_timeout, to, tag)?;
        }
        Ok(())
    }

    /// Copy a matched message out and recycle its buffer into the
    /// sender's pool.
    fn deliver(&self, msg: Message, out: &mut [u8]) {
        assert_eq!(
            msg.data.len(),
            out.len(),
            "message length mismatch: rank {} got {} bytes from {} tag {}, posted {}",
            self.shared.rank,
            msg.data.len(),
            msg.from,
            msg.tag,
            out.len()
        );
        out.copy_from_slice(&msg.data);
        pool_put(&self.shared.pools[msg.from], msg.data);
    }

    fn collective_tag(&self) -> u64 {
        COLLECTIVE_TAG_BIT | self.shared.collective_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Grow the transport's recycled buffers so the steady state is
    /// allocation-free by construction — same discipline as the socket
    /// world. Call while no messages are in flight.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        self.shared.mailbox.reserve(2 * POOL_STOCK * self.shared.size);
        for pool in &self.shared.pools {
            let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
            for buf in pool.iter_mut() {
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
            }
            while pool.len() < POOL_STOCK {
                pool.push(Vec::with_capacity(min_capacity));
            }
        }
        for half in self.shared.senders.iter().flatten() {
            let mut half = half.lock().unwrap_or_else(|e| e.into_inner());
            let want = min_capacity + HEADER_LEN;
            if half.staging.capacity() < want {
                let len = half.staging.len();
                half.staging.reserve(want - len);
            }
        }
        let size = self.shared.size;
        let mut coll = self.shared.coll.lock().unwrap_or_else(|e| e.into_inner());
        coll.scratch.prewarm(size, min_capacity.div_ceil(8).max(size));
        if coll.row.capacity() < size {
            let len = coll.row.len();
            coll.row.reserve(size - len);
        }
        if coll.counts.capacity() < size * size {
            let len = coll.counts.len();
            coll.counts.reserve(size * size - len);
        }
    }

    /// Flush every in-flight message into mailboxes (a barrier), then
    /// discard anything still parked, recycling the buffers — run
    /// between SPMD closures on the reused process-global mesh.
    pub fn quiesce(&self) {
        self.barrier();
        for msg in self.shared.mailbox.take_where(|m| m.tag & COLLECTIVE_TAG_BIT == 0) {
            pool_put(&self.shared.pools[msg.from], msg.data);
        }
        self.barrier();
    }

    #[cfg(test)]
    /// Mark every outgoing ring closed so peers observe EOF — the
    /// in-process stand-in for a cleanly dying rank.
    fn close_all_rings(&self) {
        if let Some(map) = &self.shared.map {
            for peer in 0..self.shared.size {
                if peer != self.shared.rank {
                    let off = self.shared.layout.ring(self.shared.rank, peer) + OFF_CLOSED;
                    map.atomic(off).store(1, Ordering::Release);
                }
            }
        }
    }
}

impl Comm for ShmemComm {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        assert!(tag & COLLECTIVE_TAG_BIT == 0, "tag {tag:#x} uses the reserved collective bit");
        self.send_raw(to, tag, bytes);
    }

    fn send_from_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        assert!(tag & COLLECTIVE_TAG_BIT == 0, "tag {tag:#x} uses the reserved collective bit");
        self.send_raw_checked(to, tag, bytes)
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        let msg = self.shared.mailbox.recv_matching(from, tag);
        self.deliver(msg, out);
    }

    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.mailbox.recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self.shared.mailbox.try_recv_matching(from, tag) {
            Some(msg) => {
                self.deliver(msg, out);
                true
            }
            None => false,
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        if posts.iter().all(Option::is_none) {
            return None;
        }
        let (slot, msg) = self.shared.mailbox.wait_any_matching(posts);
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Some((slot, post))
    }

    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        if posts.iter().all(Option::is_none) {
            return Ok(None);
        }
        let (slot, msg) = self.shared.mailbox.wait_any_matching_checked(posts)?;
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Ok(Some((slot, post)))
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        self.allreduce_checked(vals, op).unwrap_or_else(|e| panic!("{e}"));
    }

    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        let mut coll = self.shared.coll.lock().unwrap_or_else(|e| e.into_inner());
        collectives::allreduce(self, &mut coll.scratch, vals, op)
    }

    fn barrier(&self) {
        self.barrier_checked().unwrap_or_else(|e| panic!("{e}"));
    }

    fn barrier_checked(&self) -> CommResult<()> {
        let s = &self.shared;
        if s.size == 1 {
            return Ok(());
        }
        // Same flush barrier as the socket world: allgather the
        // sent-count ledger, then wait for delivery to catch up.
        let mut coll = s.coll.lock().unwrap_or_else(|e| e.into_inner());
        let CollState { scratch, row, counts } = &mut *coll;
        row.clear();
        row.extend(s.data_sent.iter().map(|c| c.load(Ordering::SeqCst)));
        collectives::allgather_u64(self, scratch, row, counts)?;
        s.counters.count_barrier();
        let (size, me) = (s.size, s.rank);
        s.mailbox.wait_until_checked(|| {
            (0..size).all(|i| s.data_delivered[i].load(Ordering::SeqCst) >= counts[i * size + me])
        })?;
        Ok(())
    }

    fn coll_stats(&self) -> Option<CollStats> {
        Some(self.shared.counters.snapshot())
    }
}

impl collectives::CollEndpoint for ShmemComm {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn coll_send(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        self.send_raw_checked(to, tag, bytes)
    }

    fn coll_recv(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.mailbox.recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn next_coll_tag(&self) -> u64 {
        self.collective_tag()
    }

    fn counters(&self) -> &CollCounters {
        &self.shared.counters
    }
}

/// The process-global mesh, built once from `HPGMXP_RANK` /
/// `HPGMXP_RANKS` / `HPGMXP_SHM_ID` (the environment `hpgmxp-launch
/// --comm shmem` provides) and reused by every SPMD run in this
/// process.
pub fn global_from_env() -> &'static ShmemComm {
    static MESH: OnceLock<ShmemComm> = OnceLock::new();
    MESH.get_or_init(|| {
        let need = |name: &str| -> String {
            std::env::var(name).unwrap_or_else(|_| {
                panic!("{name} not set — shmem ranks must be started by hpgmxp-launch --comm shmem")
            })
        };
        let rank: usize = need("HPGMXP_RANK").parse().expect("HPGMXP_RANK is not a number");
        let size: usize = need("HPGMXP_RANKS").parse().expect("HPGMXP_RANKS is not a number");
        let shm_id = need("HPGMXP_SHM_ID");
        ShmemWorld::connect(rank, size, &shm_id)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};
    use crate::thread_world::run_threads;
    use std::sync::atomic::AtomicUsize;

    /// A process-unique shmem id per test world.
    fn fresh_id(tag: &str) -> String {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        format!("test-{}-{tag}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::SeqCst))
    }

    /// In-process shmem world: each rank is a thread with its own
    /// endpoint, but every byte still crosses the mmap'd rings.
    fn run_shmem_threads<T, F>(size: usize, tag: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ShmemComm) -> T + Sync,
    {
        let id = fresh_id(tag);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let (fr, id) = (&f, &id);
                    s.spawn(move || fr(ShmemWorld::connect(rank, size, id)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("a rank panicked")).collect()
        })
    }

    #[test]
    fn ping_pong_over_shmem() {
        let results = run_shmem_threads(2, "pingpong", |c| {
            if c.rank() == 0 {
                c.send_from(1, 7, &pack(&[1.5f64, -2.5]));
                let mut got = vec![0u8; 8];
                c.recv_into(1, 8, &mut got);
                let mut out = [0.0f64; 1];
                unpack(&got, &mut out);
                out[0]
            } else {
                let mut got = vec![0u8; 16];
                c.recv_into(0, 7, &mut got);
                let mut vals = [0.0f64; 2];
                unpack(&got, &mut vals);
                c.send_from(0, 8, &pack(&[vals[0] + vals[1]]));
                0.0
            }
        });
        assert_eq!(results[0], -1.0);
    }

    #[test]
    fn world_file_is_unlinked_after_attach() {
        let id = fresh_id("unlink");
        let path = format!("/dev/shm/hpgmxp-{id}");
        run_shmem_threads(2, "unlink-inner", |c| c.barrier());
        // (That world used its own id; create one with a known id to
        // check the path directly.)
        std::thread::scope(|s| {
            let h0 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect(0, 2, &id);
                    c.barrier();
                })
            };
            let h1 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect(1, 2, &id);
                    c.barrier();
                })
            };
            h0.join().unwrap();
            h1.join().unwrap();
        });
        assert!(
            !std::path::Path::new(&path).exists(),
            "rank 0 must unlink the world file once every rank is attached"
        );
    }

    #[test]
    fn allreduce_matches_thread_world_bitwise() {
        let inputs: Vec<Vec<f64>> =
            (0..4).map(|r| (0..5).map(|i| ((r * 31 + i) as f64).sin() * 1e3).collect()).collect();
        let thread: Vec<Vec<f64>> = run_threads(4, |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        let shmem: Vec<Vec<f64>> = run_shmem_threads(4, "bitwise", |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for (t, s) in thread.iter().zip(shmem.iter()) {
            let tb: Vec<u64> = t.iter().map(|x| x.to_bits()).collect();
            let sb: Vec<u64> = s.iter().map(|x| x.to_bits()).collect();
            assert_eq!(tb, sb);
        }
    }

    #[test]
    fn flush_barrier_makes_prebarrier_sends_pollable() {
        let results = run_shmem_threads(2, "flush", |c| {
            if c.rank() == 0 {
                c.send_from(1, 77, &[42]);
                c.barrier();
                true
            } else {
                c.barrier();
                let mut buf = [0u8; 1];
                let got = c.try_recv_into(0, 77, &mut buf);
                got && buf[0] == 42
            }
        });
        assert!(results.iter().all(|ok| *ok));
    }

    #[test]
    fn messages_larger_than_the_ring_stream_through() {
        // A 64 KiB message through 4 KiB rings: the producer chunks,
        // the consumer drains concurrently, the frame arrives intact.
        let id = fresh_id("bigmsg");
        let payload: Vec<u8> =
            (0..65536u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let expect = payload.clone();
        std::thread::scope(|s| {
            let h0 = {
                let (id, payload) = (id.clone(), payload.clone());
                s.spawn(move || {
                    let c = ShmemWorld::connect_custom(0, 2, &id, SocketConfig::default(), 4096);
                    c.send_from(1, 9, &payload);
                    c.barrier();
                })
            };
            let h1 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect_custom(1, 2, &id, SocketConfig::default(), 4096);
                    let mut got = vec![0u8; 65536];
                    c.recv_into(0, 9, &mut got);
                    c.barrier();
                    got
                })
            };
            h0.join().unwrap();
            assert_eq!(h1.join().unwrap(), expect);
        });
    }

    #[test]
    fn full_ring_with_no_consumer_fails_typed() {
        // A live peer's reader always drains its rings into the
        // mailbox, so ring-full only ever happens once the consumer
        // thread is gone (crashed process). Exercise the producer's
        // stall detector directly: a ring nobody drains must fail the
        // write with a typed PeerLost naming the peer, not hang.
        let path = format!("/dev/shm/hpgmxp-{}", fresh_id("fullring"));
        let layout = Layout { size: 2, ring_bytes: 4096 };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .expect("create test ring file");
        file.set_len(layout.total_len() as u64).expect("size test ring file");
        let map = Mapping::map(&file, layout.total_len());
        std::fs::remove_file(&path).expect("unlink test ring file");

        let payload = vec![7u8; 8192]; // twice the ring
        let started = Instant::now();
        let err = ring_write(
            &map,
            layout,
            layout.ring(0, 1),
            &payload,
            Some(Duration::from_millis(200)),
            1,
            5,
        )
        .unwrap_err();
        assert_eq!(err.kind, CommErrorKind::PeerLost);
        assert_eq!(err.peer, Some(1));
        assert_eq!(err.tag, Some(5));
        assert!(err.elapsed >= Duration::from_millis(200));
        assert!(started.elapsed() < Duration::from_secs(5), "stall detection must be bounded");
        assert!(err.detail.contains("ring full"), "{}", err.detail);
    }

    #[test]
    fn closed_rings_fail_peer_receives_with_peer_closed() {
        let id = fresh_id("closed");
        std::thread::scope(|s| {
            let h0 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect(0, 2, &id);
                    c.barrier();
                    let mut buf = [0u8; 1];
                    let err = c.recv_into_checked(1, 3, &mut buf).unwrap_err();
                    assert_eq!(err.kind, CommErrorKind::PeerClosed);
                    assert_eq!(err.peer, Some(1));
                    assert!(err.detail.contains("connection to rank 1 closed"), "{}", err.detail);
                })
            };
            let h1 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect(1, 2, &id);
                    c.barrier();
                    c.close_all_rings();
                })
            };
            h1.join().unwrap();
            h0.join().unwrap();
        });
    }

    #[test]
    fn silent_peer_trips_the_heartbeat_watchdog() {
        let id = fresh_id("watchdog");
        let watchdog = SocketConfig {
            heartbeat: Some(Duration::from_millis(25)),
            peer_timeout: Some(Duration::from_millis(150)),
            ..Default::default()
        };
        let silent = SocketConfig { heartbeat: None, peer_timeout: None, ..Default::default() };
        std::thread::scope(|s| {
            let h0 = {
                let (id, cfg) = (id.clone(), watchdog.clone());
                s.spawn(move || {
                    let c = ShmemWorld::connect_with_config(0, 2, &id, cfg);
                    let started = Instant::now();
                    let mut buf = [0u8; 1];
                    let err = c.recv_into_checked(1, 3, &mut buf).unwrap_err();
                    assert_eq!(err.kind, CommErrorKind::PeerLost);
                    assert_eq!(err.peer, Some(1));
                    assert!(err.detail.contains("no heartbeat from rank 1"), "{}", err.detail);
                    assert!(started.elapsed() < Duration::from_secs(10), "bounded detection");
                })
            };
            let h1 = {
                let (id, cfg) = (id.clone(), silent.clone());
                s.spawn(move || {
                    let _c = ShmemWorld::connect_with_config(1, 2, &id, cfg);
                    std::thread::sleep(Duration::from_millis(600));
                })
            };
            h1.join().unwrap();
            h0.join().unwrap();
        });
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        let results = run_shmem_threads(2, "pools", |c| {
            c.prewarm_pool(256);
            c.barrier();
            let peer = 1 - c.rank();
            let mut buf = [0u8; 256];
            for round in 0..50u64 {
                if c.rank() == 0 {
                    c.send_from(peer, round, &[7u8; 256]);
                    c.recv_into(peer, round, &mut buf);
                } else {
                    c.recv_into(peer, round, &mut buf);
                    c.send_from(peer, round, &buf);
                }
            }
            c.barrier();
            c.shared.pools.iter().map(|p| p.lock().unwrap().len()).sum::<usize>()
        });
        for pooled in results {
            assert!(pooled <= 2 * POOL_STOCK + 2, "pool grew without bound: {pooled} buffers");
        }
    }

    #[test]
    fn single_rank_shmem_world_is_trivial() {
        let c = ShmemWorld::connect(0, 1, &fresh_id("single"));
        assert_eq!((c.rank(), c.size()), (0, 1));
        assert_eq!(c.allreduce_scalar(5.0, ReduceOp::Sum), 5.0);
        c.barrier();
        c.send_from(0, 1, &[9]);
        let mut buf = [0u8; 1];
        c.recv_into(0, 1, &mut buf);
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn corrupted_frame_is_detected_and_attributed() {
        use crate::fault::FaultPlan;
        let id = fresh_id("corrupt");
        let corruptor = SocketConfig {
            faults: Some(FaultPlan { corrupt: Some(1.0), ..FaultPlan::clean(3) }),
            ..Default::default()
        };
        std::thread::scope(|s| {
            let h0 = {
                let (id, cfg) = (id.clone(), corruptor.clone());
                s.spawn(move || {
                    let c = ShmemWorld::connect_with_config(0, 2, &id, cfg);
                    c.send_from(1, 9, &[1, 2, 3, 4]);
                    // Hold the world open until the peer has observed
                    // the corrupt frame.
                    std::thread::sleep(Duration::from_millis(200));
                })
            };
            let h1 = {
                let id = id.clone();
                s.spawn(move || {
                    let c = ShmemWorld::connect(1, 2, &id);
                    let mut buf = [0u8; 4];
                    let err = c.recv_into_checked(0, 9, &mut buf).unwrap_err();
                    assert_eq!(err.kind, CommErrorKind::Corrupt);
                    assert_eq!(err.peer, Some(0));
                    assert!(err.detail.contains("corrupt frame from rank 0"), "{}", err.detail);
                })
            };
            h1.join().unwrap();
            h0.join().unwrap();
        });
    }
}
