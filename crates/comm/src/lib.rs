//! SPMD message-passing substrate — the MPI stand-in.
//!
//! The paper's benchmark runs one MPI rank per GPU compute die and
//! communicates through tagged point-to-point messages (halo exchange
//! with up to 26 neighbors) and global all-reduces (the inner products
//! of GMRES). This crate reproduces that execution model in-process:
//!
//! * [`comm`] — the [`Comm`] trait (v2) every solver is written
//!   against, with the exact operation set the benchmark needs: tagged
//!   nonblocking sends out of caller buffers (`send_from`), posted
//!   receives into caller buffers (`recv_into`), an any-neighbor
//!   completion wait (`wait_any`, the `MPI_Waitany` pattern),
//!   all-reduce, barrier — plus [`SelfComm`], the trivial single-rank
//!   world;
//! * [`thread_world`] — [`ThreadWorld`]: a world of `P` ranks backed by
//!   OS threads and condvar-signalled mailboxes with pooled message
//!   buffers (allocation-free at steady state), with MPI-like per-pair
//!   FIFO ordering;
//! * [`socket_world`] — [`SocketWorld`]: a world of `P` rank
//!   *processes* meshed over localhost TCP speaking the [`frame`]d
//!   wire protocol, with per-peer recycled receive pools and
//!   ledger-flushing collectives (started by the `hpgmxp-launch`
//!   binary);
//! * [`shmem_world`] — [`ShmemWorld`]: a world of `P` same-host rank
//!   *processes* exchanging the identical [`frame`]d protocol through
//!   per-pair mmap'd ring buffers in `/dev/shm` — no kernel socket on
//!   the data path;
//! * [`collectives`] — the shared collective engine: star and
//!   recursive-doubling allreduce/barrier/allgather written against
//!   checked point-to-point ops, bit-identical across algorithms and
//!   transports (`HPGMXP_COLL=star|rd`), with per-endpoint traffic
//!   counters;
//! * [`world`] — transport selection: [`run_spmd`] reads
//!   `HPGMXP_COMM=thread|socket|shmem` once and hands the closure a
//!   [`WorldComm`] over whichever backend it picked;
//! * [`halo`] — the halo exchange engine built on a geometric
//!   [`hpgmxp_geometry::HaloPlan`]: persistent per-neighbor staging
//!   buffers sized once from the plan, and the type-state
//!   **begin/finish** split ([`halo::ActiveExchange`]) used to overlap
//!   interior computation with communication (§3.2.3 of the paper);
//! * [`timeline`] — a lightweight event recorder that timestamps
//!   compute/pack/send/wait intervals and per-exchange
//!   [`timeline::OverlapRecord`]s, the source of the rocprof-style
//!   traces of figure 9 and the measured `overlap_efficiency()`.
//!
//! The substitution argument (see DESIGN.md): solvers written against
//! [`Comm`] perform the same message pattern, volume, and ordering as
//! the MPI original; only the transport (channels vs. NIC) differs.

pub mod collectives;
pub mod comm;
pub mod error;
pub mod fault;
pub mod frame;
pub mod halo;
pub mod launch;
mod mailbox;
pub mod shmem_world;
pub mod socket_world;
pub mod thread_world;
pub mod timeline;
pub mod world;

pub use collectives::{rd_rounds, set_algo_override, CollAlgo, CollStats};
pub use comm::{Comm, RecvPost, ReduceOp, SelfComm};
pub use error::{CommError, CommErrorKind, CommResult};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultyComm};
pub use halo::{ActiveExchange, HaloExchange};
pub use shmem_world::{ShmemComm, ShmemWorld};
pub use socket_world::{SocketComm, SocketWorld};
pub use thread_world::{run_threads, run_threads_fallible, ThreadComm, ThreadWorld};
pub use timeline::{OverlapRecord, Stream, Timeline, TimelineEvent};
pub use world::{run_spmd, socket_world_size, Transport, WorldComm};
