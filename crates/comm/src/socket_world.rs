//! Multi-process ranks over localhost TCP — the second `Comm` backend.
//!
//! Where [`crate::thread_world::ThreadWorld`] packs all ranks into one
//! address space, a [`SocketWorld`] rank is a whole OS process; the
//! mesh crosses real socket buffers, scheduler preemption, and process
//! death — the transport-level effects a thread world cannot surface.
//!
//! ## Mesh setup
//!
//! Every rank binds an ephemeral *data* listener, then meets the
//! others at a rendezvous port (`HPGMXP_PORT`): rank 0 listens there,
//! ranks 1..P connect (with retry, so start order is free) and
//! register `(rank, data_port)`; rank 0 answers each with the full
//! port table. The mesh itself is one TCP connection per rank pair —
//! the lower rank accepts, the higher connects and leads with its rank
//! id, so accepts can land in any order. All streams get
//! `TCP_NODELAY` (halo messages are latency-bound, not
//! throughput-bound).
//!
//! ## Data path
//!
//! Each connection has a reader thread that decodes [`crate::frame`]
//! frames into the rank's shared [`crate::mailbox::Mailbox`] — the
//! same tag-parking inbox the thread world uses, so FIFO-per-pair and
//! unexpected-message semantics are inherited rather than
//! re-implemented. Receive buffers come from a *per-peer recycled
//! pool* (refilled on delivery), sends stage header + payload into a
//! per-connection reusable buffer and issue one `write_all`; at steady
//! state neither direction allocates, preserving the zero-allocation
//! property the halo suite asserts. A reader that loses its peer
//! calls [`crate::mailbox::Mailbox::fail`] so blocked receives die
//! with "connection to rank R lost" instead of hanging.
//!
//! ## Collectives and the flush barrier
//!
//! Collectives travel over reserved tags (bit 63 set) with a sequence
//! number every rank advances in SPMD lockstep. `allreduce` gathers to
//! rank 0, reduces **in rank order** — bit-identical to the thread
//! world, which is what lets GMRES-IR histories replay across
//! transports — and broadcasts the result. `barrier` is a *flush*
//! barrier: each rank reports how many point-to-point messages it has
//! sent to every peer, rank 0 redistributes the per-receiver totals,
//! and each rank waits until its delivery counters reach them. That
//! gives the thread-world guarantee that a message sent before a
//! barrier is *receivable* after it (it sits in the mailbox, not in a
//! socket buffer) — the property the conformance suite's parking test
//! demands, and what isolates consecutive SPMD runs on a reused mesh.

use crate::comm::{reduce_into, Comm, RecvPost, ReduceOp};
use crate::frame::{read_frame, stage_frame, HEADER_LEN};
use crate::mailbox::{Mailbox, Message};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tag bit reserved for collective traffic (allreduce/barrier rounds).
/// User tags must leave it clear; the halo engine and every test tag
/// sit far below it.
pub const COLLECTIVE_TAG_BIT: u64 = 1 << 63;

/// Buffers stocked per peer pool by [`SocketComm::prewarm_pool`] —
/// sized to cover the deepest in-flight window a run-ahead peer can
/// create between two of this rank's receives.
const POOL_STOCK: usize = 8;

/// How long mesh setup may wait for peers (rendezvous connect, table
/// exchange, pairwise dial) before declaring the job stillborn.
fn connect_timeout() -> Duration {
    let secs = std::env::var("HPGMXP_CONNECT_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_secs(secs)
}

/// The write half of one peer connection: the stream plus the staging
/// buffer frames are assembled in (one `write_all` per frame, no
/// allocation at steady state).
struct SendHalf {
    stream: TcpStream,
    staging: Vec<u8>,
}

/// Reusable scratch for collectives — sized on first use, then stable.
struct Scratch {
    /// Outgoing collective payload (packed f64s or u64 counts).
    payload: Vec<u8>,
    /// Rank 0's reduction accumulator.
    acc: Vec<f64>,
    /// Decoded peer contribution during reduction.
    peer: Vec<f64>,
    /// Flush-barrier count matrix (rank 0: P×P flat; others: length P).
    counts: Vec<u64>,
}

struct SocketShared {
    rank: usize,
    size: usize,
    mailbox: Mailbox,
    /// Write halves, indexed by peer rank (`None` at our own index).
    senders: Vec<Option<Mutex<SendHalf>>>,
    /// Per-peer recycled receive pools (our own index serves
    /// self-sends). Reader threads draw from them, `recv_into`
    /// returns buffers after copying out.
    pools: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Point-to-point frames sent to / delivered from each peer
    /// (collective tags excluded) — the flush barrier's ledger.
    data_sent: Vec<AtomicU64>,
    data_delivered: Vec<AtomicU64>,
    /// Collective round number; advances identically on every rank
    /// because collectives are called in SPMD program order.
    collective_seq: AtomicU64,
    scratch: Mutex<Scratch>,
}

/// Best-fit take from a peer pool, mirroring the thread world's
/// policy: the smallest sufficient buffer serves the request so a
/// small frame never claims the pool's one large buffer.
fn pool_take(pool: &Mutex<Vec<Vec<u8>>>, len: usize) -> Vec<u8> {
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    let best = pool
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= len)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i);
    match best {
        Some(pos) => pool.swap_remove(pos),
        None => pool.pop().unwrap_or_default(),
    }
}

fn pool_put(pool: &Mutex<Vec<Vec<u8>>>, buf: Vec<u8>) {
    pool.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
}

/// One rank's endpoint in a socket world. Cheap to clone (shared
/// mesh); the process-global instance lives for the process.
#[derive(Clone)]
pub struct SocketComm {
    shared: Arc<SocketShared>,
}

/// Factory for socket-mesh endpoints.
pub struct SocketWorld;

/// Decode u64 little-endian counts from a byte payload into `out`.
fn decode_counts(bytes: &[u8], out: &mut Vec<u64>) {
    assert_eq!(bytes.len() % 8, 0);
    out.clear();
    out.extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
}

/// Decode f64 little-endian values from a byte payload into `out`.
fn decode_f64s(bytes: &[u8], out: &mut Vec<f64>) {
    assert_eq!(bytes.len() % 8, 0);
    out.clear();
    out.extend(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())));
}

fn connect_with_retry(port: u16, what: &str) -> TcpStream {
    let deadline = Instant::now() + connect_timeout();
    loop {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("could not reach {what} on port {port} within the connect timeout: {e}");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Accept one connection before `deadline`, polling non-blockingly so
/// a missing peer fails loudly instead of hanging the listener forever.
fn accept_with_deadline(listener: &TcpListener, deadline: Instant, what: &str) -> TcpStream {
    listener.set_nonblocking(true).expect("listener nonblocking");
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).expect("stream blocking");
                return s;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    panic!("timed out waiting for {what}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("accept failed while waiting for {what}: {e}"),
        }
    }
}

impl SocketWorld {
    /// Join (or, as rank 0, host) the mesh of `size` ranks meeting at
    /// rendezvous `port`. Blocks until the full mesh is connected.
    pub fn connect(rank: usize, size: usize, port: u16) -> SocketComm {
        assert!(size > 0 && rank < size, "rank {rank} outside world of {size}");
        assert!(size <= u32::MAX as usize);
        let deadline = Instant::now() + connect_timeout();

        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        if size > 1 {
            // Bind the data listener before rendezvous so every port in
            // the table is accepting by the time anyone dials it.
            let data_listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind data listener");
            let data_port = data_listener.local_addr().expect("data listener addr").port();

            let table: Vec<u16> = if rank == 0 {
                let rendezvous = TcpListener::bind(("127.0.0.1", port))
                    .unwrap_or_else(|e| panic!("bind rendezvous port {port}: {e}"));
                let mut regs: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
                let mut ports = vec![0u16; size];
                ports[0] = data_port;
                for _ in 1..size {
                    let mut s = accept_with_deadline(&rendezvous, deadline, "rank registrations");
                    let mut reg = [0u8; 8];
                    s.read_exact(&mut reg).expect("read registration");
                    let r = u32::from_le_bytes([reg[0], reg[1], reg[2], reg[3]]) as usize;
                    let p = u32::from_le_bytes([reg[4], reg[5], reg[6], reg[7]]);
                    assert!(r > 0 && r < size, "bogus registration from rank {r}");
                    assert!(regs[r].is_none(), "rank {r} registered twice");
                    ports[r] = p as u16;
                    regs[r] = Some(s);
                }
                let mut msg = Vec::with_capacity(size * 4);
                for p in &ports {
                    msg.extend_from_slice(&(*p as u32).to_le_bytes());
                }
                for s in regs.iter_mut().flatten() {
                    s.write_all(&msg).expect("send port table");
                }
                ports
            } else {
                let mut s = connect_with_retry(port, "the rank-0 rendezvous");
                let mut reg = [0u8; 8];
                reg[0..4].copy_from_slice(&(rank as u32).to_le_bytes());
                reg[4..8].copy_from_slice(&(data_port as u32).to_le_bytes());
                s.write_all(&reg).expect("send registration");
                let mut table = vec![0u8; size * 4];
                s.read_exact(&mut table).expect("read port table");
                table
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as u16)
                    .collect()
            };

            // Pairwise mesh: dial every lower rank (leading with our
            // id), accept every higher one. Dials complete without the
            // peer accepting (listener backlog), so the two loops
            // cannot deadlock.
            for peer in 0..rank {
                let mut s = connect_with_retry(table[peer], "a peer data listener");
                s.write_all(&(rank as u32).to_le_bytes()).expect("send rank id");
                streams[peer] = Some(s);
            }
            for _ in rank + 1..size {
                let mut s = accept_with_deadline(&data_listener, deadline, "peer connections");
                let mut id = [0u8; 4];
                s.read_exact(&mut id).expect("read peer rank id");
                let peer = u32::from_le_bytes(id) as usize;
                assert!(peer > rank && peer < size, "unexpected peer {peer} dialed rank {rank}");
                assert!(streams[peer].is_none(), "peer {peer} connected twice");
                streams[peer] = Some(s);
            }
        }

        let shared = Arc::new(SocketShared {
            rank,
            size,
            mailbox: Mailbox::new(),
            senders: streams
                .iter()
                .map(|s| {
                    s.as_ref().map(|s| {
                        s.set_nodelay(true).expect("TCP_NODELAY");
                        Mutex::new(SendHalf {
                            stream: s.try_clone().expect("clone send half"),
                            staging: Vec::new(),
                        })
                    })
                })
                .collect(),
            pools: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            data_sent: (0..size).map(|_| AtomicU64::new(0)).collect(),
            data_delivered: (0..size).map(|_| AtomicU64::new(0)).collect(),
            collective_seq: AtomicU64::new(0),
            scratch: Mutex::new(Scratch {
                payload: Vec::new(),
                acc: Vec::new(),
                peer: Vec::new(),
                counts: Vec::new(),
            }),
        });

        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("hpgmxp-reader-{peer}"))
                .spawn(move || reader_loop(shared, peer, stream))
                .expect("spawn reader thread");
        }

        SocketComm { shared }
    }
}

/// Per-connection reader: decode frames into the shared mailbox until
/// the peer goes away. Buffers come from the peer's recycled pool, so
/// a steady-state delivery allocates nothing.
fn reader_loop(shared: Arc<SocketShared>, peer: usize, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream, |len| pool_take(&shared.pools[peer], len)) {
            Ok(Some((header, data))) => {
                debug_assert_eq!(header.from as usize, peer, "frame from wrong rank");
                // Count before pushing: the mailbox push is what wakes
                // a flush-barrier waiter, which then re-reads counters.
                if header.tag & COLLECTIVE_TAG_BIT == 0 {
                    shared.data_delivered[peer].fetch_add(1, Ordering::SeqCst);
                }
                shared.mailbox.push(Message { from: peer, tag: header.tag, data });
            }
            Ok(None) => {
                shared.mailbox.fail(peer, format!("connection to rank {peer} closed"));
                return;
            }
            Err(e) => {
                shared.mailbox.fail(peer, format!("connection to rank {peer} lost: {e}"));
                return;
            }
        }
    }
}

impl SocketComm {
    /// Frame and send on the peer connection, or self-deliver. Used by
    /// both the public `send_from` (data tags, counted) and the
    /// collectives (reserved tags, uncounted).
    fn send_raw(&self, to: usize, tag: u64, bytes: &[u8]) {
        let s = &self.shared;
        assert!(to < s.size, "send to rank {to} in a world of {}", s.size);
        if to == s.rank {
            // Loopback never touches the wire (or the flush ledger —
            // it is delivered before this call returns).
            let mut data = pool_take(&s.pools[to], bytes.len());
            data.clear();
            data.extend_from_slice(bytes);
            s.mailbox.push(Message { from: to, tag, data });
            return;
        }
        let mut half = s.senders[to]
            .as_ref()
            .expect("peer connection")
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        stage_frame(&mut half.staging, s.rank, tag, bytes);
        if tag & COLLECTIVE_TAG_BIT == 0 {
            s.data_sent[to].fetch_add(1, Ordering::SeqCst);
        }
        let SendHalf { stream, staging } = &mut *half;
        stream.write_all(staging).unwrap_or_else(|e| panic!("send to rank {to} failed: {e}"));
    }

    /// Copy a matched message out and recycle its buffer into the
    /// sender's pool.
    fn deliver(&self, msg: Message, out: &mut [u8]) {
        assert_eq!(
            msg.data.len(),
            out.len(),
            "message length mismatch: rank {} got {} bytes from {} tag {}, posted {}",
            self.shared.rank,
            msg.data.len(),
            msg.from,
            msg.tag,
            out.len()
        );
        out.copy_from_slice(&msg.data);
        pool_put(&self.shared.pools[msg.from], msg.data);
    }

    /// Next reserved collective tag; identical on every rank because
    /// collectives execute in SPMD program order.
    fn collective_tag(&self) -> u64 {
        COLLECTIVE_TAG_BIT | self.shared.collective_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Grow the transport's recycled buffers so the steady state is
    /// allocation-free by construction rather than by high-water mark:
    /// every per-peer pool is stocked with buffers of at least
    /// `min_capacity`, and each connection's staging buffer can hold a
    /// full frame of that size. Call while no messages are in flight.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        // The mailbox deque must not grow mid-measurement either: a
        // parking burst (every peer one full pool ahead, plus
        // collective traffic) is bounded by the pool stock.
        self.shared.mailbox.reserve(2 * POOL_STOCK * self.shared.size);
        for pool in &self.shared.pools {
            let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
            for buf in pool.iter_mut() {
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
            }
            // A peer can run a couple of exchange rounds ahead of its
            // receiver, with several frames in flight per round; stock
            // enough that the worst observed in-flight window never
            // forces the reader to allocate.
            while pool.len() < POOL_STOCK {
                pool.push(Vec::with_capacity(min_capacity));
            }
        }
        for half in self.shared.senders.iter().flatten() {
            let mut half = half.lock().unwrap_or_else(|e| e.into_inner());
            let want = min_capacity + HEADER_LEN;
            if half.staging.capacity() < want {
                let len = half.staging.len();
                half.staging.reserve(want - len);
            }
        }
    }

    /// Flush every in-flight message into mailboxes (a barrier), then
    /// discard anything still parked, recycling the buffers. Run
    /// between SPMD closures on the reused process-global mesh so one
    /// run's unconsumed messages cannot leak into the next.
    pub fn quiesce(&self) {
        self.barrier();
        // Drain only user data: a fast peer may already have parked its
        // *next* collective here, and swallowing it would deadlock that
        // collective on this rank.
        for msg in self.shared.mailbox.take_where(|m| m.tag & COLLECTIVE_TAG_BIT == 0) {
            pool_put(&self.shared.pools[msg.from], msg.data);
        }
        // Hold everyone until every rank has drained: a peer released
        // from the first barrier would otherwise start the *next* run's
        // sends, and a slow rank's drain could swallow them.
        self.barrier();
    }

    #[cfg(test)]
    /// Tear down this rank's side of every connection so peers observe
    /// EOF — the in-process stand-in for a dying rank.
    fn close_all_connections(&self) {
        for half in self.shared.senders.iter().flatten() {
            let half = half.lock().unwrap_or_else(|e| e.into_inner());
            let _ = half.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Comm for SocketComm {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        assert!(tag & COLLECTIVE_TAG_BIT == 0, "tag {tag:#x} uses the reserved collective bit");
        self.send_raw(to, tag, bytes);
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        let msg = self.shared.mailbox.recv_matching(from, tag);
        self.deliver(msg, out);
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self.shared.mailbox.try_recv_matching(from, tag) {
            Some(msg) => {
                self.deliver(msg, out);
                true
            }
            None => false,
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        if posts.iter().all(Option::is_none) {
            return None;
        }
        let (slot, msg) = self.shared.mailbox.wait_any_matching(posts);
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Some((slot, post))
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        let s = &self.shared;
        if s.size == 1 {
            return;
        }
        let tag = self.collective_tag();
        let mut scratch = s.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let Scratch { payload, acc, peer, .. } = &mut *scratch;
        if s.rank == 0 {
            // Reduce in rank order 0..P — the exact order the thread
            // world's leader uses, so results are bit-identical across
            // transports.
            acc.clear();
            acc.extend_from_slice(vals);
            for r in 1..s.size {
                let msg = s.mailbox.recv_matching(r, tag);
                assert_eq!(msg.data.len(), vals.len() * 8, "allreduce length skew at rank {r}");
                decode_f64s(&msg.data, peer);
                reduce_into(op, acc, peer);
                pool_put(&s.pools[r], msg.data);
            }
            vals.copy_from_slice(acc);
            payload.clear();
            for v in vals.iter() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            for r in 1..s.size {
                self.send_raw(r, tag, payload);
            }
        } else {
            payload.clear();
            for v in vals.iter() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            self.send_raw(0, tag, payload);
            let msg = s.mailbox.recv_matching(0, tag);
            assert_eq!(msg.data.len(), vals.len() * 8, "allreduce result length skew");
            for (v, c) in vals.iter_mut().zip(msg.data.chunks_exact(8)) {
                *v = f64::from_le_bytes(c.try_into().unwrap());
            }
            pool_put(&s.pools[0], msg.data);
        }
    }

    fn barrier(&self) {
        let s = &self.shared;
        if s.size == 1 {
            return;
        }
        let tag = self.collective_tag();
        let mut scratch = s.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let Scratch { payload, counts, .. } = &mut *scratch;
        if s.rank == 0 {
            // Gather every rank's cumulative sent-counts, row i holding
            // what rank i has sent to each receiver.
            counts.clear();
            counts.resize(s.size * s.size, 0);
            for (c, sent) in counts.iter_mut().zip(&s.data_sent) {
                *c = sent.load(Ordering::SeqCst);
            }
            for i in 1..s.size {
                let msg = s.mailbox.recv_matching(i, tag);
                assert_eq!(msg.data.len(), s.size * 8, "barrier snapshot length skew");
                for (j, c) in msg.data.chunks_exact(8).enumerate() {
                    counts[i * s.size + j] = u64::from_le_bytes(c.try_into().unwrap());
                }
                pool_put(&s.pools[i], msg.data);
            }
            // Release each rank with its expected-delivery column.
            for r in 1..s.size {
                payload.clear();
                for i in 0..s.size {
                    payload.extend_from_slice(&counts[i * s.size + r].to_le_bytes());
                }
                self.send_raw(r, tag, payload);
            }
            let size = s.size;
            s.mailbox.wait_until(|| {
                (0..size).all(|i| s.data_delivered[i].load(Ordering::SeqCst) >= counts[i * size])
            });
        } else {
            payload.clear();
            for j in 0..s.size {
                payload.extend_from_slice(&s.data_sent[j].load(Ordering::SeqCst).to_le_bytes());
            }
            self.send_raw(0, tag, payload);
            let msg = s.mailbox.recv_matching(0, tag);
            assert_eq!(msg.data.len(), s.size * 8, "barrier release length skew");
            decode_counts(&msg.data, counts);
            pool_put(&s.pools[0], msg.data);
            let size = s.size;
            s.mailbox.wait_until(|| {
                (0..size).all(|i| s.data_delivered[i].load(Ordering::SeqCst) >= counts[i])
            });
        }
    }
}

/// The process-global mesh, built once from `HPGMXP_RANK` /
/// `HPGMXP_RANKS` / `HPGMXP_PORT` (the environment `hpgmxp-launch`
/// provides) and reused by every SPMD run in this process. Lives for
/// the process; the OS closes the sockets at exit.
pub fn global_from_env() -> &'static SocketComm {
    static MESH: OnceLock<SocketComm> = OnceLock::new();
    MESH.get_or_init(|| {
        let need = |name: &str| -> usize {
            std::env::var(name)
                .unwrap_or_else(|_| {
                    panic!("{name} not set — socket ranks must be started by hpgmxp-launch")
                })
                .parse()
                .unwrap_or_else(|_| panic!("{name} is not a number"))
        };
        let rank = need("HPGMXP_RANK");
        let size = need("HPGMXP_RANKS");
        let port = need("HPGMXP_PORT") as u16;
        SocketWorld::connect(rank, size, port)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};
    use crate::thread_world::run_threads;

    /// Pick a port that was just free (bind :0, read it back, release).
    /// The tiny reuse window is acceptable in a single test process.
    fn free_port() -> u16 {
        TcpListener::bind(("127.0.0.1", 0)).unwrap().local_addr().unwrap().port()
    }

    /// In-process socket world: each rank is a thread with its own
    /// endpoint, but every byte still crosses real TCP connections.
    fn run_socket_threads<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(SocketComm) -> T + Sync,
    {
        let port = free_port();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let fr = &f;
                    s.spawn(move || fr(SocketWorld::connect(rank, size, port)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("a rank panicked")).collect()
        })
    }

    #[test]
    fn ping_pong_over_tcp() {
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 7, &pack(&[1.5f64, -2.5]));
                let mut got = vec![0u8; 8];
                c.recv_into(1, 8, &mut got);
                let mut out = [0.0f64; 1];
                unpack(&got, &mut out);
                out[0]
            } else {
                let mut got = vec![0u8; 16];
                c.recv_into(0, 7, &mut got);
                let mut vals = [0.0f64; 2];
                unpack(&got, &mut vals);
                c.send_from(0, 8, &pack(&[vals[0] + vals[1]]));
                0.0
            }
        });
        assert_eq!(results[0], -1.0);
    }

    #[test]
    fn allreduce_matches_thread_world_bitwise() {
        // Same inputs through both transports must reduce to the same
        // bits — the property that lets GMRES-IR histories replay
        // across backends.
        let inputs: Vec<Vec<f64>> =
            (0..4).map(|r| (0..5).map(|i| ((r * 31 + i) as f64).sin() * 1e3).collect()).collect();
        let thread: Vec<Vec<f64>> = run_threads(4, |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        let socket: Vec<Vec<f64>> = run_socket_threads(4, |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for (t, s) in thread.iter().zip(socket.iter()) {
            let tb: Vec<u64> = t.iter().map(|x| x.to_bits()).collect();
            let sb: Vec<u64> = s.iter().map(|x| x.to_bits()).collect();
            assert_eq!(tb, sb);
        }
    }

    #[test]
    fn flush_barrier_makes_prebarrier_sends_pollable() {
        // The conformance suite's parking property: a message sent
        // before a barrier must be receivable by try_recv after it,
        // even though it crossed a real socket.
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 77, &[42]);
                c.barrier();
                true
            } else {
                c.barrier();
                let mut buf = [0u8; 1];
                let got = c.try_recv_into(0, 77, &mut buf);
                got && buf[0] == 42
            }
        });
        assert!(results.iter().all(|ok| *ok));
    }

    #[test]
    fn repeated_collectives_stay_in_lockstep() {
        let results = run_socket_threads(3, |c| {
            let mut acc = 0.0;
            for i in 0..25 {
                acc = c.allreduce_scalar(acc + i as f64 + c.rank() as f64, ReduceOp::Sum);
                if i % 5 == 0 {
                    c.barrier();
                }
            }
            acc
        });
        for w in results.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }

    #[test]
    fn wait_any_completes_in_arrival_order_over_tcp() {
        let results = run_socket_threads(3, |c| {
            if c.rank() == 2 {
                let mut b0 = [0u8; 1];
                let mut b1 = [0u8; 1];
                // Rank 1's send is flushed (via the barrier) before
                // rank 0 even sends, so slot 1 completes first.
                c.barrier();
                let mut posts =
                    [Some(RecvPost::new(0, 9, &mut b0)), Some(RecvPost::new(1, 9, &mut b1))];
                let (first, _) = c.wait_any(&mut posts).expect("two posts live");
                let (second, _) = c.wait_any(&mut posts).expect("one post live");
                assert!(c.wait_any(&mut posts).is_none());
                vec![first, second]
            } else if c.rank() == 1 {
                c.send_from(2, 9, &[11]);
                c.barrier();
                vec![]
            } else {
                c.barrier();
                c.send_from(2, 9, &[10]);
                vec![]
            }
        });
        assert_eq!(results[2], vec![1, 0]);
    }

    #[test]
    fn quiesce_recycles_unconsumed_messages() {
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 5, &[1, 2, 3]);
            }
            c.quiesce();
            // The unconsumed message is gone; its buffer is pooled.
            let mut buf = [0u8; 3];
            assert!(!c.try_recv_into(0, 5, &mut buf), "quiesce drained the mailbox");
            c.barrier();
            true
        });
        assert!(results.iter().all(|ok| *ok));
    }

    #[test]
    fn dead_peer_fails_receives_loudly() {
        let port = free_port();
        let rank0 = std::thread::spawn(move || {
            let c = SocketWorld::connect(0, 2, port);
            c.barrier();
            // Peer closes after the barrier; this receive must panic
            // with a diagnostic, not hang.
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut buf = [0u8; 1];
                c.recv_into(1, 3, &mut buf);
            }))
            .expect_err("receive from a dead peer must fail");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("connection to rank 1"), "diagnostic names the peer: {msg}");
        });
        let rank1 = std::thread::spawn(move || {
            let c = SocketWorld::connect(1, 2, port);
            c.barrier();
            c.close_all_connections();
        });
        rank1.join().unwrap();
        rank0.join().unwrap();
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        // After prewarm, repeated same-size traffic keeps pools at a
        // stable population — buffers cycle instead of accumulating.
        let results = run_socket_threads(2, |c| {
            c.prewarm_pool(256);
            c.barrier();
            let peer = 1 - c.rank();
            let mut buf = [0u8; 256];
            for round in 0..50u64 {
                if c.rank() == 0 {
                    c.send_from(peer, round, &[7u8; 256]);
                    c.recv_into(peer, round, &mut buf);
                } else {
                    c.recv_into(peer, round, &mut buf);
                    c.send_from(peer, round, &buf);
                }
            }
            c.barrier();
            c.shared.pools.iter().map(|p| p.lock().unwrap().len()).sum::<usize>()
        });
        for pooled in results {
            assert!(pooled <= 2 * POOL_STOCK + 2, "pool grew without bound: {pooled} buffers");
        }
    }

    #[test]
    fn single_rank_socket_world_is_trivial() {
        let c = SocketWorld::connect(0, 1, 0);
        assert_eq!((c.rank(), c.size()), (0, 1));
        assert_eq!(c.allreduce_scalar(5.0, ReduceOp::Sum), 5.0);
        c.barrier();
        // Loopback send/recv works without any connection.
        c.send_from(0, 1, &[9]);
        let mut buf = [0u8; 1];
        c.recv_into(0, 1, &mut buf);
        assert_eq!(buf[0], 9);
    }
}
