//! Multi-process ranks over localhost TCP — the second `Comm` backend.
//!
//! Where [`crate::thread_world::ThreadWorld`] packs all ranks into one
//! address space, a [`SocketWorld`] rank is a whole OS process; the
//! mesh crosses real socket buffers, scheduler preemption, and process
//! death — the transport-level effects a thread world cannot surface.
//!
//! ## Mesh setup
//!
//! Every rank binds an ephemeral *data* listener, then meets the
//! others at a rendezvous port (`HPGMXP_PORT`): rank 0 listens there,
//! ranks 1..P connect (with retry, so start order is free) and
//! register `(rank, data_port)`; rank 0 answers each with the full
//! port table. The mesh itself is one TCP connection per rank pair —
//! the lower rank accepts, the higher connects and leads with its rank
//! id, so accepts can land in any order. All streams get
//! `TCP_NODELAY` (halo messages are latency-bound, not
//! throughput-bound).
//!
//! ## Data path
//!
//! Each connection has a reader thread that decodes [`crate::frame`]
//! frames into the rank's shared [`crate::mailbox::Mailbox`] — the
//! same tag-parking inbox the thread world uses, so FIFO-per-pair and
//! unexpected-message semantics are inherited rather than
//! re-implemented. Receive buffers come from a *per-peer recycled
//! pool* (refilled on delivery), sends stage header + payload into a
//! per-connection reusable buffer and issue one `write_all`; at steady
//! state neither direction allocates, preserving the zero-allocation
//! property the halo suite asserts. A reader that loses its peer
//! calls [`crate::mailbox::Mailbox::fail`] so blocked receives die
//! with "connection to rank R lost" instead of hanging.
//!
//! ## Collectives and the flush barrier
//!
//! Collectives travel over reserved tags (bit 63 set) with a sequence
//! number every rank advances in SPMD lockstep, and run in the shared
//! [`crate::collectives`] engine (star or recursive-doubling per
//! `HPGMXP_COLL`) — every rank folds contributions **in rank order**,
//! bit-identical to the thread world, which is what lets GMRES-IR
//! histories replay across transports. `barrier` is a *flush* barrier:
//! the engine allgathers every rank's cumulative sent-count row (the
//! P×P ledger matrix), then each rank waits until its delivery
//! counters reach its column. That gives the thread-world guarantee
//! that a message sent before a barrier is *receivable* after it (it
//! sits in the mailbox, not in a socket buffer) — the property the
//! conformance suite's parking test demands, and what isolates
//! consecutive SPMD runs on a reused mesh.
//!
//! ## Fault detection and injection
//!
//! Failures are *detected within bounded time and attributed to a
//! rank* instead of hanging the job ([`SocketConfig`] tunes the knobs,
//! all env-overridable):
//!
//! * a dead peer's TCP EOF → `PeerClosed` fault on its mailbox entry;
//! * an I/O or framing error (CRC mismatch in [`crate::frame`]) →
//!   `PeerLost` / `Corrupt`, naming the rank the frame claimed;
//! * every connected rank emits **heartbeat frames** on a reserved tag;
//!   a watchdog marks a peer `PeerLost` when nothing (data or
//!   heartbeat) has arrived from it within the peer timeout — the
//!   detector for a wedged connection;
//! * an optional **receive deadline** bounds every blocking receive
//!   and barrier wait with a typed `Timeout` — the detector for a peer
//!   that is alive (still heartbeating) but hung.
//!
//! A [`crate::fault::FaultPlan`] (from `HPGMXP_FAULT_PLAN`) arms a
//! frame-level interposer on the send path: seeded drop / delay /
//! duplicate / corrupt on outgoing *data* frames (corruption flips a
//! byte after the CRC is computed, so the receiver must catch it) and
//! scripted crash/hang events keyed on the outgoing-data-frame index.
//! Reordering is a `Comm`-level fault (see [`crate::fault::FaultyComm`]);
//! frame order within one TCP stream is the protocol's own invariant.

use crate::collectives::{self, CollCounters, CollScratch, CollStats};
use crate::comm::{Comm, RecvPost, ReduceOp};
use crate::error::{CommError, CommErrorKind, CommResult};
use crate::fault::{FaultKind, FaultPlan, SplitMix64};
use crate::frame::{read_frame, stage_frame, HEADER_LEN};
use crate::mailbox::{Mailbox, Message};
use hpgmxp_trace::{counter, histogram};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Tag bit reserved for collective traffic (allreduce/barrier rounds).
/// User tags must leave it clear; the halo engine and every test tag
/// sit far below it.
pub const COLLECTIVE_TAG_BIT: u64 = 1 << 63;

/// Reserved tag carrying heartbeat frames (empty payload). Lives in
/// the collective tag space so it is never counted against the flush
/// barrier's data ledger, with bit 62 distinguishing it from real
/// collective rounds.
pub const HEARTBEAT_TAG: u64 = COLLECTIVE_TAG_BIT | (1 << 62);

/// How many consecutive ports the rendezvous may occupy when the
/// configured one is busy: rank 0 binds the first free port in
/// `[port, port + PORT_SCAN_SPAN)`, other ranks scan the same window
/// and identify the rendezvous by its hello magic.
pub const PORT_SCAN_SPAN: u16 = 16;

/// First bytes rank 0 writes on every accepted rendezvous connection,
/// so a scanning rank can tell the rendezvous from an unrelated
/// service squatting a port in the scan window.
const RENDEZVOUS_HELLO: [u8; 4] = *b"HPRV";

/// Buffers stocked per peer pool by [`SocketComm::prewarm_pool`] —
/// sized to cover the deepest in-flight window a run-ahead peer can
/// create between two of this rank's receives.
const POOL_STOCK: usize = 8;

/// How long mesh setup may wait for peers (rendezvous connect, table
/// exchange, pairwise dial) before declaring the job stillborn.
fn connect_timeout() -> Duration {
    let secs = std::env::var("HPGMXP_CONNECT_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_secs(secs)
}

/// Read a millisecond knob from the environment: unset → `default`,
/// `0` → disabled (`None`).
fn env_millis(name: &str, default: Option<u64>) -> Option<Duration> {
    let millis = match std::env::var(name) {
        Ok(v) => v.parse::<u64>().unwrap_or_else(|_| panic!("{name} is not a number: {v:?}")),
        Err(_) => default?,
    };
    (millis > 0).then(|| Duration::from_millis(millis))
}

/// Fault-detection and fault-injection knobs of one socket endpoint.
#[derive(Clone, Debug, Default)]
pub struct SocketConfig {
    /// Bound on every blocking receive and barrier wait
    /// (`HPGMXP_RECV_DEADLINE_MILLIS`; unset/0 = wait forever). The
    /// hang detector: a wedged-but-alive peer still heartbeats, so only
    /// a deadline can catch it.
    pub recv_deadline: Option<Duration>,
    /// Heartbeat emission period (`HPGMXP_HEARTBEAT_MILLIS`; default
    /// 500 ms, 0 = off).
    pub heartbeat: Option<Duration>,
    /// Declare a peer lost when *nothing* (data or heartbeat) arrived
    /// from it for this long (`HPGMXP_PEER_TIMEOUT_MILLIS`; default
    /// 10 s, 0 = off).
    pub peer_timeout: Option<Duration>,
    /// Wire-fault injection plan (`HPGMXP_FAULT_PLAN`: inline JSON or
    /// a path to it).
    pub faults: Option<FaultPlan>,
}

impl SocketConfig {
    /// The configuration the environment prescribes — what
    /// [`SocketWorld::connect`] and launched ranks use.
    pub fn from_env() -> Self {
        SocketConfig {
            recv_deadline: env_millis("HPGMXP_RECV_DEADLINE_MILLIS", None),
            heartbeat: env_millis("HPGMXP_HEARTBEAT_MILLIS", Some(500)),
            peer_timeout: env_millis("HPGMXP_PEER_TIMEOUT_MILLIS", Some(10_000)),
            faults: FaultPlan::from_env(),
        }
    }
}

/// The write half of one peer connection: the stream plus the staging
/// buffer frames are assembled in (one `write_all` per frame, no
/// allocation at steady state).
struct SendHalf {
    stream: TcpStream,
    staging: Vec<u8>,
}

/// Reusable collective state — sized on first use, then stable.
struct CollState {
    /// Engine scratch (Bruck ring + fold accumulators).
    scratch: CollScratch,
    /// This rank's sent-count row (length P), snapshotted per barrier.
    row: Vec<u64>,
    /// The allgathered P×P flush-barrier count matrix.
    counts: Vec<u64>,
}

struct SocketShared {
    rank: usize,
    size: usize,
    mailbox: Mailbox,
    /// Write halves, indexed by peer rank (`None` at our own index).
    senders: Vec<Option<Mutex<SendHalf>>>,
    /// Per-peer recycled receive pools (our own index serves
    /// self-sends). Reader threads draw from them, `recv_into`
    /// returns buffers after copying out.
    pools: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Point-to-point frames sent to / delivered from each peer
    /// (collective tags excluded) — the flush barrier's ledger.
    data_sent: Vec<AtomicU64>,
    data_delivered: Vec<AtomicU64>,
    /// Collective round number; advances identically on every rank
    /// because collectives are called in SPMD program order.
    collective_seq: AtomicU64,
    coll: Mutex<CollState>,
    /// Collective-engine traffic counters (rounds, receives, bytes).
    counters: CollCounters,
    /// Fault-detection knobs and (optional) injection plan.
    config: SocketConfig,
    /// Mesh construction time — the origin of the `last_heard` clock.
    epoch: Instant,
    /// Milliseconds since `epoch` at which each peer was last heard
    /// from (any frame, heartbeat included). The watchdog's evidence.
    last_heard: Vec<AtomicU64>,
    /// Outgoing-data-frame counter — the exchange index the fault
    /// plan's scripted events key on.
    fault_ops: AtomicU64,
    /// Seeded per-rank stream driving probabilistic wire faults.
    fault_rng: Mutex<SplitMix64>,
}

impl SocketShared {
    fn millis_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Best-fit take from a peer pool, mirroring the thread world's
/// policy: the smallest sufficient buffer serves the request so a
/// small frame never claims the pool's one large buffer.
fn pool_take(pool: &Mutex<Vec<Vec<u8>>>, len: usize) -> Vec<u8> {
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    let best = pool
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= len)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i);
    match best {
        Some(pos) => pool.swap_remove(pos),
        None => pool.pop().unwrap_or_default(),
    }
}

fn pool_put(pool: &Mutex<Vec<Vec<u8>>>, buf: Vec<u8>) {
    pool.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
}

/// One rank's endpoint in a socket world. Cheap to clone (shared
/// mesh); the process-global instance lives for the process.
#[derive(Clone)]
pub struct SocketComm {
    shared: Arc<SocketShared>,
}

/// Factory for socket-mesh endpoints.
pub struct SocketWorld;

/// Dial with jittered exponential backoff until the connect timeout:
/// start order between ranks is free, and a thundering herd of
/// retriers must not synchronize against a slow rank 0.
fn connect_with_retry(port: u16, what: &str) -> TcpStream {
    let deadline = Instant::now() + connect_timeout();
    let mut rng = SplitMix64::new((std::process::id() as u64) << 16 | port as u64 | 1);
    let mut pause = Duration::from_millis(5);
    loop {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("could not reach {what} on port {port} within the connect timeout: {e}");
                }
                std::thread::sleep(pause.mul_f64(0.5 + 0.5 * rng.next_f64()));
                pause = (pause * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Bind the rendezvous listener on the first free port of the scan
/// window — a squatted `HPGMXP_PORT` moves the rendezvous instead of
/// killing the job (scanning ranks will find it by its hello magic).
fn bind_rendezvous(base: u16) -> TcpListener {
    for offset in 0..PORT_SCAN_SPAN {
        let port = base.wrapping_add(offset);
        if let Ok(listener) = TcpListener::bind(("127.0.0.1", port)) {
            if offset > 0 {
                eprintln!("[socket] rendezvous port {base} busy, using {port}");
            }
            return listener;
        }
    }
    panic!(
        "no free rendezvous port in {base}..{} — every port in the scan window is busy",
        base.wrapping_add(PORT_SCAN_SPAN)
    )
}

/// Find the rank-0 rendezvous in the scan window starting at `base`,
/// retrying with jittered backoff until the connect timeout. A
/// connection only qualifies if the service presents the rendezvous
/// hello magic within a short read window — an unrelated server
/// squatting a scanned port is skipped, not crashed into.
fn find_rendezvous(base: u16) -> TcpStream {
    let deadline = Instant::now() + connect_timeout();
    let mut rng = SplitMix64::new((std::process::id() as u64) << 16 | base as u64 | 1);
    let mut pause = Duration::from_millis(10);
    loop {
        for offset in 0..PORT_SCAN_SPAN {
            let port = base.wrapping_add(offset);
            let Ok(mut s) = TcpStream::connect(("127.0.0.1", port)) else { continue };
            s.set_read_timeout(Some(Duration::from_millis(250))).expect("set hello read timeout");
            let mut hello = [0u8; 6];
            if s.read_exact(&mut hello).is_ok()
                && hello[0..4] == RENDEZVOUS_HELLO
                && hello[4..6] == base.to_le_bytes()
            {
                s.set_read_timeout(None).expect("clear hello read timeout");
                return s;
            }
            // Wrong service (or a rendezvous not yet writing); keep
            // scanning — rank 0 accepts until every rank registered,
            // so a missed sweep retries cleanly.
        }
        if Instant::now() >= deadline {
            panic!(
                "could not find the rank-0 rendezvous in ports {base}..{} within the connect \
                 timeout",
                base.wrapping_add(PORT_SCAN_SPAN)
            );
        }
        std::thread::sleep(pause.mul_f64(0.5 + 0.5 * rng.next_f64()));
        pause = (pause * 2).min(Duration::from_millis(200));
    }
}

/// Accept one connection before `deadline`, polling non-blockingly so
/// a missing peer fails loudly instead of hanging the listener forever.
fn accept_with_deadline(listener: &TcpListener, deadline: Instant, what: &str) -> TcpStream {
    listener.set_nonblocking(true).expect("listener nonblocking");
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).expect("stream blocking");
                return s;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    panic!("timed out waiting for {what}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("accept failed while waiting for {what}: {e}"),
        }
    }
}

impl SocketWorld {
    /// Join (or, as rank 0, host) the mesh of `size` ranks meeting at
    /// rendezvous `port`, with fault knobs from the environment.
    /// Blocks until the full mesh is connected.
    pub fn connect(rank: usize, size: usize, port: u16) -> SocketComm {
        Self::connect_with_config(rank, size, port, SocketConfig::from_env())
    }

    /// [`SocketWorld::connect`] with explicit fault-detection knobs
    /// and injection plan — the chaos tests' entry point (environment
    /// variables are process-global; per-rank knobs cannot come from
    /// them in in-process tests).
    pub fn connect_with_config(
        rank: usize,
        size: usize,
        port: u16,
        config: SocketConfig,
    ) -> SocketComm {
        assert!(size > 0 && rank < size, "rank {rank} outside world of {size}");
        assert!(size <= u32::MAX as usize);
        let deadline = Instant::now() + connect_timeout();

        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        if size > 1 {
            // Bind the data listener before rendezvous so every port in
            // the table is accepting by the time anyone dials it.
            let data_listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind data listener");
            let data_port = data_listener.local_addr().expect("data listener addr").port();

            // The hello a rendezvous presents: magic + the base port it
            // serves, so a rank scanning the port window never joins a
            // *different* world whose window happens to overlap.
            let mut hello = [0u8; 6];
            hello[0..4].copy_from_slice(&RENDEZVOUS_HELLO);
            hello[4..6].copy_from_slice(&port.to_le_bytes());

            let table: Vec<u16> = if rank == 0 {
                let rendezvous = bind_rendezvous(port);
                let mut regs: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
                let mut ports = vec![0u16; size];
                ports[0] = data_port;
                let mut registered = 0;
                while registered < size - 1 {
                    let mut s = accept_with_deadline(&rendezvous, deadline, "rank registrations");
                    // An abandoned scan probe (a rank that gave up on
                    // the hello window, or an unrelated client) just
                    // drops; skip it and keep accepting.
                    if s.write_all(&hello).is_err() {
                        continue;
                    }
                    let mut reg = [0u8; 8];
                    if s.read_exact(&mut reg).is_err() {
                        continue;
                    }
                    let r = u32::from_le_bytes([reg[0], reg[1], reg[2], reg[3]]) as usize;
                    let p = u32::from_le_bytes([reg[4], reg[5], reg[6], reg[7]]);
                    assert!(r > 0 && r < size, "bogus registration from rank {r}");
                    assert!(regs[r].is_none(), "rank {r} registered twice");
                    ports[r] = p as u16;
                    regs[r] = Some(s);
                    registered += 1;
                }
                let mut msg = Vec::with_capacity(size * 4);
                for p in &ports {
                    msg.extend_from_slice(&(*p as u32).to_le_bytes());
                }
                for s in regs.iter_mut().flatten() {
                    s.write_all(&msg).expect("send port table");
                }
                ports
            } else {
                let mut s = find_rendezvous(port);
                let mut reg = [0u8; 8];
                reg[0..4].copy_from_slice(&(rank as u32).to_le_bytes());
                reg[4..8].copy_from_slice(&(data_port as u32).to_le_bytes());
                s.write_all(&reg).expect("send registration");
                let mut table = vec![0u8; size * 4];
                s.read_exact(&mut table).expect("read port table");
                table
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as u16)
                    .collect()
            };

            // Pairwise mesh: dial every lower rank (leading with our
            // id), accept every higher one. Dials complete without the
            // peer accepting (listener backlog), so the two loops
            // cannot deadlock.
            for peer in 0..rank {
                let mut s = connect_with_retry(table[peer], "a peer data listener");
                s.write_all(&(rank as u32).to_le_bytes()).expect("send rank id");
                streams[peer] = Some(s);
            }
            for _ in rank + 1..size {
                let mut s = accept_with_deadline(&data_listener, deadline, "peer connections");
                let mut id = [0u8; 4];
                s.read_exact(&mut id).expect("read peer rank id");
                let peer = u32::from_le_bytes(id) as usize;
                assert!(peer > rank && peer < size, "unexpected peer {peer} dialed rank {rank}");
                assert!(streams[peer].is_none(), "peer {peer} connected twice");
                streams[peer] = Some(s);
            }
        }

        let fault_seed = config.faults.as_ref().map(|p| p.seed).unwrap_or(0);
        let shared = Arc::new(SocketShared {
            rank,
            size,
            mailbox: Mailbox::with_deadline(config.recv_deadline),
            senders: streams
                .iter()
                .map(|s| {
                    s.as_ref().map(|s| {
                        s.set_nodelay(true).expect("TCP_NODELAY");
                        Mutex::new(SendHalf {
                            stream: s.try_clone().expect("clone send half"),
                            staging: Vec::new(),
                        })
                    })
                })
                .collect(),
            pools: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            data_sent: (0..size).map(|_| AtomicU64::new(0)).collect(),
            data_delivered: (0..size).map(|_| AtomicU64::new(0)).collect(),
            collective_seq: AtomicU64::new(0),
            coll: Mutex::new(CollState {
                scratch: CollScratch::default(),
                row: Vec::new(),
                counts: Vec::new(),
            }),
            counters: CollCounters::default(),
            config,
            epoch: Instant::now(),
            last_heard: (0..size).map(|_| AtomicU64::new(0)).collect(),
            fault_ops: AtomicU64::new(0),
            fault_rng: Mutex::new(SplitMix64::for_rank(fault_seed, rank as u64)),
        });

        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("hpgmxp-reader-{peer}"))
                .spawn(move || reader_loop(shared, peer, stream))
                .expect("spawn reader thread");
        }

        if size > 1 && (shared.config.heartbeat.is_some() || shared.config.peer_timeout.is_some()) {
            let weak = Arc::downgrade(&shared);
            std::thread::Builder::new()
                .name(format!("hpgmxp-heartbeat-{rank}"))
                .spawn(move || heartbeat_loop(weak))
                .expect("spawn heartbeat thread");
        }

        SocketComm { shared }
    }
}

/// Emit heartbeat frames to every peer and watch for peers that have
/// gone silent. One thread per mesh; it holds only a weak reference so
/// a torn-down world (tests) lets go of its sockets.
///
/// Send failures are deliberately ignored — the reader thread on the
/// same connection observes the EOF/error and records the fault with
/// better attribution. The send path reuses the per-connection staging
/// buffer, so steady-state heartbeating allocates nothing (the
/// zero-allocation gate stays green with heartbeats on).
fn heartbeat_loop(weak: Weak<SocketShared>) {
    loop {
        let Some(shared) = weak.upgrade() else { return };
        if let Some(timeout) = shared.config.peer_timeout {
            let now = shared.millis_since_epoch();
            for (peer, heard) in shared.last_heard.iter().enumerate() {
                if peer == shared.rank || shared.senders[peer].is_none() {
                    continue;
                }
                let silent = now.saturating_sub(heard.load(Ordering::SeqCst));
                histogram!("wire.heartbeat_lag_ms").observe(silent);
                if silent > timeout.as_millis() as u64 {
                    shared.mailbox.fail(
                        peer,
                        CommErrorKind::PeerLost,
                        format!(
                            "no heartbeat from rank {peer} for {:.3}s (peer timeout {:.3}s)",
                            silent as f64 / 1e3,
                            timeout.as_secs_f64()
                        ),
                    );
                }
            }
        }
        if shared.config.heartbeat.is_some() {
            for half in shared.senders.iter().flatten() {
                let mut half = half.lock().unwrap_or_else(|e| e.into_inner());
                stage_frame(&mut half.staging, shared.rank, HEARTBEAT_TAG, &[]);
                let SendHalf { stream, staging } = &mut *half;
                let _ = stream.write_all(staging);
            }
        }
        let pause = shared
            .config
            .heartbeat
            .or(shared.config.peer_timeout)
            .unwrap_or(Duration::from_millis(500));
        drop(shared); // don't pin the mesh while sleeping
        std::thread::sleep(pause);
    }
}

/// Per-connection reader: decode frames into the shared mailbox until
/// the peer goes away. Buffers come from the peer's recycled pool, so
/// a steady-state delivery allocates nothing.
fn reader_loop(shared: Arc<SocketShared>, peer: usize, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream, |len| pool_take(&shared.pools[peer], len)) {
            Ok(Some((header, data))) => {
                debug_assert_eq!(header.from as usize, peer, "frame from wrong rank");
                counter!("wire.frames_rx").inc();
                counter!("wire.bytes_rx").add((HEADER_LEN + data.len()) as u64);
                // Anything decodable counts as proof of life.
                shared.last_heard[peer].store(shared.millis_since_epoch(), Ordering::SeqCst);
                if header.tag == HEARTBEAT_TAG {
                    // Protocol-internal; recycle without delivery.
                    pool_put(&shared.pools[peer], data);
                    continue;
                }
                // Count before pushing: the mailbox push is what wakes
                // a flush-barrier waiter, which then re-reads counters.
                if header.tag & COLLECTIVE_TAG_BIT == 0 {
                    shared.data_delivered[peer].fetch_add(1, Ordering::SeqCst);
                }
                shared.mailbox.push(Message { from: peer, tag: header.tag, data });
            }
            Ok(None) => {
                shared.mailbox.fail(
                    peer,
                    CommErrorKind::PeerClosed,
                    format!("connection to rank {peer} closed"),
                );
                return;
            }
            Err(e) => {
                // A framing/CRC violation means the payload cannot be
                // trusted; an I/O error means the peer (or its path) is
                // gone. Both are attributed and final for this stream.
                let (kind, why) = if e.kind() == ErrorKind::InvalidData {
                    (
                        CommErrorKind::Corrupt,
                        format!("protocol error on connection to rank {peer}: {e}"),
                    )
                } else {
                    (CommErrorKind::PeerLost, format!("connection to rank {peer} lost: {e}"))
                };
                shared.mailbox.fail(peer, kind, why);
                return;
            }
        }
    }
}

impl SocketComm {
    /// Frame and send on the peer connection, or self-deliver. Used by
    /// both the public `send_from` (data tags, counted) and the
    /// collectives (reserved tags, uncounted).
    fn send_raw(&self, to: usize, tag: u64, bytes: &[u8]) {
        self.send_raw_checked(to, tag, bytes).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`SocketComm::send_raw`], surfacing a write failure as a typed
    /// `PeerLost` fault — and the seam where an armed
    /// [`FaultPlan`] injects wire faults into outgoing data frames.
    fn send_raw_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        let s = &self.shared;
        assert!(to < s.size, "send to rank {to} in a world of {}", s.size);
        if to == s.rank {
            // Loopback never touches the wire (or the flush ledger —
            // it is delivered before this call returns).
            let mut data = pool_take(&s.pools[to], bytes.len());
            data.clear();
            data.extend_from_slice(bytes);
            s.mailbox.push(Message { from: to, tag, data });
            return Ok(());
        }

        let mut corrupt_flip = None;
        let mut duplicate = false;
        if tag & COLLECTIVE_TAG_BIT == 0 {
            if let Some(plan) = &s.config.faults {
                // Scripted events key on this rank's outgoing-data-frame
                // index — deterministic given the program's send order.
                let n = s.fault_ops.fetch_add(1, Ordering::SeqCst);
                if let Some(event) = plan.event_at(s.rank, n) {
                    match event.kind {
                        FaultKind::CrashRank => {
                            eprintln!(
                                "rank {} crashing deliberately at exchange {n} (fault plan seed \
                                 {})",
                                s.rank, plan.seed
                            );
                            std::process::exit(7);
                        }
                        FaultKind::HangRank => {
                            eprintln!(
                                "rank {} hanging deliberately at exchange {n} for {:?} (fault \
                                 plan seed {})",
                                s.rank,
                                plan.hang_duration(),
                                plan.seed
                            );
                            std::thread::sleep(plan.hang_duration());
                        }
                    }
                }
                if plan.has_wire_faults() {
                    let (dropped, delayed, dup, corrupt, flip) = {
                        let mut rng = s.fault_rng.lock().unwrap_or_else(|e| e.into_inner());
                        (
                            rng.hit(plan.drop),
                            rng.hit(plan.delay),
                            rng.hit(plan.duplicate),
                            rng.hit(plan.corrupt),
                            rng.next_u64(),
                        )
                    };
                    if dropped {
                        // Vanishes *without* touching the sent ledger:
                        // the flush barrier stays consistent, and the
                        // receiver's deadline is what detects the loss.
                        return Ok(());
                    }
                    if delayed {
                        std::thread::sleep(plan.delay_duration());
                    }
                    duplicate = dup;
                    if corrupt && !bytes.is_empty() {
                        corrupt_flip = Some(flip);
                    }
                }
            }
        }

        let mut half = s.senders[to]
            .as_ref()
            .expect("peer connection")
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        stage_frame(&mut half.staging, s.rank, tag, bytes);
        if let Some(flip) = corrupt_flip {
            // Flip one payload byte *after* the CRC was computed — the
            // receiver's checksum, not this rank, must catch it.
            let i = HEADER_LEN + (flip as usize) % bytes.len();
            half.staging[i] ^= 1 << ((flip >> 32) & 7);
        }
        if tag & COLLECTIVE_TAG_BIT == 0 {
            s.data_sent[to].fetch_add(1 + duplicate as u64, Ordering::SeqCst);
        }
        counter!("wire.frames_tx").inc();
        counter!("wire.bytes_tx").add(half.staging.len() as u64);
        let SendHalf { stream, staging } = &mut *half;
        let write = |stream: &mut TcpStream, staging: &[u8]| {
            stream.write_all(staging).map_err(|e| {
                CommError::new(
                    CommErrorKind::PeerLost,
                    Some(to),
                    format!("send to rank {to} failed: {e}"),
                )
                .with_tag(tag)
            })
        };
        write(stream, staging)?;
        if duplicate {
            write(stream, staging)?;
        }
        Ok(())
    }

    /// Copy a matched message out and recycle its buffer into the
    /// sender's pool.
    fn deliver(&self, msg: Message, out: &mut [u8]) {
        assert_eq!(
            msg.data.len(),
            out.len(),
            "message length mismatch: rank {} got {} bytes from {} tag {}, posted {}",
            self.shared.rank,
            msg.data.len(),
            msg.from,
            msg.tag,
            out.len()
        );
        out.copy_from_slice(&msg.data);
        pool_put(&self.shared.pools[msg.from], msg.data);
    }

    /// Next reserved collective tag; identical on every rank because
    /// collectives execute in SPMD program order.
    fn collective_tag(&self) -> u64 {
        COLLECTIVE_TAG_BIT | self.shared.collective_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Grow the transport's recycled buffers so the steady state is
    /// allocation-free by construction rather than by high-water mark:
    /// every per-peer pool is stocked with buffers of at least
    /// `min_capacity`, and each connection's staging buffer can hold a
    /// full frame of that size. Call while no messages are in flight.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        // The mailbox deque must not grow mid-measurement either: a
        // parking burst (every peer one full pool ahead, plus
        // collective traffic) is bounded by the pool stock.
        self.shared.mailbox.reserve(2 * POOL_STOCK * self.shared.size);
        for pool in &self.shared.pools {
            let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
            for buf in pool.iter_mut() {
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
            }
            // A peer can run a couple of exchange rounds ahead of its
            // receiver, with several frames in flight per round; stock
            // enough that the worst observed in-flight window never
            // forces the reader to allocate.
            while pool.len() < POOL_STOCK {
                pool.push(Vec::with_capacity(min_capacity));
            }
        }
        for half in self.shared.senders.iter().flatten() {
            let mut half = half.lock().unwrap_or_else(|e| e.into_inner());
            let want = min_capacity + HEADER_LEN;
            if half.staging.capacity() < want {
                let len = half.staging.len();
                half.staging.reserve(want - len);
            }
        }
        // Size the collective engine's scratch and the flush-barrier
        // ledger buffers so collectives allocate nothing either.
        let size = self.shared.size;
        let mut coll = self.shared.coll.lock().unwrap_or_else(|e| e.into_inner());
        coll.scratch.prewarm(size, min_capacity.div_ceil(8).max(size));
        if coll.row.capacity() < size {
            let len = coll.row.len();
            coll.row.reserve(size - len);
        }
        if coll.counts.capacity() < size * size {
            let len = coll.counts.len();
            coll.counts.reserve(size * size - len);
        }
    }

    /// Flush every in-flight message into mailboxes (a barrier), then
    /// discard anything still parked, recycling the buffers. Run
    /// between SPMD closures on the reused process-global mesh so one
    /// run's unconsumed messages cannot leak into the next.
    pub fn quiesce(&self) {
        self.barrier();
        // Drain only user data: a fast peer may already have parked its
        // *next* collective here, and swallowing it would deadlock that
        // collective on this rank.
        for msg in self.shared.mailbox.take_where(|m| m.tag & COLLECTIVE_TAG_BIT == 0) {
            pool_put(&self.shared.pools[msg.from], msg.data);
        }
        // Hold everyone until every rank has drained: a peer released
        // from the first barrier would otherwise start the *next* run's
        // sends, and a slow rank's drain could swallow them.
        self.barrier();
    }

    #[cfg(test)]
    /// Tear down this rank's side of every connection so peers observe
    /// EOF — the in-process stand-in for a dying rank.
    fn close_all_connections(&self) {
        for half in self.shared.senders.iter().flatten() {
            let half = half.lock().unwrap_or_else(|e| e.into_inner());
            let _ = half.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Comm for SocketComm {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        assert!(tag & COLLECTIVE_TAG_BIT == 0, "tag {tag:#x} uses the reserved collective bit");
        self.send_raw(to, tag, bytes);
    }

    fn send_from_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        assert!(tag & COLLECTIVE_TAG_BIT == 0, "tag {tag:#x} uses the reserved collective bit");
        self.send_raw_checked(to, tag, bytes)
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        let msg = self.shared.mailbox.recv_matching(from, tag);
        self.deliver(msg, out);
    }

    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.mailbox.recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self.shared.mailbox.try_recv_matching(from, tag) {
            Some(msg) => {
                self.deliver(msg, out);
                true
            }
            None => false,
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        if posts.iter().all(Option::is_none) {
            return None;
        }
        let (slot, msg) = self.shared.mailbox.wait_any_matching(posts);
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Some((slot, post))
    }

    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        if posts.iter().all(Option::is_none) {
            return Ok(None);
        }
        let (slot, msg) = self.shared.mailbox.wait_any_matching_checked(posts)?;
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Ok(Some((slot, post)))
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        self.allreduce_checked(vals, op).unwrap_or_else(|e| panic!("{e}"));
    }

    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        let mut coll = self.shared.coll.lock().unwrap_or_else(|e| e.into_inner());
        collectives::allreduce(self, &mut coll.scratch, vals, op)
    }

    fn barrier(&self) {
        self.barrier_checked().unwrap_or_else(|e| panic!("{e}"));
    }

    fn barrier_checked(&self) -> CommResult<()> {
        let s = &self.shared;
        if s.size == 1 {
            return Ok(());
        }
        // Flush barrier: allgather every rank's cumulative sent-count
        // row into the P×P ledger matrix (the allgather itself is the
        // rendezvous — its completion proves every rank entered), then
        // wait until this rank's delivery counters reach its column.
        // Loopback self-sends bypass the ledger, so the diagonal is
        // trivially satisfied.
        let mut coll = s.coll.lock().unwrap_or_else(|e| e.into_inner());
        let CollState { scratch, row, counts } = &mut *coll;
        row.clear();
        row.extend(s.data_sent.iter().map(|c| c.load(Ordering::SeqCst)));
        collectives::allgather_u64(self, scratch, row, counts)?;
        s.counters.count_barrier();
        let (size, me) = (s.size, s.rank);
        s.mailbox.wait_until_checked(|| {
            (0..size).all(|i| s.data_delivered[i].load(Ordering::SeqCst) >= counts[i * size + me])
        })?;
        Ok(())
    }

    fn coll_stats(&self) -> Option<CollStats> {
        Some(self.shared.counters.snapshot())
    }
}

impl collectives::CollEndpoint for SocketComm {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn coll_send(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        self.send_raw_checked(to, tag, bytes)
    }

    fn coll_recv(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.mailbox.recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn next_coll_tag(&self) -> u64 {
        self.collective_tag()
    }

    fn counters(&self) -> &CollCounters {
        &self.shared.counters
    }
}

/// The process-global mesh, built once from `HPGMXP_RANK` /
/// `HPGMXP_RANKS` / `HPGMXP_PORT` (the environment `hpgmxp-launch`
/// provides) and reused by every SPMD run in this process. Lives for
/// the process; the OS closes the sockets at exit.
pub fn global_from_env() -> &'static SocketComm {
    static MESH: OnceLock<SocketComm> = OnceLock::new();
    MESH.get_or_init(|| {
        let need = |name: &str| -> usize {
            std::env::var(name)
                .unwrap_or_else(|_| {
                    panic!("{name} not set — socket ranks must be started by hpgmxp-launch")
                })
                .parse()
                .unwrap_or_else(|_| panic!("{name} is not a number"))
        };
        let rank = need("HPGMXP_RANK");
        let size = need("HPGMXP_RANKS");
        let port = need("HPGMXP_PORT") as u16;
        SocketWorld::connect(rank, size, port)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};
    use crate::thread_world::run_threads;

    /// Pick a port that was just free (bind :0, read it back, release).
    /// The tiny reuse window is acceptable in a single test process.
    fn free_port() -> u16 {
        TcpListener::bind(("127.0.0.1", 0)).unwrap().local_addr().unwrap().port()
    }

    /// In-process socket world: each rank is a thread with its own
    /// endpoint, but every byte still crosses real TCP connections.
    fn run_socket_threads<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(SocketComm) -> T + Sync,
    {
        let port = free_port();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let fr = &f;
                    s.spawn(move || fr(SocketWorld::connect(rank, size, port)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("a rank panicked")).collect()
        })
    }

    #[test]
    fn ping_pong_over_tcp() {
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 7, &pack(&[1.5f64, -2.5]));
                let mut got = vec![0u8; 8];
                c.recv_into(1, 8, &mut got);
                let mut out = [0.0f64; 1];
                unpack(&got, &mut out);
                out[0]
            } else {
                let mut got = vec![0u8; 16];
                c.recv_into(0, 7, &mut got);
                let mut vals = [0.0f64; 2];
                unpack(&got, &mut vals);
                c.send_from(0, 8, &pack(&[vals[0] + vals[1]]));
                0.0
            }
        });
        assert_eq!(results[0], -1.0);
    }

    #[test]
    fn allreduce_matches_thread_world_bitwise() {
        // Same inputs through both transports must reduce to the same
        // bits — the property that lets GMRES-IR histories replay
        // across backends.
        let inputs: Vec<Vec<f64>> =
            (0..4).map(|r| (0..5).map(|i| ((r * 31 + i) as f64).sin() * 1e3).collect()).collect();
        let thread: Vec<Vec<f64>> = run_threads(4, |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        let socket: Vec<Vec<f64>> = run_socket_threads(4, |c| {
            let mut v = inputs[c.rank()].clone();
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for (t, s) in thread.iter().zip(socket.iter()) {
            let tb: Vec<u64> = t.iter().map(|x| x.to_bits()).collect();
            let sb: Vec<u64> = s.iter().map(|x| x.to_bits()).collect();
            assert_eq!(tb, sb);
        }
    }

    #[test]
    fn flush_barrier_makes_prebarrier_sends_pollable() {
        // The conformance suite's parking property: a message sent
        // before a barrier must be receivable by try_recv after it,
        // even though it crossed a real socket.
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 77, &[42]);
                c.barrier();
                true
            } else {
                c.barrier();
                let mut buf = [0u8; 1];
                let got = c.try_recv_into(0, 77, &mut buf);
                got && buf[0] == 42
            }
        });
        assert!(results.iter().all(|ok| *ok));
    }

    #[test]
    fn repeated_collectives_stay_in_lockstep() {
        let results = run_socket_threads(3, |c| {
            let mut acc = 0.0;
            for i in 0..25 {
                acc = c.allreduce_scalar(acc + i as f64 + c.rank() as f64, ReduceOp::Sum);
                if i % 5 == 0 {
                    c.barrier();
                }
            }
            acc
        });
        for w in results.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }

    #[test]
    fn wait_any_completes_in_arrival_order_over_tcp() {
        let results = run_socket_threads(3, |c| {
            if c.rank() == 2 {
                let mut b0 = [0u8; 1];
                let mut b1 = [0u8; 1];
                // Rank 1's send is flushed (via the barrier) before
                // rank 0 even sends, so slot 1 completes first.
                c.barrier();
                let mut posts =
                    [Some(RecvPost::new(0, 9, &mut b0)), Some(RecvPost::new(1, 9, &mut b1))];
                let (first, _) = c.wait_any(&mut posts).expect("two posts live");
                let (second, _) = c.wait_any(&mut posts).expect("one post live");
                assert!(c.wait_any(&mut posts).is_none());
                vec![first, second]
            } else if c.rank() == 1 {
                c.send_from(2, 9, &[11]);
                c.barrier();
                vec![]
            } else {
                c.barrier();
                c.send_from(2, 9, &[10]);
                vec![]
            }
        });
        assert_eq!(results[2], vec![1, 0]);
    }

    #[test]
    fn quiesce_recycles_unconsumed_messages() {
        let results = run_socket_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 5, &[1, 2, 3]);
            }
            c.quiesce();
            // The unconsumed message is gone; its buffer is pooled.
            let mut buf = [0u8; 3];
            assert!(!c.try_recv_into(0, 5, &mut buf), "quiesce drained the mailbox");
            c.barrier();
            true
        });
        assert!(results.iter().all(|ok| *ok));
    }

    #[test]
    fn dead_peer_fails_receives_loudly() {
        let port = free_port();
        let rank0 = std::thread::spawn(move || {
            let c = SocketWorld::connect(0, 2, port);
            c.barrier();
            // Peer closes after the barrier; this receive must panic
            // with a diagnostic, not hang.
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut buf = [0u8; 1];
                c.recv_into(1, 3, &mut buf);
            }))
            .expect_err("receive from a dead peer must fail");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("connection to rank 1"), "diagnostic names the peer: {msg}");
        });
        let rank1 = std::thread::spawn(move || {
            let c = SocketWorld::connect(1, 2, port);
            c.barrier();
            c.close_all_connections();
        });
        rank1.join().unwrap();
        rank0.join().unwrap();
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        // After prewarm, repeated same-size traffic keeps pools at a
        // stable population — buffers cycle instead of accumulating.
        let results = run_socket_threads(2, |c| {
            c.prewarm_pool(256);
            c.barrier();
            let peer = 1 - c.rank();
            let mut buf = [0u8; 256];
            for round in 0..50u64 {
                if c.rank() == 0 {
                    c.send_from(peer, round, &[7u8; 256]);
                    c.recv_into(peer, round, &mut buf);
                } else {
                    c.recv_into(peer, round, &mut buf);
                    c.send_from(peer, round, &buf);
                }
            }
            c.barrier();
            c.shared.pools.iter().map(|p| p.lock().unwrap().len()).sum::<usize>()
        });
        for pooled in results {
            assert!(pooled <= 2 * POOL_STOCK + 2, "pool grew without bound: {pooled} buffers");
        }
    }

    #[test]
    fn single_rank_socket_world_is_trivial() {
        let c = SocketWorld::connect(0, 1, 0);
        assert_eq!((c.rank(), c.size()), (0, 1));
        assert_eq!(c.allreduce_scalar(5.0, ReduceOp::Sum), 5.0);
        c.barrier();
        // Loopback send/recv works without any connection.
        c.send_from(0, 1, &[9]);
        let mut buf = [0u8; 1];
        c.recv_into(0, 1, &mut buf);
        assert_eq!(buf[0], 9);
    }

    /// Two ranks, each with its own [`SocketConfig`], meshed at `port`.
    fn run_pair<A, B>(port: u16, cfg0: SocketConfig, cfg1: SocketConfig, rank0: A, rank1: B)
    where
        A: FnOnce(SocketComm) + Send,
        B: FnOnce(SocketComm) + Send,
    {
        std::thread::scope(|s| {
            let h0 = s.spawn(move || rank0(SocketWorld::connect_with_config(0, 2, port, cfg0)));
            let h1 = s.spawn(move || rank1(SocketWorld::connect_with_config(1, 2, port, cfg1)));
            h0.join().expect("rank 0 panicked");
            h1.join().expect("rank 1 panicked");
        });
    }

    #[test]
    fn rendezvous_skips_squatted_port() {
        // An unrelated listener owns the configured port (it accepts
        // nothing and says nothing); the rendezvous must move to the
        // next port of the scan window and the scanning rank must find
        // it there rather than crash into the squatter.
        let base = free_port();
        let _squatter = TcpListener::bind(("127.0.0.1", base)).expect("squat the base port");
        run_pair(
            base,
            SocketConfig::default(),
            SocketConfig::default(),
            |c| assert_eq!(c.allreduce_scalar(1.0, ReduceOp::Sum), 2.0),
            |c| assert_eq!(c.allreduce_scalar(1.0, ReduceOp::Sum), 2.0),
        );
    }

    #[test]
    fn silent_peer_trips_the_heartbeat_watchdog() {
        // Rank 1 connects but never sends anything — not even
        // heartbeats (its emitter is off). From rank 0's side the
        // connection is open but silent: only the watchdog can tell,
        // and it must, within the peer timeout.
        let port = free_port();
        let watchdog = SocketConfig {
            heartbeat: Some(Duration::from_millis(25)),
            peer_timeout: Some(Duration::from_millis(150)),
            ..Default::default()
        };
        run_pair(
            port,
            watchdog,
            SocketConfig::default(),
            |c| {
                let started = Instant::now();
                let mut buf = [0u8; 1];
                let err = c.recv_into_checked(1, 3, &mut buf).unwrap_err();
                assert_eq!(err.kind, CommErrorKind::PeerLost);
                assert_eq!(err.peer, Some(1));
                assert!(err.detail.contains("no heartbeat from rank 1"), "{}", err.detail);
                assert!(started.elapsed() < Duration::from_secs(10), "bounded detection");
            },
            |_c| {
                // Stay wedged (alive, holding the socket open) past the
                // peer timeout.
                std::thread::sleep(Duration::from_millis(600));
            },
        );
    }

    #[test]
    fn receive_deadline_detects_a_hung_but_heartbeating_peer() {
        // Rank 1 heartbeats (alive!) but never sends data — the
        // watchdog stays quiet, so only the receive deadline can flag
        // the hang, as a typed Timeout naming the peer and tag.
        let port = free_port();
        let beat = Some(Duration::from_millis(25));
        let waiter = SocketConfig {
            recv_deadline: Some(Duration::from_millis(100)),
            heartbeat: beat,
            peer_timeout: Some(Duration::from_secs(30)),
            faults: None,
        };
        let hung = SocketConfig { heartbeat: beat, ..Default::default() };
        run_pair(
            port,
            waiter,
            hung,
            |c| {
                let mut buf = [0u8; 1];
                let err = c.recv_into_checked(1, 3, &mut buf).unwrap_err();
                assert_eq!(err.kind, CommErrorKind::Timeout);
                assert_eq!((err.peer, err.tag), (Some(1), Some(3)));
                assert!(err.elapsed >= Duration::from_millis(100));
                assert!(err.detail.contains("peer hung?"), "{}", err.detail);
            },
            |_c| std::thread::sleep(Duration::from_millis(400)),
        );
    }

    #[test]
    fn corrupted_frame_is_detected_and_attributed() {
        // Rank 0's interposer flips a payload byte after the CRC is
        // computed; rank 1's reader must reject the frame and attribute
        // the corruption to rank 0.
        let port = free_port();
        let corruptor = SocketConfig {
            faults: Some(FaultPlan { corrupt: Some(1.0), ..FaultPlan::clean(3) }),
            ..Default::default()
        };
        run_pair(
            port,
            corruptor,
            SocketConfig::default(),
            |c| c.send_from(1, 9, &[1, 2, 3, 4]),
            |c| {
                let mut buf = [0u8; 4];
                let err = c.recv_into_checked(0, 9, &mut buf).unwrap_err();
                assert_eq!(err.kind, CommErrorKind::Corrupt);
                assert_eq!(err.peer, Some(0));
                assert!(err.detail.contains("corrupt frame from rank 0"), "{}", err.detail);
            },
        );
    }

    #[test]
    fn dropped_frame_is_caught_by_deadline_and_barrier_stays_consistent() {
        // A dropped data frame must not wedge the flush barrier (the
        // drop is uncounted on the sent ledger); the receiver's typed
        // Timeout is the detection.
        let port = free_port();
        let dropper = SocketConfig {
            faults: Some(FaultPlan { drop: Some(1.0), ..FaultPlan::clean(11) }),
            ..Default::default()
        };
        let receiver =
            SocketConfig { recv_deadline: Some(Duration::from_millis(100)), ..Default::default() };
        run_pair(
            port,
            dropper,
            receiver,
            |c| {
                c.send_from(1, 5, &[42]); // vanishes on the wire
                c.barrier(); // must still complete
            },
            |c| {
                let mut buf = [0u8; 1];
                let err = c.recv_into_checked(0, 5, &mut buf).unwrap_err();
                assert_eq!(err.kind, CommErrorKind::Timeout);
                c.barrier();
            },
        );
    }

    #[test]
    fn duplicated_frames_are_counted_and_both_delivered() {
        // A duplicated frame counts twice on the sent ledger, so the
        // flush barrier still balances — and both copies park.
        let port = free_port();
        let duper = SocketConfig {
            faults: Some(FaultPlan { duplicate: Some(1.0), ..FaultPlan::clean(7) }),
            ..Default::default()
        };
        run_pair(
            port,
            duper,
            SocketConfig::default(),
            |c| {
                c.send_from(1, 6, &[9]);
                c.barrier();
            },
            |c| {
                c.barrier(); // flushes both copies into the mailbox
                let mut buf = [0u8; 1];
                assert!(c.try_recv_into(0, 6, &mut buf));
                assert_eq!(buf[0], 9);
                assert!(c.try_recv_into(0, 6, &mut buf), "the duplicate is parked too");
            },
        );
    }
}
