//! The [`Comm`] trait (v2) and the single-rank world.
//!
//! Messages are byte buffers; scalar payloads are packed/unpacked with
//! the little helpers below so that `f64` (reference solver), `f32`
//! (mixed-precision inner solver), and emulated `f16` halos all travel
//! through one code path — at half/quarter the volume for the low
//! precisions, exactly the effect the benchmark measures.
//!
//! v2 is allocation-free on the hot path: callers lend byte slices in
//! both directions (`send_from` copies into backend-pooled storage,
//! `recv_into` fills a caller-owned buffer), and [`Comm::wait_any`]
//! lets a rank drain whichever neighbor's message lands first instead
//! of receiving in a fixed order — the `MPI_Waitany` pattern the halo
//! engine uses to unpack ghosts as they arrive.

use crate::error::CommResult;
use hpgmxp_sparse::scalar::convert_slice;
use hpgmxp_sparse::{Half, Scalar};

/// Reduction operator of an all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum (inner products, FLOP totals).
    Sum,
    /// Elementwise maximum (timings, convergence flags).
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Reduce `b` into `a` elementwise.
pub(crate) fn reduce_into(op: ReduceOp, a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = op.apply(*x, *y);
    }
}

/// One posted receive: where the message comes from and where its
/// bytes go. The expected message length is `buf.len()` — backends
/// reject mismatches loudly, since the halo plan fixes both sides.
#[derive(Debug)]
pub struct RecvPost<'a> {
    /// Sending rank.
    pub from: usize,
    /// Message tag.
    pub tag: u64,
    /// Destination buffer; its length is the expected message length.
    pub buf: &'a mut [u8],
}

impl<'a> RecvPost<'a> {
    /// Post a receive of `buf.len()` bytes from `(from, tag)`.
    pub fn new(from: usize, tag: u64, buf: &'a mut [u8]) -> Self {
        RecvPost { from, tag, buf }
    }
}

/// The communication interface every solver is written against.
///
/// Semantics mirror the MPI subset the benchmark uses:
/// * `send_from` is buffered and non-blocking (like `MPI_Isend` with an
///   eager protocol); the backend copies the bytes into pooled storage
///   before returning, so the caller's buffer is immediately reusable;
/// * `recv_into` blocks until the matching message arrives and copies
///   it into the caller's buffer (posted-receive discipline — no
///   backend allocation hands a `Vec` across the interface);
/// * `wait_any` completes whichever posted receive matches first, the
///   `MPI_Waitany` pattern;
/// * messages between one (sender, receiver) pair with the same tag are
///   delivered in FIFO order;
/// * `allreduce` and `barrier` are collectives every rank must enter.
pub trait Comm: Send + Sync {
    /// This rank's id, `0..size`.
    fn rank(&self) -> usize;
    /// World size.
    fn size(&self) -> usize;
    /// Non-blocking buffered send of a tagged message. The backend
    /// copies `bytes` into pooled storage; no ownership transfer.
    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]);
    /// Blocking receive of the next message from `from` with `tag`.
    /// The message length must equal `out.len()`.
    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]);
    /// Poll for a matching message without blocking; `true` if `out`
    /// was filled.
    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool;
    /// Block until one of the still-posted receives (the `Some` slots)
    /// completes, fill its buffer, and hand the completed post back as
    /// `(slot index, post)`. Returns `None` once every slot is `None`.
    ///
    /// The default implementation polls; backends with a real mailbox
    /// override it with a blocking wait.
    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        loop {
            let mut live = false;
            for (i, slot) in posts.iter_mut().enumerate() {
                let Some(p) = slot.as_mut() else { continue };
                live = true;
                if self.try_recv_into(p.from, p.tag, p.buf) {
                    let post = slot.take().expect("slot checked above");
                    return Some((i, post));
                }
            }
            if !live {
                return None;
            }
            std::thread::yield_now();
        }
    }
    /// In-place elementwise all-reduce over all ranks.
    fn allreduce(&self, vals: &mut [f64], op: ReduceOp);
    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// All-reduce a single scalar (the hot path of the DOT motif).
    fn allreduce_scalar(&self, val: f64, op: ReduceOp) -> f64 {
        let mut buf = [val];
        self.allreduce(&mut buf, op);
        buf[0]
    }

    // ---- fallible variants ------------------------------------------
    //
    // The `*_checked` family returns a typed [`CommError`] where the
    // legacy methods panic, so solvers can propagate a peer failure up
    // to a diagnostic exit instead of unwinding. Backends with real
    // fault detection (thread/socket worlds) override these; the
    // defaults wrap the infallible calls, which is exact for backends
    // that cannot fail (`SelfComm`, the machine model's comm).

    /// Fallible [`Comm::send_from`]: a send on a dead connection
    /// returns the fault instead of panicking.
    fn send_from_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        self.send_from(to, tag, bytes);
        Ok(())
    }

    /// Fallible [`Comm::recv_into`]: a failed peer or an elapsed
    /// receive deadline returns a typed fault naming the peer and tag.
    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        self.recv_into(from, tag, out);
        Ok(())
    }

    /// Fallible [`Comm::wait_any`].
    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        Ok(self.wait_any(posts))
    }

    /// Fallible [`Comm::allreduce`].
    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        self.allreduce(vals, op);
        Ok(())
    }

    /// Fallible [`Comm::allreduce_scalar`].
    fn allreduce_scalar_checked(&self, val: f64, op: ReduceOp) -> CommResult<f64> {
        let mut buf = [val];
        self.allreduce_checked(&mut buf, op)?;
        Ok(buf[0])
    }

    /// Fallible [`Comm::barrier`].
    fn barrier_checked(&self) -> CommResult<()> {
        self.barrier();
        Ok(())
    }

    /// Cumulative collective-engine traffic counters for this endpoint
    /// (operation/round/receive/byte counts), if the backend routes its
    /// collectives through [`crate::collectives`]. Diff two snapshots
    /// to attribute traffic to a phase; `None` for backends without
    /// real collectives (`SelfComm`).
    fn coll_stats(&self) -> Option<crate::collectives::CollStats> {
        None
    }

    /// Typed send of a scalar slice (setup-path convenience; packs
    /// through a temporary buffer).
    fn send_slice<S: Scalar>(&self, to: usize, tag: u64, data: &[S])
    where
        Self: Sized,
    {
        self.send_from(to, tag, &pack(data));
    }

    /// Typed blocking receive into a scalar slice of the expected
    /// length (setup-path convenience).
    fn recv_slice<S: Scalar>(&self, from: usize, tag: u64, out: &mut [S])
    where
        Self: Sized,
    {
        let mut bytes = vec![0u8; out.len() * S::BYTES];
        self.recv_into(from, tag, &mut bytes);
        unpack(&bytes, out);
    }
}

/// Wire staging chunk: scalars are converted to the wire precision in
/// batches of this many elements through the SIMD converters, then the
/// chunk's bytes are appended in one go.
const WIRE_CHUNK: usize = 256;

/// Append a POD lane slice to `out` as little-endian bytes. On
/// little-endian targets this is a single `memcpy`; elsewhere each
/// lane is serialized explicitly.
macro_rules! extend_le {
    ($name:ident, $T:ty) => {
        #[inline]
        fn $name(vals: &[$T], out: &mut Vec<u8>) {
            #[cfg(target_endian = "little")]
            {
                // SAFETY: reading the initialized POD lanes as bytes.
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        vals.as_ptr() as *const u8,
                        std::mem::size_of_val(vals),
                    )
                };
                out.extend_from_slice(bytes);
            }
            #[cfg(not(target_endian = "little"))]
            for v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    };
}

extend_le!(extend_le_u16, u16);
extend_le!(extend_le_f32, f32);
extend_le!(extend_le_f64, f64);

/// Decode little-endian bytes into a POD lane slice (the inverse of
/// the `extend_le` helpers).
macro_rules! decode_le {
    ($name:ident, $T:ty, $W:literal) => {
        #[inline]
        fn $name(bytes: &[u8], vals: &mut [$T]) {
            debug_assert_eq!(bytes.len(), vals.len() * $W);
            #[cfg(target_endian = "little")]
            {
                // SAFETY: writing `size_of_val(vals)` bytes of POD data
                // over the initialized lanes.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        bytes.as_ptr(),
                        vals.as_mut_ptr() as *mut u8,
                        std::mem::size_of_val(vals),
                    );
                }
            }
            #[cfg(not(target_endian = "little"))]
            for (v, c) in vals.iter_mut().zip(bytes.chunks_exact($W)) {
                *v = <$T>::from_le_bytes(c.try_into().unwrap());
            }
        }
    };
}

decode_le!(decode_le_u16, u16, 2);
decode_le!(decode_le_f32, f32, 4);
decode_le!(decode_le_f64, f64, 8);

/// The one wire encoder: round scalars to the wire precision (2/4/8
/// bytes for f16/f32/f64) in [`WIRE_CHUNK`] batches through the SIMD
/// converters — one round-to-nearest-even per element, the same bits
/// a scalar `to_f64`-then-narrow loop produces — and append the
/// little-endian bytes. This is the pack half of the precision
/// policy's *wire* axis (fp16 ghosts under an f32 — or even f64 —
/// compute precision). Does **not** clear `out`, so gather packing
/// can stage through it.
pub(crate) fn encode_slice_wire_append<S: Scalar>(
    values: &[S],
    wire_bytes: usize,
    out: &mut Vec<u8>,
) {
    out.reserve(values.len() * wire_bytes);
    match wire_bytes {
        2 => {
            let mut w = [Half::ZERO; WIRE_CHUNK];
            for c in values.chunks(WIRE_CHUNK) {
                convert_slice(c, &mut w[..c.len()]);
                extend_le_u16(hpgmxp_sparse::half::as_bits(&w[..c.len()]), out);
            }
        }
        4 => {
            let mut w = [0.0f32; WIRE_CHUNK];
            for c in values.chunks(WIRE_CHUNK) {
                convert_slice(c, &mut w[..c.len()]);
                extend_le_f32(&w[..c.len()], out);
            }
        }
        8 => {
            let mut w = [0.0f64; WIRE_CHUNK];
            for c in values.chunks(WIRE_CHUNK) {
                convert_slice(c, &mut w[..c.len()]);
                extend_le_f64(&w[..c.len()], out);
            }
        }
        w => panic!("unsupported wire width {w} (expected 2, 4, or 8)"),
    }
}

/// [`encode_slice_wire_append`] with a cleared destination. With
/// sufficient capacity this never allocates — the halo engine's
/// persistent staging buffers rely on that.
pub(crate) fn encode_slice_wire<S: Scalar>(values: &[S], wire_bytes: usize, out: &mut Vec<u8>) {
    out.clear();
    encode_slice_wire_append(values, wire_bytes, out);
}

/// Append a scalar slice as little-endian bytes onto `out` (which is
/// cleared first).
pub fn pack_into<S: Scalar>(data: &[S], out: &mut Vec<u8>) {
    encode_slice_wire(data, S::BYTES, out);
}

/// Pack a scalar slice into freshly allocated little-endian bytes.
pub fn pack<S: Scalar>(data: &[S]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * S::BYTES);
    pack_into(data, &mut out);
    out
}

/// Unpack little-endian bytes into a scalar slice (length must match).
pub fn unpack<S: Scalar>(bytes: &[u8], out: &mut [S]) {
    unpack_wire(bytes, S::BYTES, out)
}

/// [`unpack`] with a runtime wire width: decode 2/4/8-byte wire values
/// and widen (or round) into the compute scalar `S` — the unpack half
/// of the policy's wire axis.
pub fn unpack_wire<S: Scalar>(bytes: &[u8], wire_bytes: usize, out: &mut [S]) {
    assert_eq!(bytes.len(), out.len() * wire_bytes, "message length mismatch");
    // Decode the wire lanes in stack-buffered chunks, then widen (or
    // round) into `S` through the batch converters — the same one
    // `from_f64(wire as f64)` rounding per element as a scalar loop.
    match wire_bytes {
        2 => {
            let mut w = [Half::ZERO; WIRE_CHUNK];
            for (o, b) in out.chunks_mut(WIRE_CHUNK).zip(bytes.chunks(WIRE_CHUNK * 2)) {
                decode_le_u16(b, hpgmxp_sparse::half::as_bits_mut(&mut w[..o.len()]));
                convert_slice(&w[..o.len()], o);
            }
        }
        4 => {
            let mut w = [0.0f32; WIRE_CHUNK];
            for (o, b) in out.chunks_mut(WIRE_CHUNK).zip(bytes.chunks(WIRE_CHUNK * 4)) {
                decode_le_f32(b, &mut w[..o.len()]);
                convert_slice(&w[..o.len()], o);
            }
        }
        8 => {
            let mut w = [0.0f64; WIRE_CHUNK];
            for (o, b) in out.chunks_mut(WIRE_CHUNK).zip(bytes.chunks(WIRE_CHUNK * 8)) {
                decode_le_f64(b, &mut w[..o.len()]);
                convert_slice(&w[..o.len()], o);
            }
        }
        w => panic!("unsupported wire width {w} (expected 2, 4, or 8)"),
    }
}

/// The trivial single-rank world: collectives are no-ops, point-to-point
/// is unreachable (a single rank has no peers).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfComm;

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn send_from(&self, _to: usize, _tag: u64, _bytes: &[u8]) {
        unreachable!("SelfComm has no peers to send to");
    }
    fn recv_into(&self, _from: usize, _tag: u64, _out: &mut [u8]) {
        unreachable!("SelfComm has no peers to receive from");
    }
    fn try_recv_into(&self, _from: usize, _tag: u64, _out: &mut [u8]) -> bool {
        false
    }
    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        assert!(posts.iter().all(Option::is_none), "SelfComm has no peers to receive from");
        None
    }
    fn allreduce(&self, _vals: &mut [f64], _op: ReduceOp) {}
    fn barrier(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpgmxp_sparse::Half;

    #[test]
    fn pack_unpack_f64_roundtrip() {
        let data = vec![1.5f64, -2.25, 1e300, 0.0];
        let bytes = pack(&data);
        assert_eq!(bytes.len(), 32);
        let mut out = vec![0.0f64; 4];
        unpack(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn pack_unpack_f32_roundtrip_and_half_volume() {
        let data = vec![1.5f32, -2.25, 3.75];
        let bytes = pack(&data);
        assert_eq!(bytes.len(), 12, "f32 halo messages are half the f64 volume");
        let mut out = vec![0.0f32; 3];
        unpack(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn pack_unpack_f16_roundtrip_and_quarter_volume() {
        // fp16 ghosts travel as 2 bytes per value — a quarter of the
        // f64 volume, the §5 future-work configuration's wire benefit.
        let data = vec![Half::from_f32(1.5), Half::from_f32(-2.25), Half::from_f32(0.0)];
        let bytes = pack(&data);
        assert_eq!(bytes.len(), 6, "f16 halo messages are a quarter of the f64 volume");
        let mut out = vec![Half::from_f32(9.0); 3];
        unpack(&bytes, &mut out);
        for (a, b) in out.iter().zip(data.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pack_into_reuses_capacity() {
        let data = vec![1.0f64; 64];
        let mut buf = Vec::with_capacity(64 * 8);
        let cap_ptr = buf.as_ptr();
        for _ in 0..10 {
            pack_into(&data, &mut buf);
            assert_eq!(buf.len(), 512);
        }
        assert_eq!(buf.as_ptr(), cap_ptr, "pack_into must never reallocate a sized buffer");
    }

    #[test]
    fn self_comm_collectives_are_identity() {
        let c = SelfComm;
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        let mut v = vec![3.0, -1.0];
        c.allreduce(&mut v, ReduceOp::Sum);
        assert_eq!(v, vec![3.0, -1.0]);
        assert_eq!(c.allreduce_scalar(7.5, ReduceOp::Max), 7.5);
        c.barrier();
    }

    #[test]
    fn self_comm_wait_any_with_no_posts_is_none() {
        let c = SelfComm;
        let mut posts: [Option<RecvPost>; 2] = [None, None];
        assert!(c.wait_any(&mut posts).is_none());
    }

    #[test]
    fn reduce_ops() {
        let mut a = vec![1.0, 5.0, -2.0];
        reduce_into(ReduceOp::Sum, &mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![2.0, 6.0, -1.0]);
        reduce_into(ReduceOp::Max, &mut a, &[0.0, 10.0, 0.0]);
        assert_eq!(a, vec![2.0, 10.0, 0.0]);
        reduce_into(ReduceOp::Min, &mut a, &[5.0, 5.0, 5.0]);
        assert_eq!(a, vec![2.0, 5.0, 0.0]);
    }
}
