//! The [`Comm`] trait and the single-rank world.
//!
//! Messages are byte buffers; scalar payloads are packed/unpacked with
//! the little helpers below so that both `f64` (reference solver) and
//! `f32` (mixed-precision inner solver) halos travel through one code
//! path — at half the volume for `f32`, exactly the effect the
//! benchmark measures.

use hpgmxp_sparse::Scalar;

/// Reduction operator of an all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum (inner products, FLOP totals).
    Sum,
    /// Elementwise maximum (timings, convergence flags).
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Reduce `b` into `a` elementwise.
pub(crate) fn reduce_into(op: ReduceOp, a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = op.apply(*x, *y);
    }
}

/// The communication interface every solver is written against.
///
/// Semantics mirror the MPI subset the benchmark uses:
/// * `send_bytes` is buffered and non-blocking (like `MPI_Isend` with
///   an eager protocol);
/// * `recv_bytes` blocks until the matching message arrives;
/// * messages between one (sender, receiver) pair with the same tag are
///   delivered in FIFO order;
/// * `allreduce` and `barrier` are collectives every rank must enter.
pub trait Comm: Send + Sync {
    /// This rank's id, `0..size`.
    fn rank(&self) -> usize;
    /// World size.
    fn size(&self) -> usize;
    /// Non-blocking buffered send of a tagged message.
    fn send_bytes(&self, to: usize, tag: u64, data: Vec<u8>);
    /// Blocking receive of the next message from `from` with `tag`.
    fn recv_bytes(&self, from: usize, tag: u64) -> Vec<u8>;
    /// Poll for a matching message without blocking.
    fn try_recv_bytes(&self, from: usize, tag: u64) -> Option<Vec<u8>>;
    /// In-place elementwise all-reduce over all ranks.
    fn allreduce(&self, vals: &mut [f64], op: ReduceOp);
    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// All-reduce a single scalar (the hot path of the DOT motif).
    fn allreduce_scalar(&self, val: f64, op: ReduceOp) -> f64 {
        let mut buf = [val];
        self.allreduce(&mut buf, op);
        buf[0]
    }

    /// Typed send of a scalar slice.
    fn send_slice<S: Scalar>(&self, to: usize, tag: u64, data: &[S])
    where
        Self: Sized,
    {
        self.send_bytes(to, tag, pack(data));
    }

    /// Typed blocking receive into a scalar slice of the expected length.
    fn recv_slice<S: Scalar>(&self, from: usize, tag: u64, out: &mut [S])
    where
        Self: Sized,
    {
        let bytes = self.recv_bytes(from, tag);
        unpack(&bytes, out);
    }
}

/// Pack a scalar slice into little-endian bytes.
pub fn pack<S: Scalar>(data: &[S]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * S::BYTES);
    for v in data {
        if S::BYTES == 4 {
            out.extend_from_slice(&(v.to_f64() as f32).to_le_bytes());
        } else {
            out.extend_from_slice(&v.to_f64().to_le_bytes());
        }
    }
    out
}

/// Unpack little-endian bytes into a scalar slice (length must match).
pub fn unpack<S: Scalar>(bytes: &[u8], out: &mut [S]) {
    assert_eq!(bytes.len(), out.len() * S::BYTES, "message length mismatch");
    if S::BYTES == 4 {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = S::from_f64(f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64);
        }
    } else {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = S::from_f64(f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]));
        }
    }
}

/// The trivial single-rank world: collectives are no-ops, point-to-point
/// is unreachable (a single rank has no peers).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfComm;

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn send_bytes(&self, _to: usize, _tag: u64, _data: Vec<u8>) {
        unreachable!("SelfComm has no peers to send to");
    }
    fn recv_bytes(&self, _from: usize, _tag: u64) -> Vec<u8> {
        unreachable!("SelfComm has no peers to receive from");
    }
    fn try_recv_bytes(&self, _from: usize, _tag: u64) -> Option<Vec<u8>> {
        None
    }
    fn allreduce(&self, _vals: &mut [f64], _op: ReduceOp) {}
    fn barrier(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_f64_roundtrip() {
        let data = vec![1.5f64, -2.25, 1e300, 0.0];
        let bytes = pack(&data);
        assert_eq!(bytes.len(), 32);
        let mut out = vec![0.0f64; 4];
        unpack(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn pack_unpack_f32_roundtrip_and_half_volume() {
        let data = vec![1.5f32, -2.25, 3.75];
        let bytes = pack(&data);
        assert_eq!(bytes.len(), 12, "f32 halo messages are half the f64 volume");
        let mut out = vec![0.0f32; 3];
        unpack(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn self_comm_collectives_are_identity() {
        let c = SelfComm;
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        let mut v = vec![3.0, -1.0];
        c.allreduce(&mut v, ReduceOp::Sum);
        assert_eq!(v, vec![3.0, -1.0]);
        assert_eq!(c.allreduce_scalar(7.5, ReduceOp::Max), 7.5);
        c.barrier();
    }

    #[test]
    fn reduce_ops() {
        let mut a = vec![1.0, 5.0, -2.0];
        reduce_into(ReduceOp::Sum, &mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![2.0, 6.0, -1.0]);
        reduce_into(ReduceOp::Max, &mut a, &[0.0, 10.0, 0.0]);
        assert_eq!(a, vec![2.0, 10.0, 0.0]);
        reduce_into(ReduceOp::Min, &mut a, &[5.0, 5.0, 5.0]);
        assert_eq!(a, vec![2.0, 5.0, 0.0]);
    }
}
