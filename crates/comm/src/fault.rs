//! Deterministic fault injection — every chaos scenario is a
//! replayable seed, not a flake.
//!
//! A [`FaultPlan`] is a serde spec combining *seeded probabilistic*
//! wire faults (drop / delay / duplicate / reorder / corrupt, each a
//! per-message probability drawn from a SplitMix64 stream seeded by
//! `(plan.seed, rank)`) with *scripted* events (`CrashRank` /
//! `HangRank` at an exact exchange index). The same plan, seed, and
//! rank always produce the same fault sequence, so a chaos failure
//! reproduces from its seed alone.
//!
//! Two injection points consume a plan:
//!
//! * [`FaultyComm`] wraps **any** [`Comm`] backend at the trait level —
//!   the thread-world chaos suite property-tests crash/hang scenarios
//!   over seeds without spawning processes;
//! * the socket transport's frame-level interposer
//!   (see `socket_world`) applies the same plan to outgoing wire
//!   frames, where `Corrupt` flips a post-CRC byte so the receiver's
//!   checksum catches it — the full-stack detection path.
//!
//! The **exchange index** that scripted events key on counts this
//! rank's comm operations: every `send_from` and every collective
//! entry (allreduce, barrier) advances it by one, in program order.

use crate::comm::{Comm, RecvPost, ReduceOp};
use crate::error::CommResult;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a scripted fault event does to its rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The rank dies at the given exchange (panic, or process exit
    /// under [`FaultyComm::with_process_exit`]).
    CrashRank,
    /// The rank stalls for `hang_millis` at the given exchange, then
    /// resumes — long enough for peers' deadlines to fire.
    HangRank,
}

/// One scripted fault: `rank` misbehaves at its `at_exchange`-th comm
/// operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// The rank that misbehaves.
    pub rank: usize,
    /// The victim's comm-operation index at which the event fires.
    pub at_exchange: u64,
}

/// A replayable chaos scenario: seeded probabilistic wire faults plus
/// scripted crash/hang events. All probabilities default to 0 (absent
/// key = no injection), so `{"seed": 1}` is a clean plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-rank fault RNG streams.
    pub seed: u64,
    /// Probability a sent message is silently dropped.
    pub drop: Option<f64>,
    /// Probability a send is delayed by `delay_millis`.
    pub delay: Option<f64>,
    /// Probability a message is sent twice.
    pub duplicate: Option<f64>,
    /// Probability a message is held back and sent after the next one.
    pub reorder: Option<f64>,
    /// Probability a message payload is corrupted (one byte flipped —
    /// at the socket frame level, *after* the CRC is computed, so the
    /// receiver must detect it).
    pub corrupt: Option<f64>,
    /// Delay applied when `delay` fires (default 5 ms).
    pub delay_millis: Option<u64>,
    /// Stall applied by a `HangRank` event (default 3 600 000 ms — an
    /// effective hang; tests use a few hundred ms so scoped threads
    /// can still join).
    pub hang_millis: Option<u64>,
    /// Scripted crash/hang events.
    pub events: Option<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// A clean plan with the given seed (no injection).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: None,
            delay: None,
            duplicate: None,
            reorder: None,
            corrupt: None,
            delay_millis: None,
            hang_millis: None,
            events: None,
        }
    }

    /// Parse a plan from JSON text.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan: {e}"))
    }

    /// Serialize to JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault plan serializes")
    }

    /// Load the plan `HPGMXP_FAULT_PLAN` names: inline JSON if the
    /// value starts with `{`, otherwise a path to a JSON file. `None`
    /// when unset; a set-but-unreadable plan is a loud error (silently
    /// skipping requested chaos would fake green runs).
    ///
    /// A plan models a *transient* incident by default: on a restore
    /// attempt (`HPGMXP_RESTORE=1` — the launcher sets it when
    /// relaunching a failed job) the plan is disarmed so recovery can
    /// be proven, unless `HPGMXP_FAULT_PERSIST=1` keeps it armed
    /// across attempts (a permanently faulty link).
    pub fn from_env() -> Option<FaultPlan> {
        let v = std::env::var("HPGMXP_FAULT_PLAN").ok()?;
        if v.is_empty() {
            return None;
        }
        let restoring = std::env::var("HPGMXP_RESTORE").map(|r| r == "1").unwrap_or(false);
        let persist = std::env::var("HPGMXP_FAULT_PERSIST").map(|p| p == "1").unwrap_or(false);
        if restoring && !persist {
            return None;
        }
        let text = if v.trim_start().starts_with('{') {
            v
        } else {
            std::fs::read_to_string(&v)
                .unwrap_or_else(|e| panic!("cannot read fault plan {v}: {e}"))
        };
        Some(FaultPlan::from_json(&text).unwrap_or_else(|e| panic!("{e}")))
    }

    /// The delay a `delay` fault applies.
    pub fn delay_duration(&self) -> Duration {
        Duration::from_millis(self.delay_millis.unwrap_or(5))
    }

    /// The stall a `HangRank` event applies.
    pub fn hang_duration(&self) -> Duration {
        Duration::from_millis(self.hang_millis.unwrap_or(3_600_000))
    }

    /// The scripted event (if any) for `rank` at exchange index `n`.
    pub fn event_at(&self, rank: usize, n: u64) -> Option<&FaultEvent> {
        self.events.as_ref()?.iter().find(|e| e.rank == rank && e.at_exchange == n)
    }

    /// Whether any probabilistic wire fault is enabled.
    pub fn has_wire_faults(&self) -> bool {
        [self.drop, self.delay, self.duplicate, self.reorder, self.corrupt]
            .iter()
            .any(|p| p.unwrap_or(0.0) > 0.0)
    }

    /// The same plan with every probabilistic wire fault stripped —
    /// scripted events only. A worker that already runs over a
    /// transport with its own frame-level interposer (the socket
    /// world corrupts *after* the CRC is computed, so every flip is
    /// honestly detectable) uses this for its in-process
    /// [`FaultyComm`] wrapper: wrapper-level corruption would happen
    /// before framing and slip past the checksum undetected.
    pub fn without_wire_faults(mut self) -> FaultPlan {
        self.drop = None;
        self.delay = None;
        self.duplicate = None;
        self.reorder = None;
        self.corrupt = None;
        self
    }
}

/// SplitMix64 — a tiny, high-quality, dependency-free PRNG. Each
/// (plan seed, rank) pair gets an independent deterministic stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed a stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Seed the canonical per-rank fault stream of a plan.
    pub fn for_rank(plan_seed: u64, rank: u64) -> Self {
        SplitMix64::new(plan_seed ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Next raw u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw at probability `p` (clamped to [0, 1]).
    pub fn hit(&mut self, p: Option<f64>) -> bool {
        let p = p.unwrap_or(0.0).clamp(0.0, 1.0);
        p > 0.0 && self.next_f64() < p
    }
}

/// A message held back by a `reorder` fault, released after the next
/// send.
struct Stashed {
    to: usize,
    tag: u64,
    bytes: Vec<u8>,
}

/// A [`Comm`] wrapper that injects the faults a [`FaultPlan`]
/// prescribes into this rank's *send* path and scripted events into
/// every comm operation. Deterministic per (plan seed, rank).
pub struct FaultyComm<C: Comm> {
    inner: C,
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    stash: Mutex<Option<Stashed>>,
    /// This rank's comm-operation counter (the "exchange index").
    ops: AtomicU64,
    /// Crash events call `std::process::exit(7)` instead of panicking
    /// — process semantics for socket-world chaos workers.
    process_exit: bool,
}

impl<C: Comm> FaultyComm<C> {
    /// Wrap `inner` under `plan`. Scripted crashes panic (thread-world
    /// semantics); see [`FaultyComm::with_process_exit`].
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        let rng = SplitMix64::for_rank(plan.seed, inner.rank() as u64);
        FaultyComm {
            inner,
            plan,
            rng: Mutex::new(rng),
            stash: Mutex::new(None),
            ops: AtomicU64::new(0),
            process_exit: false,
        }
    }

    /// Crash events exit the whole process (code 7) instead of
    /// panicking the calling thread — a real rank death for
    /// launcher-supervised chaos jobs.
    pub fn with_process_exit(mut self) -> Self {
        self.process_exit = true;
        self
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Comm operations performed so far (the exchange index scripted
    /// events key on).
    pub fn exchanges(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Advance the exchange index and fire any scripted event due now.
    fn tick(&self) {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        let Some(event) = self.plan.event_at(self.inner.rank(), n) else { return };
        match event.kind {
            FaultKind::CrashRank => {
                eprintln!(
                    "rank {} crashing deliberately at exchange {n} (fault plan seed {})",
                    self.inner.rank(),
                    self.plan.seed
                );
                hpgmxp_trace::instant("fault crash", hpgmxp_trace::Lane::Fault, n);
                // The trace flush guards sit above this frame and only
                // run on unwind, so dump the ring before a hard exit.
                if self.process_exit {
                    if let Some(Err(e)) = hpgmxp_trace::flush_global(self.inner.rank() as u32) {
                        eprintln!("[trace] flush before fault exit failed: {e}");
                    }
                    std::process::exit(7);
                }
                panic!("rank {} crashed by fault plan at exchange {n}", self.inner.rank());
            }
            FaultKind::HangRank => {
                eprintln!(
                    "rank {} hanging deliberately at exchange {n} for {:?} (fault plan seed {})",
                    self.inner.rank(),
                    self.plan.hang_duration(),
                    self.plan.seed
                );
                hpgmxp_trace::instant("fault hang", hpgmxp_trace::Lane::Fault, n);
                std::thread::sleep(self.plan.hang_duration());
            }
        }
    }
}

impl<C: Comm> FaultyComm<C> {
    /// Deliver a reorder-stashed message now. Called before collectives
    /// (a peer blocked on the held message may never reach the barrier
    /// otherwise — reordering must delay traffic, not deadlock it) and
    /// at shutdown (the stashed message may have been the last send).
    fn flush_stash(&self) {
        if let Some(held) = self.stash.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = self.inner.send_from_checked(held.to, held.tag, &held.bytes);
        }
    }
}

impl<C: Comm> Drop for FaultyComm<C> {
    fn drop(&mut self) {
        self.flush_stash();
    }
}

impl<C: Comm> Comm for FaultyComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        self.send_from_checked(to, tag, bytes).unwrap_or_else(|e| panic!("{e}"));
    }

    fn send_from_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        self.tick();
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        if rng.hit(self.plan.drop) {
            return Ok(()); // the message vanishes on the wire
        }
        if rng.hit(self.plan.delay) {
            std::thread::sleep(self.plan.delay_duration());
        }
        let duplicate = rng.hit(self.plan.duplicate);
        let corrupt = rng.hit(self.plan.corrupt);
        let reorder = rng.hit(self.plan.reorder);
        let flip = rng.next_u64();
        drop(rng);

        let mut scratch;
        let payload: &[u8] = if corrupt && !bytes.is_empty() {
            scratch = bytes.to_vec();
            let i = (flip as usize) % scratch.len();
            scratch[i] ^= 0x01 << (flip >> 32 & 7);
            &scratch
        } else {
            bytes
        };

        let mut stash = self.stash.lock().unwrap_or_else(|e| e.into_inner());
        if reorder && stash.is_none() {
            // Hold this message back; it travels after the next send.
            *stash = Some(Stashed { to, tag, bytes: payload.to_vec() });
            return Ok(());
        }
        self.inner.send_from_checked(to, tag, payload)?;
        if duplicate {
            self.inner.send_from_checked(to, tag, payload)?;
        }
        if let Some(held) = stash.take() {
            self.inner.send_from_checked(held.to, held.tag, &held.bytes)?;
        }
        Ok(())
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        self.inner.recv_into(from, tag, out)
    }

    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        self.inner.recv_into_checked(from, tag, out)
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        self.inner.try_recv_into(from, tag, out)
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        self.inner.wait_any(posts)
    }

    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        self.inner.wait_any_checked(posts)
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        self.tick();
        self.flush_stash();
        self.inner.allreduce(vals, op)
    }

    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        self.tick();
        self.flush_stash();
        self.inner.allreduce_checked(vals, op)
    }

    fn barrier(&self) {
        self.tick();
        self.flush_stash();
        self.inner.barrier()
    }

    fn barrier_checked(&self) -> CommResult<()> {
        self.tick();
        self.flush_stash();
        self.inner.barrier_checked()
    }

    fn coll_stats(&self) -> Option<crate::collectives::CollStats> {
        self.inner.coll_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn plan_json_roundtrip_with_events() {
        let text = r#"{
            "seed": 42,
            "drop": 0.1,
            "corrupt": 0.05,
            "hang_millis": 250,
            "events": [
                {"kind": "CrashRank", "rank": 2, "at_exchange": 17},
                {"kind": "HangRank", "rank": 0, "at_exchange": 3}
            ]
        }"#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop, Some(0.1));
        assert_eq!(plan.delay, None);
        assert_eq!(plan.hang_duration(), Duration::from_millis(250));
        let ev = plan.event_at(2, 17).expect("crash event");
        assert_eq!(ev.kind, FaultKind::CrashRank);
        assert!(plan.event_at(2, 16).is_none());
        assert!(plan.event_at(1, 17).is_none());
        // Round-trip through to_json preserves the plan.
        let again = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(again.seed, plan.seed);
        assert_eq!(again.events.as_ref().unwrap().len(), 2);
        assert_eq!(again.events.unwrap()[1].kind, FaultKind::HangRank);
    }

    #[test]
    fn bad_plan_is_a_loud_error() {
        let err = FaultPlan::from_json("{\"seed\": \"not a number\"}").unwrap_err();
        assert!(err.contains("bad fault plan"), "{err}");
        assert!(FaultPlan::from_json("not json at all").is_err());
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_rank_independent() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::for_rank(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::for_rank(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, rank) → same stream");
        let c: Vec<u64> = {
            let mut r = SplitMix64::for_rank(7, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different ranks → different streams");
        // Uniformity smoke: f64 draws stay in [0, 1).
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn without_wire_faults_keeps_only_scripted_events() {
        let mut plan = FaultPlan::clean(4);
        plan.drop = Some(0.1);
        plan.corrupt = Some(0.2);
        plan.reorder = Some(0.3);
        plan.events =
            Some(vec![FaultEvent { kind: FaultKind::CrashRank, rank: 2, at_exchange: 40 }]);
        let stripped = plan.without_wire_faults();
        assert!(!stripped.has_wire_faults());
        assert!(stripped.event_at(2, 40).is_some(), "scripted events survive the strip");
        assert_eq!(stripped.seed, 4);
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let plan = FaultPlan::clean(9);
        assert!(!plan.has_wire_faults());
        let c = FaultyComm::new(SelfComm, plan);
        // Collectives pass through untouched and count exchanges.
        assert_eq!(c.allreduce_scalar(2.5, ReduceOp::Sum), 2.5);
        c.barrier();
        assert_eq!(c.exchanges(), 2);
    }

    #[test]
    #[should_panic(expected = "crashed by fault plan at exchange 1")]
    fn scripted_crash_fires_at_exact_exchange_index() {
        let mut plan = FaultPlan::clean(1);
        plan.events =
            Some(vec![FaultEvent { kind: FaultKind::CrashRank, rank: 0, at_exchange: 1 }]);
        let c = FaultyComm::new(SelfComm, plan);
        c.barrier(); // exchange 0 — survives
        c.barrier(); // exchange 1 — crashes
    }

    #[test]
    fn scripted_hang_stalls_then_resumes() {
        let mut plan = FaultPlan::clean(1);
        plan.hang_millis = Some(60);
        plan.events = Some(vec![FaultEvent { kind: FaultKind::HangRank, rank: 0, at_exchange: 0 }]);
        let c = FaultyComm::new(SelfComm, plan);
        let t0 = std::time::Instant::now();
        c.barrier();
        assert!(t0.elapsed() >= Duration::from_millis(60), "the hang really stalls");
        c.barrier(); // resumes afterwards
        assert_eq!(c.exchanges(), 2);
    }
}
