//! Halo exchange execution over a [`Comm`].
//!
//! The geometric plan ([`hpgmxp_geometry::HaloPlan`]) says *what* to
//! exchange; this module actually moves the data. Two interfaces are
//! provided, mirroring the two code paths in the paper:
//!
//! * [`HaloExchange::exchange`] — the blocking pattern of the reference
//!   implementation (pack, send, receive, unpack, then compute);
//! * [`HaloExchange::begin`] / [`HaloExchange::finish`] — the
//!   split-phase pattern of the optimized implementation (§3.2.3): after
//!   `begin`, the caller updates interior rows while messages are in
//!   flight, and calls `finish` before touching boundary rows. The
//!   sequencing constraint the paper implements with a GPU event —
//!   "the interior kernel may only start after boundary entries have
//!   been packed" — is satisfied structurally here because `begin`
//!   returns only after packing.
//!
//! Message volume halves in `f32`, which is precisely the halo-traffic
//! benefit the mixed-precision solver enjoys.

use crate::comm::{pack, unpack, Comm};
use crate::timeline::{Stream, Timeline};
use hpgmxp_geometry::HaloPlan;
use hpgmxp_sparse::Scalar;

/// Executor for one level's halo exchange.
#[derive(Debug, Clone)]
pub struct HaloExchange {
    plan: HaloPlan,
    n_local: usize,
}

impl HaloExchange {
    /// Wrap a geometric plan.
    pub fn new(plan: HaloPlan) -> Self {
        let n_local = plan.n_local();
        HaloExchange { plan, n_local }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Owned entries per vector; ghosts start at this offset.
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Ghost entries appended to each distributed vector.
    pub fn num_ghosts(&self) -> usize {
        self.plan.num_ghosts
    }

    /// Remap the send lists after a symmetric reordering of the local
    /// rows (the multicolor ordering of §3.2.1 changes which local slot
    /// holds each boundary point; the wire order is unchanged).
    pub fn remap_send_indices(&mut self, perm: &hpgmxp_sparse::Permutation) {
        for nbr in &mut self.plan.neighbors {
            perm.remap_indices(&mut nbr.send_indices);
        }
    }

    /// Pack boundary values of `x` and send them to every neighbor.
    /// Returns after all sends are buffered (non-blocking transport).
    pub fn begin<S: Scalar, C: Comm>(&self, comm: &C, tag: u64, x: &[S], tl: &Timeline) {
        assert!(x.len() >= self.n_local + self.num_ghosts());
        let mut buf: Vec<S> = Vec::new();
        for nbr in &self.plan.neighbors {
            let _pack_span = tl.span("halo pack", Stream::Halo);
            buf.clear();
            buf.extend(nbr.send_indices.iter().map(|&i| x[i as usize]));
            drop(_pack_span);
            let _send_span = tl.span("halo send", Stream::Comm);
            comm.send_bytes(nbr.rank as usize, tag, pack(&buf));
        }
    }

    /// Receive from every neighbor and scatter into the ghost region of
    /// `x`. Blocks until all messages have arrived.
    pub fn finish<S: Scalar, C: Comm>(&self, comm: &C, tag: u64, x: &mut [S], tl: &Timeline) {
        assert!(x.len() >= self.n_local + self.num_ghosts());
        for nbr in &self.plan.neighbors {
            let bytes = {
                let _wait_span = tl.span("halo wait", Stream::Comm);
                comm.recv_bytes(nbr.rank as usize, tag)
            };
            let _unpack_span = tl.span("halo unpack", Stream::Copy);
            let start = self.n_local + nbr.recv_start as usize;
            unpack(&bytes, &mut x[start..start + nbr.count as usize]);
        }
    }

    /// Blocking exchange: `begin` immediately followed by `finish`
    /// (the reference implementation's non-overlapped pattern, §3.1).
    pub fn exchange<S: Scalar, C: Comm>(&self, comm: &C, tag: u64, x: &mut [S], tl: &Timeline) {
        self.begin(comm, tag, x, tl);
        self.finish(comm, tag, x, tl);
    }

    /// Values sent per exchange (per rank), for communication-volume
    /// accounting.
    pub fn send_volume(&self) -> usize {
        self.plan.send_volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_world::run_spmd;
    use hpgmxp_geometry::{HaloPlan, LocalGrid, ProcGrid};

    /// Build the canonical distributed test vector: every owned entry
    /// holds its own *global* index, so after an exchange each ghost
    /// slot must hold the global index of the remote point it mirrors.
    fn global_id_vector(lg: &LocalGrid, num_ghosts: usize) -> Vec<f64> {
        let g = lg.global();
        let mut x = vec![-1.0; lg.total_points() + num_ghosts];
        for (idx, xi) in x[..lg.total_points()].iter_mut().enumerate() {
            let (ix, iy, iz) = lg.coords(idx);
            let (gx, gy, gz) = lg.to_global(ix, iy, iz);
            *xi = g.index(gx, gy, gz) as f64;
        }
        x
    }

    fn check_ghosts(lg: &LocalGrid, plan: &HaloPlan, x: &[f64]) {
        let g = lg.global();
        let n = lg.total_points();
        let (nx, ny, nz) = (lg.nx as i64, lg.ny as i64, lg.nz as i64);
        let (bx, by, bz) = lg.base();
        for ez in -1..=nz {
            for ey in -1..=ny {
                for ex in -1..=nx {
                    if let Some(gid) = plan.ghost_index(ex, ey, ez) {
                        let (gx, gy, gz) = (bx as i64 + ex, by as i64 + ey, bz as i64 + ez);
                        assert!(g.contains(gx, gy, gz));
                        let expect = g.index(gx as u64, gy as u64, gz as u64) as f64;
                        assert_eq!(
                            x[n + gid],
                            expect,
                            "ghost at ({ex},{ey},{ez}) on rank {:?}",
                            lg.rank_coords
                        );
                    }
                }
            }
        }
    }

    fn exchange_world(procs: ProcGrid, n: u32) {
        let p = procs.size() as usize;
        run_spmd(p, move |c| {
            let lg = LocalGrid::new((n, n, n), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let mut x = global_id_vector(&lg, hx.num_ghosts());
            let tl = Timeline::disabled();
            hx.exchange(&c, 0, &mut x, &tl);
            check_ghosts(&lg, hx.plan(), &x);
        });
    }

    #[test]
    fn exchange_2_ranks() {
        exchange_world(ProcGrid::new(2, 1, 1), 3);
    }

    #[test]
    fn exchange_8_ranks_cube() {
        exchange_world(ProcGrid::new(2, 2, 2), 4);
    }

    #[test]
    fn exchange_27_ranks_cube() {
        exchange_world(ProcGrid::new(3, 3, 3), 2);
    }

    #[test]
    fn exchange_anisotropic_grid() {
        exchange_world(ProcGrid::new(4, 2, 1), 2);
    }

    #[test]
    fn split_phase_matches_blocking() {
        let procs = ProcGrid::new(2, 2, 1);
        run_spmd(4, move |c| {
            let lg = LocalGrid::new((4, 4, 4), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let tl = Timeline::disabled();

            let mut x1 = global_id_vector(&lg, hx.num_ghosts());
            hx.exchange(&c, 1, &mut x1, &tl);

            let mut x2 = global_id_vector(&lg, hx.num_ghosts());
            hx.begin(&c, 2, &x2, &tl);
            // Simulated interior work between the phases.
            std::hint::black_box(x2.iter().sum::<f64>());
            hx.finish(&c, 2, &mut x2, &tl);

            assert_eq!(x1, x2);
        });
    }

    #[test]
    fn f32_exchange_delivers_values() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((2, 2, 2), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![0.0f32; n + hx.num_ghosts()];
            for (i, v) in x[..n].iter_mut().enumerate() {
                *v = (c.rank() * 100 + i) as f32;
            }
            let tl = Timeline::disabled();
            hx.exchange(&c, 0, &mut x, &tl);
            // Rank 0's +x face is its x=1 column: local indices 1,3,5,7
            // → values 1,3,5,7 (+100 on rank 1's side).
            if c.rank() == 1 {
                assert_eq!(&x[n..n + 4], &[1.0, 3.0, 5.0, 7.0]);
            } else {
                assert_eq!(&x[n..n + 4], &[100.0, 102.0, 104.0, 106.0]);
            }
        });
    }

    #[test]
    fn timeline_captures_halo_events() {
        let procs = ProcGrid::new(2, 1, 1);
        let counts = run_spmd(2, move |c| {
            let lg = LocalGrid::new((2, 2, 2), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![1.0f64; n + hx.num_ghosts()];
            let tl = Timeline::enabled();
            hx.exchange(&c, 0, &mut x, &tl);
            tl.events().len()
        });
        // pack + send + wait + unpack per neighbor (1 neighbor each).
        for n in counts {
            assert_eq!(n, 4);
        }
    }
}
