//! Halo exchange execution over a [`Comm`].
//!
//! The geometric plan ([`hpgmxp_geometry::HaloPlan`]) says *what* to
//! exchange; this module actually moves the data. Two interfaces are
//! provided, mirroring the two code paths in the paper:
//!
//! * [`HaloExchange::exchange`] — the blocking pattern of the reference
//!   implementation (pack, send, receive, unpack, then compute);
//! * [`HaloExchange::begin`] / [`ActiveExchange::finish`] — the
//!   split-phase pattern of the optimized implementation (§3.2.3): after
//!   `begin`, the caller updates interior rows while messages are in
//!   flight, and calls `finish` before touching boundary rows. The
//!   sequencing constraint the paper implements with a GPU event —
//!   "the interior kernel may only start after boundary entries have
//!   been packed" — is satisfied structurally here because `begin`
//!   returns only after packing.
//!
//! The engine is **allocation-free at steady state**: every neighbor
//! has owned send/recv staging buffers sized once (at the widest
//! precision) from the plan, and the transport copies through pooled
//! backend storage. `begin` returns a type-state [`ActiveExchange`]
//! handle that `finish` consumes — calling `finish` without `begin` is
//! a compile error, and a second `begin` while one exchange is active
//! panics immediately instead of corrupting the staging buffers.
//! `finish` drains neighbors in *arrival order* ([`Comm::wait_any`])
//! and unpacks each message while later ones are still in flight,
//! recording a per-exchange [`OverlapRecord`] so the hidden/exposed
//! split of figure 9 is measured, not assumed.
//!
//! Message volume halves in `f32` (quarters in `f16`), which is
//! precisely the halo-traffic benefit the mixed-precision solver
//! enjoys.

use crate::comm::{unpack_wire, Comm, RecvPost};
use crate::error::CommResult;
use crate::timeline::{OverlapRecord, Stream, Timeline};
use hpgmxp_geometry::HaloPlan;
use hpgmxp_sparse::Scalar;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::MutexGuard;

/// Upper bound on halo neighbors of a 27-point stencil rank, used to
/// size the stack-allocated receive-post array in `finish`.
const MAX_NEIGHBORS: usize = 26;

/// Widest scalar that travels through a halo (f64): staging buffers are
/// sized once for it so every precision reuses them without growing.
const MAX_SCALAR_BYTES: usize = 8;

/// Per-neighbor persistent staging storage, sized at construction.
#[derive(Debug)]
struct HaloBufs {
    /// One send staging buffer per neighbor (capacity `count * 8`).
    send: Vec<Vec<u8>>,
    /// One receive staging buffer per neighbor (capacity `count * 8`).
    recv: Vec<Vec<u8>>,
}

impl HaloBufs {
    fn sized_for(plan: &HaloPlan, max_wire_bytes: usize) -> Self {
        let cap =
            |n: &hpgmxp_geometry::Neighbor| Vec::with_capacity(n.staging_bytes(max_wire_bytes));
        HaloBufs {
            send: plan.neighbors.iter().map(cap).collect(),
            recv: plan.neighbors.iter().map(cap).collect(),
        }
    }
}

/// Executor for one level's halo exchange, with owned per-neighbor
/// staging buffers.
#[derive(Debug)]
pub struct HaloExchange {
    plan: HaloPlan,
    n_local: usize,
    bufs: Mutex<HaloBufs>,
}

impl Clone for HaloExchange {
    /// Cloning re-derives fresh staging buffers from the plan; an
    /// in-flight exchange is never cloned into the copy.
    fn clone(&self) -> Self {
        HaloExchange::new(self.plan.clone())
    }
}

impl HaloExchange {
    /// Wrap a geometric plan, sizing the persistent staging buffers
    /// once (at the widest precision) from its neighbor counts.
    pub fn new(plan: HaloPlan) -> Self {
        Self::new_sized(plan, MAX_SCALAR_BYTES)
    }

    /// Wrap a plan with staging buffers sized for a policy-chosen
    /// widest wire scalar: a level whose exchanges never travel wider
    /// than `max_wire_bytes` (e.g. a coarse level used only by an
    /// fp16-wire inner solve) reserves proportionally less staging
    /// memory. Exceeding the reservation later is not unsound — the
    /// `Vec`s grow — but it forfeits the zero-allocation steady state.
    pub fn new_sized(plan: HaloPlan, max_wire_bytes: usize) -> Self {
        let n_local = plan.n_local();
        let bufs = Mutex::new(HaloBufs::sized_for(&plan, max_wire_bytes));
        HaloExchange { plan, n_local, bufs }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Owned entries per vector; ghosts start at this offset.
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Ghost entries appended to each distributed vector.
    pub fn num_ghosts(&self) -> usize {
        self.plan.num_ghosts
    }

    /// Remap the send lists after a symmetric reordering of the local
    /// rows (the multicolor ordering of §3.2.1 changes which local slot
    /// holds each boundary point; the wire order is unchanged).
    pub fn remap_send_indices(&mut self, perm: &hpgmxp_sparse::Permutation) {
        for nbr in &mut self.plan.neighbors {
            perm.remap_indices(&mut nbr.send_indices);
        }
    }

    /// Pack boundary values of `x` into the persistent staging buffers
    /// and send them to every neighbor (non-blocking transport; the
    /// backend copies out of the staging buffers before returning).
    ///
    /// Returns the type-state handle for this exchange: interior
    /// compute may run while it is alive, and [`ActiveExchange::finish`]
    /// consumes it to scatter the arriving ghosts. Beginning a second
    /// exchange on the same `HaloExchange` while a handle is alive is a
    /// usage error and panics.
    pub fn begin<'a, S: Scalar, C: Comm>(
        &'a self,
        comm: &C,
        tag: u64,
        x: &[S],
        tl: &Timeline,
    ) -> ActiveExchange<'a, S> {
        self.begin_wire(comm, tag, x, S::BYTES, tl)
    }

    /// [`HaloExchange::begin`] that reports transport faults instead of
    /// panicking — the fault-tolerant solver path.
    pub fn begin_checked<'a, S: Scalar, C: Comm>(
        &'a self,
        comm: &C,
        tag: u64,
        x: &[S],
        tl: &Timeline,
    ) -> CommResult<ActiveExchange<'a, S>> {
        self.begin_wire_checked(comm, tag, x, S::BYTES, tl)
    }

    /// [`HaloExchange::begin`] with the ghost **wire format** chosen at
    /// runtime, independently of the compute scalar `S` (the precision
    /// policy's wire axis): boundary values are rounded to
    /// `wire_bytes`-wide wire scalars during the pack, and `finish`
    /// widens arriving ghosts back into `S`. `wire_bytes == S::BYTES`
    /// is exactly the native exchange.
    pub fn begin_wire<'a, S: Scalar, C: Comm>(
        &'a self,
        comm: &C,
        tag: u64,
        x: &[S],
        wire_bytes: usize,
        tl: &Timeline,
    ) -> ActiveExchange<'a, S> {
        self.begin_wire_checked(comm, tag, x, wire_bytes, tl).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`HaloExchange::begin_wire`] that reports transport faults
    /// instead of panicking. On error the staging-buffer lock is
    /// released, so a caller that recovers can begin a fresh exchange.
    pub fn begin_wire_checked<'a, S: Scalar, C: Comm>(
        &'a self,
        comm: &C,
        tag: u64,
        x: &[S],
        wire_bytes: usize,
        tl: &Timeline,
    ) -> CommResult<ActiveExchange<'a, S>> {
        assert!(x.len() >= self.n_local + self.num_ghosts());
        let mut bufs = self
            .bufs
            .try_lock()
            .expect("halo begin() while a previous exchange on this level is still active");
        // Untraced exchanges (the production hot path) skip every clock
        // read; the timing bookkeeping exists only for overlap records.
        let traced = tl.is_traced();
        let mut pack_secs = 0.0;
        let mut bytes_sent = 0usize;
        for (nbr, buf) in self.plan.neighbors.iter().zip(bufs.send.iter_mut()) {
            let t0 = if traced { tl.now() } else { 0.0 };
            {
                let _pack_span = tl.span("halo pack", Stream::Halo);
                pack_gather_into(x, &nbr.send_indices, wire_bytes, buf);
            }
            if traced {
                pack_secs += tl.now() - t0;
            }
            let _send_span = tl.span("halo send", Stream::Comm);
            comm.send_from_checked(nbr.rank as usize, tag, buf)?;
            bytes_sent += buf.len();
        }
        Ok(ActiveExchange {
            hx: self,
            bufs,
            tag,
            wire_bytes,
            pack_secs,
            bytes_sent,
            begin_end: if traced { tl.now() } else { 0.0 },
            _precision: PhantomData,
        })
    }

    /// Blocking exchange: `begin` immediately followed by `finish`
    /// (the reference implementation's non-overlapped pattern, §3.1).
    pub fn exchange<S: Scalar, C: Comm>(&self, comm: &C, tag: u64, x: &mut [S], tl: &Timeline) {
        self.begin(comm, tag, x, tl).finish(comm, x, tl);
    }

    /// [`HaloExchange::exchange`] that reports transport faults instead
    /// of panicking.
    pub fn exchange_checked<S: Scalar, C: Comm>(
        &self,
        comm: &C,
        tag: u64,
        x: &mut [S],
        tl: &Timeline,
    ) -> CommResult<()> {
        self.begin_checked(comm, tag, x, tl)?.finish_checked(comm, x, tl)
    }

    /// Blocking exchange at an explicit wire width (see
    /// [`HaloExchange::begin_wire`]).
    pub fn exchange_wire<S: Scalar, C: Comm>(
        &self,
        comm: &C,
        tag: u64,
        x: &mut [S],
        wire_bytes: usize,
        tl: &Timeline,
    ) {
        self.begin_wire(comm, tag, x, wire_bytes, tl).finish(comm, x, tl);
    }

    /// [`HaloExchange::exchange_wire`] that reports transport faults
    /// instead of panicking.
    pub fn exchange_wire_checked<S: Scalar, C: Comm>(
        &self,
        comm: &C,
        tag: u64,
        x: &mut [S],
        wire_bytes: usize,
        tl: &Timeline,
    ) -> CommResult<()> {
        self.begin_wire_checked(comm, tag, x, wire_bytes, tl)?.finish_checked(comm, x, tl)
    }

    /// Values sent per exchange (per rank), for communication-volume
    /// accounting.
    pub fn send_volume(&self) -> usize {
        self.plan.send_volume()
    }

    /// Bytes sent per exchange at precision `S` — the same number the
    /// timeline records on the wire and the network model charges
    /// (`halo_values × S::BYTES`), so figure 9 and the roofline use one
    /// accounting.
    pub fn send_bytes<S: Scalar>(&self) -> usize {
        self.plan.send_volume_bytes(S::BYTES)
    }

    /// Bytes sent per exchange at a runtime-chosen wire width —
    /// `send_volume × wire_bytes`, the quantity a wire-precision policy
    /// shrinks and the policy-aware network model charges.
    pub fn send_bytes_wire(&self, wire_bytes: usize) -> usize {
        self.plan.send_volume_bytes(wire_bytes)
    }
}

/// Type-state handle of an in-flight split-phase exchange at precision
/// `S`, returned by [`HaloExchange::begin`] and consumed by
/// [`ActiveExchange::finish`]. Holding it is holding the level's
/// staging buffers: misuse (finish-without-begin, double-finish) is a
/// compile error, and begin-while-active panics at the `begin` call.
#[must_use = "an exchange left unfinished strands neighbor messages; call finish()"]
pub struct ActiveExchange<'a, S: Scalar> {
    hx: &'a HaloExchange,
    bufs: MutexGuard<'a, HaloBufs>,
    tag: u64,
    /// Wire width of this exchange's ghost payloads (2/4/8).
    wire_bytes: usize,
    pack_secs: f64,
    bytes_sent: usize,
    begin_end: f64,
    _precision: PhantomData<fn(S)>,
}

impl<S: Scalar> ActiveExchange<'_, S> {
    /// Message tag of this exchange.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Receive from every neighbor — in whatever order the messages
    /// land — and scatter each into the ghost region of `x` while later
    /// messages are still in flight. Consumes the handle; records an
    /// [`OverlapRecord`] on the timeline.
    pub fn finish<C: Comm>(self, comm: &C, x: &mut [S], tl: &Timeline) {
        self.finish_checked(comm, x, tl).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ActiveExchange::finish`] that reports transport faults (a dead
    /// or hung neighbor, a corrupt frame) instead of panicking. The
    /// handle is consumed either way, so the staging buffers are free
    /// for a post-recovery exchange.
    pub fn finish_checked<C: Comm>(
        mut self,
        comm: &C,
        x: &mut [S],
        tl: &Timeline,
    ) -> CommResult<()> {
        let hx = self.hx;
        assert!(x.len() >= hx.n_local + hx.num_ghosts());
        let traced = tl.is_traced();
        let window = if traced { tl.now() - self.begin_end } else { 0.0 };

        let nbrs = &hx.plan.neighbors;
        assert!(nbrs.len() <= MAX_NEIGHBORS);
        let mut posts: [Option<RecvPost>; MAX_NEIGHBORS] = [const { None }; MAX_NEIGHBORS];
        for (slot, (nbr, buf)) in nbrs.iter().zip(self.bufs.recv.iter_mut()).enumerate() {
            buf.resize(nbr.count as usize * self.wire_bytes, 0);
            posts[slot] = Some(RecvPost::new(nbr.rank as usize, self.tag, buf));
        }

        let mut wire_wait = 0.0;
        let mut unpack_secs = 0.0;
        let mut bytes_received = 0usize;
        loop {
            let t0 = if traced { tl.now() } else { 0.0 };
            let completed = {
                let _wait_span = tl.span("halo wait", Stream::Comm);
                comm.wait_any_checked(&mut posts[..nbrs.len()])?
            };
            let Some((slot, post)) = completed else { break };
            let t1 = if traced {
                let t1 = tl.now();
                wire_wait += t1 - t0;
                t1
            } else {
                0.0
            };
            let _unpack_span = tl.span("halo unpack", Stream::Copy);
            let nbr = &nbrs[slot];
            let start = hx.n_local + nbr.recv_start as usize;
            unpack_wire(post.buf, self.wire_bytes, &mut x[start..start + nbr.count as usize]);
            bytes_received += post.buf.len();
            if traced {
                unpack_secs += tl.now() - t1;
            }
        }

        if traced {
            tl.add_overlap(OverlapRecord {
                tag: self.tag,
                bytes_sent: self.bytes_sent,
                bytes_received,
                pack: self.pack_secs,
                window,
                wire_wait,
                unpack: unpack_secs,
            });
        }
        // Dropping `self` releases the staging buffers for the next
        // exchange on this level.
        Ok(())
    }
}

/// Gather `x[indices]` into `buf` through the one wire encoder
/// ([`crate::comm::encode_slice_wire_append`], also behind `pack`/
/// `send_slice`, so send packing can never desynchronize from
/// setup-path packing), rounding each value to the exchange's wire
/// width. Indices are gathered into a stack-resident staging chunk so
/// the wire conversion runs through the batch (SIMD) converters.
/// `buf` is cleared first; with the staging capacity reserved at
/// construction this never allocates.
fn pack_gather_into<S: Scalar>(x: &[S], indices: &[u32], wire_bytes: usize, buf: &mut Vec<u8>) {
    const CHUNK: usize = 256;
    buf.clear();
    buf.reserve(indices.len() * wire_bytes);
    let mut stage = [S::ZERO; CHUNK];
    for idx in indices.chunks(CHUNK) {
        for (s, &i) in stage.iter_mut().zip(idx.iter()) {
            *s = x[i as usize];
        }
        crate::comm::encode_slice_wire_append(&stage[..idx.len()], wire_bytes, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_world::run_threads as run_spmd;
    use hpgmxp_geometry::{HaloPlan, LocalGrid, ProcGrid};

    /// Build the canonical distributed test vector: every owned entry
    /// holds its own *global* index, so after an exchange each ghost
    /// slot must hold the global index of the remote point it mirrors.
    fn global_id_vector(lg: &LocalGrid, num_ghosts: usize) -> Vec<f64> {
        let g = lg.global();
        let mut x = vec![-1.0; lg.total_points() + num_ghosts];
        for (idx, xi) in x[..lg.total_points()].iter_mut().enumerate() {
            let (ix, iy, iz) = lg.coords(idx);
            let (gx, gy, gz) = lg.to_global(ix, iy, iz);
            *xi = g.index(gx, gy, gz) as f64;
        }
        x
    }

    fn check_ghosts(lg: &LocalGrid, plan: &HaloPlan, x: &[f64]) {
        let g = lg.global();
        let n = lg.total_points();
        let (nx, ny, nz) = (lg.nx as i64, lg.ny as i64, lg.nz as i64);
        let (bx, by, bz) = lg.base();
        for ez in -1..=nz {
            for ey in -1..=ny {
                for ex in -1..=nx {
                    if let Some(gid) = plan.ghost_index(ex, ey, ez) {
                        let (gx, gy, gz) = (bx as i64 + ex, by as i64 + ey, bz as i64 + ez);
                        assert!(g.contains(gx, gy, gz));
                        let expect = g.index(gx as u64, gy as u64, gz as u64) as f64;
                        assert_eq!(
                            x[n + gid],
                            expect,
                            "ghost at ({ex},{ey},{ez}) on rank {:?}",
                            lg.rank_coords
                        );
                    }
                }
            }
        }
    }

    fn exchange_world(procs: ProcGrid, n: u32) {
        let p = procs.size() as usize;
        run_spmd(p, move |c| {
            let lg = LocalGrid::new((n, n, n), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let mut x = global_id_vector(&lg, hx.num_ghosts());
            let tl = Timeline::disabled();
            hx.exchange(&c, 0, &mut x, &tl);
            check_ghosts(&lg, hx.plan(), &x);
        });
    }

    #[test]
    fn exchange_2_ranks() {
        exchange_world(ProcGrid::new(2, 1, 1), 3);
    }

    #[test]
    fn exchange_8_ranks_cube() {
        exchange_world(ProcGrid::new(2, 2, 2), 4);
    }

    #[test]
    fn exchange_27_ranks_cube() {
        exchange_world(ProcGrid::new(3, 3, 3), 2);
    }

    #[test]
    fn exchange_anisotropic_grid() {
        exchange_world(ProcGrid::new(4, 2, 1), 2);
    }

    #[test]
    fn split_phase_matches_blocking() {
        let procs = ProcGrid::new(2, 2, 1);
        run_spmd(4, move |c| {
            let lg = LocalGrid::new((4, 4, 4), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let tl = Timeline::disabled();

            let mut x1 = global_id_vector(&lg, hx.num_ghosts());
            hx.exchange(&c, 1, &mut x1, &tl);

            let mut x2 = global_id_vector(&lg, hx.num_ghosts());
            let active = hx.begin(&c, 2, &x2, &tl);
            // Simulated interior work between the phases.
            std::hint::black_box(x2.iter().sum::<f64>());
            active.finish(&c, &mut x2, &tl);

            assert_eq!(x1, x2);
        });
    }

    #[test]
    fn repeated_exchanges_reuse_buffers_across_precisions() {
        // f64 then f32 then f64 again through the same staging buffers;
        // every exchange must deliver correct ghosts.
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((3, 3, 3), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let tl = Timeline::disabled();
            for round in 0..5u64 {
                let mut x = global_id_vector(&lg, hx.num_ghosts());
                hx.exchange(&c, round * 2, &mut x, &tl);
                check_ghosts(&lg, hx.plan(), &x);

                let n = lg.total_points();
                let mut x32 = vec![0.0f32; n + hx.num_ghosts()];
                for (i, v) in x32[..n].iter_mut().enumerate() {
                    *v = (c.rank() * 1000 + i) as f32;
                }
                hx.exchange(&c, round * 2 + 1, &mut x32, &tl);
                let expect_base = if c.rank() == 0 { 1000.0 } else { 0.0 };
                // +x face of rank 0 is x=2 column: indices 2,5,8,...
                // -x face of rank 1 is x=0 column: indices 0,3,6,...
                let ghost0 = x32[n];
                if c.rank() == 1 {
                    assert_eq!(ghost0, expect_base + 2.0);
                } else {
                    assert_eq!(ghost0, expect_base);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn begin_while_active_panics() {
        // Single-rank world: no neighbors, so begin packs nothing, but
        // the staging-buffer lock is still held by the live handle.
        let lg = LocalGrid::new((2, 2, 2), ProcGrid::new(1, 1, 1), 0);
        let hx = HaloExchange::new(HaloPlan::build(&lg));
        let tl = Timeline::disabled();
        let c = crate::comm::SelfComm;
        let x = vec![0.0f64; lg.total_points()];
        let _active = hx.begin(&c, 0, &x, &tl);
        let _second = hx.begin(&c, 1, &x, &tl); // must panic
    }

    #[test]
    fn f32_exchange_delivers_values() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((2, 2, 2), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![0.0f32; n + hx.num_ghosts()];
            for (i, v) in x[..n].iter_mut().enumerate() {
                *v = (c.rank() * 100 + i) as f32;
            }
            let tl = Timeline::disabled();
            hx.exchange(&c, 0, &mut x, &tl);
            // Rank 0's +x face is its x=1 column: local indices 1,3,5,7
            // → values 1,3,5,7 (+100 on rank 1's side).
            if c.rank() == 1 {
                assert_eq!(&x[n..n + 4], &[1.0, 3.0, 5.0, 7.0]);
            } else {
                assert_eq!(&x[n..n + 4], &[100.0, 102.0, 104.0, 106.0]);
            }
        });
    }

    #[test]
    fn f16_exchange_delivers_values() {
        use hpgmxp_sparse::Half;
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((2, 2, 2), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![Half::from_f32(0.0); n + hx.num_ghosts()];
            for (i, v) in x[..n].iter_mut().enumerate() {
                *v = Half::from_f32((c.rank() * 100 + i) as f32);
            }
            let tl = Timeline::disabled();
            hx.exchange(&c, 0, &mut x, &tl);
            let got: Vec<f32> = x[n..n + 4].iter().map(|h| h.to_f32()).collect();
            if c.rank() == 1 {
                assert_eq!(got, vec![1.0, 3.0, 5.0, 7.0]);
            } else {
                assert_eq!(got, vec![100.0, 102.0, 104.0, 106.0]);
            }
        });
    }

    #[test]
    fn fp16_wire_under_f64_compute_rounds_ghosts() {
        // The wire axis decoupled from compute: f64 vectors, 2-byte
        // ghosts. Received ghosts equal the fp16 rounding of the
        // sender's values, at a quarter of the f64 wire volume.
        use hpgmxp_sparse::half::f16_bits_to_f32;
        use hpgmxp_sparse::half::f32_to_f16_bits;
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((3, 3, 3), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![0.0f64; n + hx.num_ghosts()];
            for (i, v) in x[..n].iter_mut().enumerate() {
                *v = 0.1 + (c.rank() * 100 + i) as f64 * 0.01;
            }
            let sent: Vec<f64> = x[..n].to_vec();
            let tl = Timeline::disabled();
            hx.exchange_wire(&c, 0, &mut x, 2, &tl);
            // Ghost 0 mirrors the peer's first boundary point; +x face
            // of rank 0 is column x=2 (local index 2), -x face of rank
            // 1 is column x=0 (local index 0).
            let peer_first = if c.rank() == 0 {
                // our ghost mirrors rank 1's x=0 column, index 0
                0.1 + (100) as f64 * 0.01
            } else {
                0.1 + 2.0 * 0.01
            };
            let expect = f16_bits_to_f32(f32_to_f16_bits(peer_first as f32)) as f64;
            assert_eq!(x[n], expect, "rank {}", c.rank());
            // Wire accounting: a 3x3 face at 2 bytes.
            assert_eq!(hx.send_bytes_wire(2), 9 * 2);
            assert_eq!(hx.send_bytes_wire(8), 9 * 8);
            // Owned values untouched.
            assert_eq!(&x[..n], &sent[..]);
        });
    }

    #[test]
    fn wire_native_matches_typed_exchange_bitwise() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let lg = LocalGrid::new((3, 3, 3), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let tl = Timeline::disabled();
            let mut a = global_id_vector(&lg, hx.num_ghosts());
            let mut b = a.clone();
            hx.exchange(&c, 0, &mut a, &tl);
            hx.exchange_wire(&c, 1, &mut b, 8, &tl);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn timeline_captures_halo_events_and_overlap_record() {
        let procs = ProcGrid::new(2, 1, 1);
        let per_rank = run_spmd(2, move |c| {
            let lg = LocalGrid::new((2, 2, 2), procs, c.rank() as u32);
            let hx = HaloExchange::new(HaloPlan::build(&lg));
            let n = lg.total_points();
            let mut x = vec![1.0f64; n + hx.num_ghosts()];
            let tl = Timeline::enabled();
            hx.exchange(&c, 0, &mut x, &tl);
            (tl.events().len(), tl.overlap_records(), hx.send_bytes::<f64>())
        });
        for (n_events, records, wire_bytes) in per_rank {
            // pack + send + wait + unpack per neighbor (1 neighbor each),
            // plus the final no-more-posts wait probe.
            assert_eq!(n_events, 5);
            assert_eq!(records.len(), 1, "one exchange, one overlap record");
            let r = &records[0];
            assert_eq!(r.bytes_sent, wire_bytes);
            assert_eq!(r.bytes_sent, 4 * 8, "one 2x2 face of f64");
            assert_eq!(r.bytes_received, r.bytes_sent);
            assert!(r.pack >= 0.0 && r.wire_wait >= 0.0 && r.unpack >= 0.0);
        }
    }

    #[test]
    fn send_bytes_accounts_per_precision() {
        use hpgmxp_sparse::Half;
        let lg = LocalGrid::new((8, 8, 8), ProcGrid::new(2, 1, 1), 0);
        let hx = HaloExchange::new(HaloPlan::build(&lg));
        assert_eq!(hx.send_volume(), 64);
        assert_eq!(hx.send_bytes::<f64>(), 64 * 8);
        assert_eq!(hx.send_bytes::<f32>(), 64 * 4);
        assert_eq!(hx.send_bytes::<Half>(), 64 * 2);
    }
}
