//! A multi-rank world backed by OS threads and shared-memory mailboxes.
//!
//! [`ThreadWorld::connect`] creates `P` connected [`ThreadComm`] endpoints;
//! [`run_threads`] spawns one thread per rank and runs the same closure
//! on each — the SPMD execution model of the MPI benchmark. Message
//! delivery is FIFO per (sender → receiver) pair, like MPI; out-of-tag
//! arrivals stay parked in the shared [`crate::mailbox::Mailbox`] until
//! a matching receive, which is MPI's unexpected-message queue.
//!
//! The v2 transport is allocation-free at steady state: `send_from`
//! copies the caller's bytes into a buffer drawn from a world-wide
//! pool, the receiver copies them out into its posted buffer and
//! returns the pool buffer. Each rank's mailbox is guarded by a
//! mutex + condvar, so [`Comm::wait_any`] is a real blocking wait on
//! *any* neighbor (`MPI_Waitany`), not a poll loop.
//!
//! Transport-agnostic callers should reach this world through
//! [`crate::world::run_spmd`], which picks thread- or socket-ranks from
//! the `HPGMXP_COMM` environment variable.

use crate::comm::{reduce_into, Comm, RecvPost, ReduceOp};
use crate::mailbox::{Mailbox, Message};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier, Mutex as StdMutex};

struct WorldShared {
    barrier: Barrier,
    reduce_slots: Vec<Mutex<Vec<f64>>>,
    reduce_result: Mutex<Vec<f64>>,
    inboxes: Vec<Mailbox>,
    /// World-wide free list of message buffers. Buffers only ever grow,
    /// so after warm-up every message is served without a heap
    /// allocation (the zero-allocation steady state the halo engine's
    /// test asserts).
    pool: StdMutex<Vec<Vec<u8>>>,
}

impl WorldShared {
    /// Take a pool buffer that can hold `len` bytes without growing.
    /// Best fit (smallest sufficient capacity) so a small message never
    /// claims the pool's only large buffer and forces the next large
    /// send to reallocate — the steady state must stay allocation-free
    /// under any interleaving.
    fn pool_take(&self, len: usize) -> Vec<u8> {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(pos) => pool.swap_remove(pos),
            None => pool.pop().unwrap_or_default(),
        }
    }

    fn pool_put(&self, buf: Vec<u8>) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
    }
}

/// One rank's endpoint in a [`ThreadWorld`].
pub struct ThreadComm {
    rank: usize,
    size: usize,
    shared: Arc<WorldShared>,
}

/// Factory for connected [`ThreadComm`] endpoints.
pub struct ThreadWorld;

impl ThreadWorld {
    /// Create a world of `size` connected ranks.
    pub fn connect(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0);
        let shared = Arc::new(WorldShared {
            barrier: Barrier::new(size),
            reduce_slots: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            reduce_result: Mutex::new(Vec::new()),
            inboxes: (0..size).map(|_| Mailbox::new()).collect(),
            pool: StdMutex::new(Vec::new()),
        });
        (0..size).map(|rank| ThreadComm { rank, size, shared: Arc::clone(&shared) }).collect()
    }
}

impl ThreadComm {
    /// Copy a matched message into `out` and recycle its buffer. The
    /// mailbox lock is already released — the pool lock is never taken
    /// under the queue lock.
    fn deliver(&self, msg: Message, out: &mut [u8]) {
        assert_eq!(
            msg.data.len(),
            out.len(),
            "message length mismatch: rank {} got {} bytes from {} tag {}, posted {}",
            self.rank,
            msg.data.len(),
            msg.from,
            msg.tag,
            out.len()
        );
        out.copy_from_slice(&msg.data);
        self.shared.pool_put(msg.data);
    }

    /// Grow every currently pooled transport buffer to at least
    /// `min_capacity` bytes. The pool is shared by all ranks and holds
    /// buffers of whatever sizes past messages had; a stale small
    /// buffer can otherwise surface under a larger message arbitrarily
    /// late (one realloc at a scheduler-dependent moment). Calling
    /// this once after warm-up — while no messages are in flight —
    /// makes the zero-allocation steady state deterministic instead of
    /// high-water-mark-dependent.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        // The mailbox deques must not grow mid-measurement either
        // (same determinism-by-construction as the pool): size each
        // rank's inbox for a full world's worth of parked messages.
        for inbox in &self.shared.inboxes {
            inbox.reserve(16 * self.size);
        }
        let mut pool = self.shared.pool.lock().unwrap_or_else(|e| e.into_inner());
        for buf in pool.iter_mut() {
            if buf.capacity() < min_capacity {
                buf.reserve(min_capacity - buf.len());
            }
        }
    }

    #[cfg(test)]
    fn pool_len(&self) -> usize {
        self.shared.pool.lock().unwrap().len()
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        let mut data = self.shared.pool_take(bytes.len());
        data.clear();
        data.extend_from_slice(bytes);
        self.shared.inboxes[to].push(Message { from: self.rank, tag, data });
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        let msg = self.shared.inboxes[self.rank].recv_matching(from, tag);
        self.deliver(msg, out);
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self.shared.inboxes[self.rank].try_recv_matching(from, tag) {
            Some(msg) => {
                self.deliver(msg, out);
                true
            }
            None => false,
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        if posts.iter().all(Option::is_none) {
            return None;
        }
        let (slot, msg) = self.shared.inboxes[self.rank].wait_any_matching(posts);
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Some((slot, post))
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        *self.shared.reduce_slots[self.rank].lock() = vals.to_vec();
        let wait = self.shared.barrier.wait();
        if wait.is_leader() {
            let mut acc = self.shared.reduce_slots[0].lock().clone();
            for r in 1..self.size {
                reduce_into(op, &mut acc, &self.shared.reduce_slots[r].lock());
            }
            *self.shared.reduce_result.lock() = acc;
        }
        self.shared.barrier.wait();
        vals.copy_from_slice(&self.shared.reduce_result.lock());
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }
}

/// Run the same closure on `size` thread-ranks, one OS thread each, and
/// return the per-rank results in rank order. Panics in any rank
/// propagate. This is the thread-transport primitive; use
/// [`crate::world::run_spmd`] to honor `HPGMXP_COMM`.
pub fn run_threads<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    let comms = ThreadWorld::connect(size);
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let fr = &f;
                s.spawn(move || fr(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("a rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};

    #[test]
    fn ping_pong() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 7, &[1, 2, 3]);
                let mut got = vec![0u8; 1];
                c.recv_into(1, 8, &mut got);
                got
            } else {
                let mut got = vec![0u8; 3];
                c.recv_into(0, 7, &mut got);
                c.send_from(0, 8, &[9]);
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_threads(4, |c| {
            let sum = c.allreduce_scalar(c.rank() as f64 + 1.0, ReduceOp::Sum);
            let max = c.allreduce_scalar(c.rank() as f64, ReduceOp::Max);
            let min = c.allreduce_scalar(c.rank() as f64, ReduceOp::Min);
            (sum, max, min)
        });
        for (sum, max, min) in results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(min, 0.0);
        }
    }

    #[test]
    fn allreduce_vector() {
        let results = run_threads(3, |c| {
            let mut v = vec![c.rank() as f64, 1.0];
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for v in results {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn repeated_allreduces_stay_in_lockstep() {
        let results = run_threads(4, |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc = c.allreduce_scalar(acc + i as f64, ReduceOp::Sum);
            }
            acc
        });
        // All ranks must agree after every round.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 1, &[1]);
                c.send_from(1, 2, &[2]);
                vec![]
            } else {
                // Receive tag 2 first although tag 1 arrived first.
                let mut b = [0u8; 1];
                c.recv_into(0, 2, &mut b);
                let mut a = [0u8; 1];
                c.recv_into(0, 1, &mut a);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1, 2]);
    }

    #[test]
    fn same_tag_is_fifo_per_pair() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_from(1, 0, &[i]);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| {
                        let mut b = [0u8; 1];
                        c.recv_into(0, 0, &mut b);
                        b[0]
                    })
                    .collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn try_recv_polls() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                // After the barrier the message is guaranteed sent.
                let mut d = vec![0u8; 1];
                loop {
                    if c.try_recv_into(1, 5, &mut d) {
                        return d;
                    }
                    std::thread::yield_now();
                }
            } else {
                c.send_from(0, 5, &[42]);
                c.barrier();
                vec![]
            }
        });
        assert_eq!(results[0], vec![42]);
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        // Rank 2 waits on both neighbors at once and records completion
        // order; whichever message arrived first must complete first.
        let results = run_threads(3, |c| {
            if c.rank() == 2 {
                let mut b0 = [0u8; 1];
                let mut b1 = [0u8; 1];
                // Rank 1's send is ordered (via the barrier) before
                // rank 0's, so it must complete first.
                c.barrier();
                let mut posts =
                    [Some(RecvPost::new(0, 9, &mut b0)), Some(RecvPost::new(1, 9, &mut b1))];
                let (first, post) = c.wait_any(&mut posts).expect("two posts live");
                let first_val = post.buf[0];
                let (second, post) = c.wait_any(&mut posts).expect("one post live");
                let second_val = post.buf[0];
                assert!(c.wait_any(&mut posts).is_none(), "all posts drained");
                vec![first as u8, first_val, second as u8, second_val]
            } else if c.rank() == 1 {
                c.send_from(2, 9, &[11]);
                c.barrier();
                vec![]
            } else {
                c.barrier();
                c.send_from(2, 9, &[10]);
                vec![]
            }
        });
        assert_eq!(results[2], vec![1, 11, 0, 10]);
    }

    #[test]
    fn typed_slices_roundtrip() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 0, &pack(&[1.5f32, -2.5]));
                0.0
            } else {
                let mut bytes = vec![0u8; 8];
                c.recv_into(0, 0, &mut bytes);
                let mut out = vec![0.0f32; 2];
                unpack(&bytes, &mut out);
                out[0] as f64 + out[1] as f64
            }
        });
        assert_eq!(results[1], -1.0);
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_threads(1, |c| c.allreduce_scalar(5.0, ReduceOp::Sum));
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn pool_buffers_are_recycled() {
        // After a message is received its buffer returns to the pool;
        // repeated same-size traffic must not grow the pool without
        // bound.
        let results = run_threads(2, |c| {
            // Ping-pong keeps at most one message in flight per
            // direction, so steady-state traffic cannot out-run the
            // receiver and force fresh buffers.
            let mut buf = [0u8; 256];
            for round in 0..100u64 {
                if c.rank() == 0 {
                    c.send_from(1, round, &[7u8; 256]);
                    c.recv_into(1, round, &mut buf);
                } else {
                    c.recv_into(0, round, &mut buf);
                    c.send_from(0, round, &buf);
                }
            }
            c.barrier();
            c.pool_len()
        });
        // Bounded in-flight traffic: the pool holds a handful of
        // buffers, not one per round.
        assert!(results[0] <= 4, "pool grew to {} buffers", results[0]);
    }

    #[test]
    fn many_ranks_stress() {
        // A ring shift: rank r sends to (r+1) % p and receives from
        // (r-1+p) % p, repeated.
        let p = 8;
        let results = run_threads(p, move |c| {
            let r = c.rank();
            let next = (r + 1) % p;
            let prev = (r + p - 1) % p;
            let mut token = r as u64;
            for round in 0..20 {
                c.send_from(next, round, &token.to_le_bytes());
                let mut got = [0u8; 8];
                c.recv_into(prev, round, &mut got);
                token = u64::from_le_bytes(got) + 1;
            }
            token
        });
        // After 20 rounds each token visited 20 ranks, +1 each hop.
        for (r, t) in results.iter().enumerate() {
            assert_eq!(*t, ((r + p - 20 % p) % p) as u64 + 20);
        }
    }
}
