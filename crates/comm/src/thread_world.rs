//! A multi-rank world backed by OS threads and shared-memory mailboxes.
//!
//! [`ThreadWorld::connect`] creates `P` connected [`ThreadComm`] endpoints;
//! [`run_threads`] spawns one thread per rank and runs the same closure
//! on each — the SPMD execution model of the MPI benchmark. Message
//! delivery is FIFO per (sender → receiver) pair, like MPI; out-of-tag
//! arrivals stay parked in the shared [`crate::mailbox::Mailbox`] until
//! a matching receive, which is MPI's unexpected-message queue.
//!
//! The v2 transport is allocation-free at steady state: `send_from`
//! copies the caller's bytes into a buffer drawn from a world-wide
//! pool, the receiver copies them out into its posted buffer and
//! returns the pool buffer. Each rank's mailbox is guarded by a
//! mutex + condvar, so [`Comm::wait_any`] is a real blocking wait on
//! *any* neighbor (`MPI_Waitany`), not a poll loop.
//!
//! **Fault semantics.** Each endpoint announces its fate when it goes
//! away: a cleanly finished rank records a `PeerClosed` fault on every
//! peer's mailbox, a panicking rank records `PeerLost` — and because
//! collectives are message-based (the shared [`crate::collectives`]
//! engine over these same mailboxes), a collective on a surviving rank
//! fails with a typed [`CommError`] naming the dead rank instead of
//! hanging. Because parked messages are matched before faults,
//! everything a rank sent before finishing stays receivable. Worlds
//! built with [`ThreadWorld::connect_with_deadline`] additionally
//! bound every blocking receive (and therefore every collective),
//! turning a hung-but-alive peer into a `Timeout` fault;
//! [`run_threads_fallible`] is the chaos-test entry point that reports
//! each rank's outcome instead of propagating the first panic.
//!
//! Transport-agnostic callers should reach this world through
//! [`crate::world::run_spmd`], which picks the backend from the
//! `HPGMXP_COMM` environment variable.

use crate::collectives::{self, CollCounters, CollScratch, CollStats};
use crate::comm::{Comm, RecvPost, ReduceOp};
use crate::error::{CommErrorKind, CommResult};
use crate::mailbox::{Mailbox, Message};
use crate::socket_world::COLLECTIVE_TAG_BIT;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

struct WorldShared {
    inboxes: Vec<Mailbox>,
    /// World-wide free list of message buffers. Buffers only ever grow,
    /// so after warm-up every message is served without a heap
    /// allocation (the zero-allocation steady state the halo engine's
    /// test asserts).
    pool: StdMutex<Vec<Vec<u8>>>,
}

impl WorldShared {
    /// Take a pool buffer that can hold `len` bytes without growing.
    /// Best fit (smallest sufficient capacity) so a small message never
    /// claims the pool's only large buffer and forces the next large
    /// send to reallocate — the steady state must stay allocation-free
    /// under any interleaving.
    fn pool_take(&self, len: usize) -> Vec<u8> {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(pos) => pool.swap_remove(pos),
            None => pool.pop().unwrap_or_default(),
        }
    }

    fn pool_put(&self, buf: Vec<u8>) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
    }
}

/// One rank's endpoint in a [`ThreadWorld`].
pub struct ThreadComm {
    rank: usize,
    size: usize,
    shared: Arc<WorldShared>,
    /// Collective sequence counter — every rank draws the same tag
    /// sequence because collectives execute in SPMD program order.
    coll_seq: AtomicU64,
    /// Engine scratch (Bruck ring + fold accumulators), reused across
    /// collectives so steady state stays allocation-free.
    coll_scratch: Mutex<CollScratch>,
    counters: CollCounters,
}

/// Factory for connected [`ThreadComm`] endpoints.
pub struct ThreadWorld;

impl ThreadWorld {
    /// Create a world of `size` connected ranks.
    pub fn connect(size: usize) -> Vec<ThreadComm> {
        Self::connect_with_deadline(size, None)
    }

    /// Create a world whose blocking receives and barriers give up with
    /// a typed `Timeout` fault after `deadline` — the hang detector for
    /// chaos tests (a hung rank is alive, so no `PeerClosed`/`PeerLost`
    /// fault will ever fire for it).
    pub fn connect_with_deadline(size: usize, deadline: Option<Duration>) -> Vec<ThreadComm> {
        assert!(size > 0);
        let shared = Arc::new(WorldShared {
            inboxes: (0..size).map(|_| Mailbox::with_deadline(deadline)).collect(),
            pool: StdMutex::new(Vec::new()),
        });
        (0..size)
            .map(|rank| ThreadComm {
                rank,
                size,
                shared: Arc::clone(&shared),
                coll_seq: AtomicU64::new(0),
                coll_scratch: Mutex::new(CollScratch::default()),
                counters: CollCounters::default(),
            })
            .collect()
    }
}

impl ThreadComm {
    /// Copy a matched message into `out` and recycle its buffer. The
    /// mailbox lock is already released — the pool lock is never taken
    /// under the queue lock.
    fn deliver(&self, msg: Message, out: &mut [u8]) {
        assert_eq!(
            msg.data.len(),
            out.len(),
            "message length mismatch: rank {} got {} bytes from {} tag {}, posted {}",
            self.rank,
            msg.data.len(),
            msg.from,
            msg.tag,
            out.len()
        );
        out.copy_from_slice(&msg.data);
        self.shared.pool_put(msg.data);
    }

    /// Grow every currently pooled transport buffer to at least
    /// `min_capacity` bytes. The pool is shared by all ranks and holds
    /// buffers of whatever sizes past messages had; a stale small
    /// buffer can otherwise surface under a larger message arbitrarily
    /// late (one realloc at a scheduler-dependent moment). Calling
    /// this once after warm-up — while no messages are in flight —
    /// makes the zero-allocation steady state deterministic instead of
    /// high-water-mark-dependent.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        // The mailbox deques must not grow mid-measurement either
        // (same determinism-by-construction as the pool): size each
        // rank's inbox for a full world's worth of parked messages.
        for inbox in &self.shared.inboxes {
            inbox.reserve(16 * self.size);
        }
        let mut pool = self.shared.pool.lock().unwrap_or_else(|e| e.into_inner());
        for buf in pool.iter_mut() {
            if buf.capacity() < min_capacity {
                buf.reserve(min_capacity - buf.len());
            }
        }
        // Stock the pool for the worst-case in-flight depth: every
        // rank can have a message posted to every other rank before
        // any receiver drains one, and `pool_take` on an empty pool
        // hands out a fresh zero-capacity `Vec` — one allocation at a
        // scheduler-dependent moment. (The socket transport stocks
        // its per-peer pools the same way.)
        let want = 2 * self.size * self.size;
        let have = pool.len();
        pool.reserve(want.saturating_sub(have));
        while pool.len() < want {
            pool.push(Vec::with_capacity(min_capacity));
        }
        drop(pool);
        // Size the collective engine's scratch so an allreduce of up to
        // `min_capacity` bytes per rank runs without allocating either.
        self.coll_scratch.lock().prewarm(self.size, min_capacity.div_ceil(8));
    }

    #[cfg(test)]
    fn pool_len(&self) -> usize {
        self.shared.pool.lock().unwrap().len()
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        let mut data = self.shared.pool_take(bytes.len());
        data.clear();
        data.extend_from_slice(bytes);
        self.shared.inboxes[to].push(Message { from: self.rank, tag, data });
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        let msg = self.shared.inboxes[self.rank].recv_matching(from, tag);
        self.deliver(msg, out);
    }

    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.inboxes[self.rank].recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self.shared.inboxes[self.rank].try_recv_matching(from, tag) {
            Some(msg) => {
                self.deliver(msg, out);
                true
            }
            None => false,
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        if posts.iter().all(Option::is_none) {
            return None;
        }
        let (slot, msg) = self.shared.inboxes[self.rank].wait_any_matching(posts);
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Some((slot, post))
    }

    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        if posts.iter().all(Option::is_none) {
            return Ok(None);
        }
        let (slot, msg) = self.shared.inboxes[self.rank].wait_any_matching_checked(posts)?;
        let post = posts[slot].take().expect("slot matched in mailbox");
        self.deliver(msg, post.buf);
        Ok(Some((slot, post)))
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        self.allreduce_checked(vals, op).unwrap_or_else(|e| panic!("{e}"));
    }

    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        let mut scratch = self.coll_scratch.lock();
        collectives::allreduce(self, &mut scratch, vals, op)
    }

    fn barrier(&self) {
        self.barrier_checked().unwrap_or_else(|e| panic!("{e}"));
    }

    fn barrier_checked(&self) -> CommResult<()> {
        collectives::barrier(self)
    }

    fn coll_stats(&self) -> Option<CollStats> {
        Some(self.counters.snapshot())
    }
}

impl collectives::CollEndpoint for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn coll_send(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        let mut data = self.shared.pool_take(bytes.len());
        data.clear();
        data.extend_from_slice(bytes);
        self.shared.inboxes[to].push(Message { from: self.rank, tag, data });
        Ok(())
    }

    fn coll_recv(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        let msg = self.shared.inboxes[self.rank].recv_matching_checked(from, tag)?;
        self.deliver(msg, out);
        Ok(())
    }

    fn next_coll_tag(&self) -> u64 {
        COLLECTIVE_TAG_BIT | self.coll_seq.fetch_add(1, Ordering::SeqCst)
    }

    fn counters(&self) -> &CollCounters {
        &self.counters
    }
}

impl Drop for ThreadComm {
    /// Announce this rank's fate to the rest of the world: a panicking
    /// rank is `PeerLost`, a cleanly finished one `PeerClosed`. Either
    /// way no future message or barrier arrival can come from it, so
    /// peers blocked on it get a typed fault instead of a hang. Parked
    /// messages are matched before faults, so everything this rank
    /// already sent stays receivable.
    fn drop(&mut self) {
        let (kind, why) = if std::thread::panicking() {
            (CommErrorKind::PeerLost, format!("rank {} panicked", self.rank))
        } else {
            (CommErrorKind::PeerClosed, format!("rank {} finished", self.rank))
        };
        for (r, inbox) in self.shared.inboxes.iter().enumerate() {
            if r != self.rank {
                inbox.fail(self.rank, kind, why.clone());
            }
        }
    }
}

/// Run the same closure on `size` thread-ranks, one OS thread each, and
/// return the per-rank results in rank order. Panics in any rank
/// propagate. This is the thread-transport primitive; use
/// [`crate::world::run_spmd`] to honor `HPGMXP_COMM`.
pub fn run_threads<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    run_threads_fallible(size, None, f).into_iter().map(|r| r.expect("a rank panicked")).collect()
}

/// [`run_threads`] for chaos tests: report each rank's outcome
/// (`Err` = that rank panicked) instead of propagating the first
/// panic, and optionally bound every blocking receive and barrier by
/// `deadline` so a hung rank surfaces as a typed `Timeout` fault on
/// its peers rather than wedging the whole world.
pub fn run_threads_fallible<T, F>(
    size: usize,
    deadline: Option<Duration>,
    f: F,
) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    let comms = ThreadWorld::connect_with_deadline(size, deadline);
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let fr = &f;
                s.spawn(move || fr(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};

    #[test]
    fn ping_pong() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 7, &[1, 2, 3]);
                let mut got = vec![0u8; 1];
                c.recv_into(1, 8, &mut got);
                got
            } else {
                let mut got = vec![0u8; 3];
                c.recv_into(0, 7, &mut got);
                c.send_from(0, 8, &[9]);
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_threads(4, |c| {
            let sum = c.allreduce_scalar(c.rank() as f64 + 1.0, ReduceOp::Sum);
            let max = c.allreduce_scalar(c.rank() as f64, ReduceOp::Max);
            let min = c.allreduce_scalar(c.rank() as f64, ReduceOp::Min);
            (sum, max, min)
        });
        for (sum, max, min) in results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(min, 0.0);
        }
    }

    #[test]
    fn allreduce_vector() {
        let results = run_threads(3, |c| {
            let mut v = vec![c.rank() as f64, 1.0];
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for v in results {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn repeated_allreduces_stay_in_lockstep() {
        let results = run_threads(4, |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc = c.allreduce_scalar(acc + i as f64, ReduceOp::Sum);
            }
            acc
        });
        // All ranks must agree after every round.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 1, &[1]);
                c.send_from(1, 2, &[2]);
                vec![]
            } else {
                // Receive tag 2 first although tag 1 arrived first.
                let mut b = [0u8; 1];
                c.recv_into(0, 2, &mut b);
                let mut a = [0u8; 1];
                c.recv_into(0, 1, &mut a);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1, 2]);
    }

    #[test]
    fn same_tag_is_fifo_per_pair() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_from(1, 0, &[i]);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| {
                        let mut b = [0u8; 1];
                        c.recv_into(0, 0, &mut b);
                        b[0]
                    })
                    .collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn try_recv_polls() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                // After the barrier the message is guaranteed sent.
                let mut d = vec![0u8; 1];
                loop {
                    if c.try_recv_into(1, 5, &mut d) {
                        return d;
                    }
                    std::thread::yield_now();
                }
            } else {
                c.send_from(0, 5, &[42]);
                c.barrier();
                vec![]
            }
        });
        assert_eq!(results[0], vec![42]);
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        // Rank 2 waits on both neighbors at once and records completion
        // order; whichever message arrived first must complete first.
        let results = run_threads(3, |c| {
            if c.rank() == 2 {
                let mut b0 = [0u8; 1];
                let mut b1 = [0u8; 1];
                // Rank 1's send is ordered (via the barrier) before
                // rank 0's, so it must complete first.
                c.barrier();
                let mut posts =
                    [Some(RecvPost::new(0, 9, &mut b0)), Some(RecvPost::new(1, 9, &mut b1))];
                let (first, post) = c.wait_any(&mut posts).expect("two posts live");
                let first_val = post.buf[0];
                let (second, post) = c.wait_any(&mut posts).expect("one post live");
                let second_val = post.buf[0];
                assert!(c.wait_any(&mut posts).is_none(), "all posts drained");
                vec![first as u8, first_val, second as u8, second_val]
            } else if c.rank() == 1 {
                c.send_from(2, 9, &[11]);
                c.barrier();
                vec![]
            } else {
                c.barrier();
                c.send_from(2, 9, &[10]);
                vec![]
            }
        });
        assert_eq!(results[2], vec![1, 11, 0, 10]);
    }

    #[test]
    fn typed_slices_roundtrip() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                c.send_from(1, 0, &pack(&[1.5f32, -2.5]));
                0.0
            } else {
                let mut bytes = vec![0u8; 8];
                c.recv_into(0, 0, &mut bytes);
                let mut out = vec![0.0f32; 2];
                unpack(&bytes, &mut out);
                out[0] as f64 + out[1] as f64
            }
        });
        assert_eq!(results[1], -1.0);
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_threads(1, |c| c.allreduce_scalar(5.0, ReduceOp::Sum));
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn pool_buffers_are_recycled() {
        // After a message is received its buffer returns to the pool;
        // repeated same-size traffic must not grow the pool without
        // bound.
        let results = run_threads(2, |c| {
            // Ping-pong keeps at most one message in flight per
            // direction, so steady-state traffic cannot out-run the
            // receiver and force fresh buffers.
            let mut buf = [0u8; 256];
            for round in 0..100u64 {
                if c.rank() == 0 {
                    c.send_from(1, round, &[7u8; 256]);
                    c.recv_into(1, round, &mut buf);
                } else {
                    c.recv_into(0, round, &mut buf);
                    c.send_from(0, round, &buf);
                }
            }
            c.barrier();
            c.pool_len()
        });
        // Bounded in-flight traffic: the pool holds a handful of
        // buffers, not one per round.
        assert!(results[0] <= 4, "pool grew to {} buffers", results[0]);
    }

    #[test]
    fn many_ranks_stress() {
        // A ring shift: rank r sends to (r+1) % p and receives from
        // (r-1+p) % p, repeated.
        let p = 8;
        let results = run_threads(p, move |c| {
            let r = c.rank();
            let next = (r + 1) % p;
            let prev = (r + p - 1) % p;
            let mut token = r as u64;
            for round in 0..20 {
                c.send_from(next, round, &token.to_le_bytes());
                let mut got = [0u8; 8];
                c.recv_into(prev, round, &mut got);
                token = u64::from_le_bytes(got) + 1;
            }
            token
        });
        // After 20 rounds each token visited 20 ranks, +1 each hop.
        for (r, t) in results.iter().enumerate() {
            assert_eq!(*t, ((r + p - 20 % p) % p) as u64 + 20);
        }
    }

    #[test]
    fn finished_rank_fails_peer_receives_with_typed_error() {
        // Rank 1 returns without ever sending; rank 0's checked receive
        // must fail with a PeerClosed fault naming rank 1, within
        // bounded time, instead of hanging.
        let results = run_threads_fallible(2, None, |c| {
            if c.rank() == 0 {
                let mut buf = [0u8; 1];
                let err = c.recv_into_checked(1, 7, &mut buf).unwrap_err();
                assert_eq!(err.kind, crate::error::CommErrorKind::PeerClosed);
                assert_eq!(err.peer, Some(1));
                assert!(err.detail.contains("rank 1 finished"), "{}", err.detail);
            }
        });
        assert!(results.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn dead_rank_breaks_collectives_with_typed_error() {
        // Rank 1 dies (panics) before the collective; the survivors'
        // allreduce fails loudly, attributed to rank 1.
        let results = run_threads_fallible(3, None, |c| {
            if c.rank() == 1 {
                panic!("rank 1 crashing deliberately");
            }
            let err = c.allreduce_scalar_checked(1.0, ReduceOp::Sum).unwrap_err();
            assert_eq!(err.kind, crate::error::CommErrorKind::PeerLost);
            assert_eq!(err.peer, Some(1));
            assert!(err.detail.contains("rank 1 panicked"), "{}", err.detail);
        });
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "rank 1 panicked by design");
        assert!(results[2].is_ok());
    }

    #[test]
    fn hung_rank_surfaces_as_receive_timeout() {
        // Rank 1 is alive but wedged (no fault will ever be recorded
        // for it); the receive deadline is the only detector.
        use std::sync::atomic::{AtomicBool, Ordering};
        let woke = AtomicBool::new(false);
        let results = run_threads_fallible(2, Some(Duration::from_millis(50)), |c| {
            if c.rank() == 0 {
                let mut buf = [0u8; 1];
                let err = c.recv_into_checked(1, 7, &mut buf).unwrap_err();
                assert_eq!(err.kind, crate::error::CommErrorKind::Timeout);
                assert_eq!((err.peer, err.tag), (Some(1), Some(7)));
                assert!(err.elapsed >= Duration::from_millis(50));
            } else {
                std::thread::sleep(Duration::from_millis(200)); // wedged
                woke.store(true, Ordering::SeqCst);
            }
        });
        assert!(results.into_iter().all(|r| r.is_ok()));
        assert!(woke.load(Ordering::SeqCst), "the hung rank was never killed, only detected");
    }

    #[test]
    fn messages_sent_before_finishing_stay_receivable() {
        // Rank 1 sends then immediately exits; rank 0 must still get
        // the data (parked messages are matched before faults).
        let results = run_threads_fallible(2, None, |c| {
            if c.rank() == 0 {
                let mut buf = [0u8; 1];
                // Rank 1 may have already exited; the parked message
                // must still match.
                std::thread::sleep(Duration::from_millis(20));
                c.recv_into_checked(1, 3, &mut buf).expect("pre-exit send is receivable");
                buf[0]
            } else {
                c.send_from(0, 3, &[17]);
                17
            }
        });
        for r in results {
            assert_eq!(r.expect("no rank panicked"), 17);
        }
    }
}
