//! A multi-rank world backed by OS threads and lock-free channels.
//!
//! [`ThreadWorld::connect`] creates `P` connected [`ThreadComm`] endpoints;
//! [`run_spmd`] spawns one thread per rank and runs the same closure on
//! each — the SPMD execution model of the MPI benchmark. Message
//! delivery is FIFO per (sender → receiver) pair, like MPI; out-of-tag
//! arrivals are parked in a mailbox until a matching receive, which is
//! MPI's unexpected-message queue.

use crate::comm::{reduce_into, Comm, ReduceOp};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};

struct Message {
    from: usize,
    tag: u64,
    data: Vec<u8>,
}

struct WorldShared {
    barrier: Barrier,
    reduce_slots: Vec<Mutex<Vec<f64>>>,
    reduce_result: Mutex<Vec<f64>>,
}

/// One rank's endpoint in a [`ThreadWorld`].
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    mailbox: Mutex<Vec<Message>>,
    shared: Arc<WorldShared>,
}

/// Factory for connected [`ThreadComm`] endpoints.
pub struct ThreadWorld;

impl ThreadWorld {
    /// Create a world of `size` connected ranks.
    pub fn connect(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0);
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded::<Message>();
            senders.push(s);
            receivers.push(r);
        }
        let shared = Arc::new(WorldShared {
            barrier: Barrier::new(size),
            reduce_slots: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            reduce_result: Mutex::new(Vec::new()),
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadComm {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                mailbox: Mutex::new(Vec::new()),
                shared: Arc::clone(&shared),
            })
            .collect()
    }
}

impl ThreadComm {
    fn take_from_mailbox(&self, from: usize, tag: u64) -> Option<Vec<u8>> {
        let mut mb = self.mailbox.lock();
        mb.iter().position(|m| m.from == from && m.tag == tag).map(|pos| mb.remove(pos).data)
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&self, to: usize, tag: u64, data: Vec<u8>) {
        self.senders[to]
            .send(Message { from: self.rank, tag, data })
            .expect("receiving rank has shut down");
    }

    fn recv_bytes(&self, from: usize, tag: u64) -> Vec<u8> {
        if let Some(data) = self.take_from_mailbox(from, tag) {
            return data;
        }
        loop {
            let msg = self.receiver.recv().expect("world has shut down");
            if msg.from == from && msg.tag == tag {
                return msg.data;
            }
            self.mailbox.lock().push(msg);
        }
    }

    fn try_recv_bytes(&self, from: usize, tag: u64) -> Option<Vec<u8>> {
        if let Some(data) = self.take_from_mailbox(from, tag) {
            return Some(data);
        }
        while let Ok(msg) = self.receiver.try_recv() {
            if msg.from == from && msg.tag == tag {
                return Some(msg.data);
            }
            self.mailbox.lock().push(msg);
        }
        None
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        *self.shared.reduce_slots[self.rank].lock() = vals.to_vec();
        let wait = self.shared.barrier.wait();
        if wait.is_leader() {
            let mut acc = self.shared.reduce_slots[0].lock().clone();
            for r in 1..self.size {
                reduce_into(op, &mut acc, &self.shared.reduce_slots[r].lock());
            }
            *self.shared.reduce_result.lock() = acc;
        }
        self.shared.barrier.wait();
        vals.copy_from_slice(&self.shared.reduce_result.lock());
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }
}

/// Run the same closure on `size` ranks, one OS thread each, and return
/// the per-rank results in rank order. Panics in any rank propagate.
pub fn run_spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    let comms = ThreadWorld::connect(size);
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let fr = &f;
                s.spawn(move || fr(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("a rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{pack, unpack};

    #[test]
    fn ping_pong() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 7, vec![1, 2, 3]);
                c.recv_bytes(1, 8)
            } else {
                let got = c.recv_bytes(0, 7);
                c.send_bytes(0, 8, vec![9]);
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_spmd(4, |c| {
            let sum = c.allreduce_scalar(c.rank() as f64 + 1.0, ReduceOp::Sum);
            let max = c.allreduce_scalar(c.rank() as f64, ReduceOp::Max);
            let min = c.allreduce_scalar(c.rank() as f64, ReduceOp::Min);
            (sum, max, min)
        });
        for (sum, max, min) in results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(min, 0.0);
        }
    }

    #[test]
    fn allreduce_vector() {
        let results = run_spmd(3, |c| {
            let mut v = vec![c.rank() as f64, 1.0];
            c.allreduce(&mut v, ReduceOp::Sum);
            v
        });
        for v in results {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn repeated_allreduces_stay_in_lockstep() {
        let results = run_spmd(4, |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc = c.allreduce_scalar(acc + i as f64, ReduceOp::Sum);
            }
            acc
        });
        // All ranks must agree after every round.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, vec![1]);
                c.send_bytes(1, 2, vec![2]);
                vec![]
            } else {
                // Receive tag 2 first although tag 1 arrived first.
                let b = c.recv_bytes(0, 2);
                let a = c.recv_bytes(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1, 2]);
    }

    #[test]
    fn same_tag_is_fifo_per_pair() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 0, vec![i]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_bytes(0, 0)[0]).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn try_recv_polls() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                // After the barrier the message is guaranteed sent.
                loop {
                    if let Some(d) = c.try_recv_bytes(1, 5) {
                        return d;
                    }
                    std::thread::yield_now();
                }
            } else {
                c.send_bytes(0, 5, vec![42]);
                c.barrier();
                vec![]
            }
        });
        assert_eq!(results[0], vec![42]);
    }

    #[test]
    fn typed_slices_roundtrip() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 0, pack(&[1.5f32, -2.5]));
                0.0
            } else {
                let bytes = c.recv_bytes(0, 0);
                let mut out = vec![0.0f32; 2];
                unpack(&bytes, &mut out);
                out[0] as f64 + out[1] as f64
            }
        });
        assert_eq!(results[1], -1.0);
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_spmd(1, |c| c.allreduce_scalar(5.0, ReduceOp::Sum));
        assert_eq!(results, vec![5.0]);
    }

    #[test]
    fn many_ranks_stress() {
        // A ring shift: rank r sends to (r+1) % p and receives from
        // (r-1+p) % p, repeated.
        let p = 8;
        let results = run_spmd(p, move |c| {
            let r = c.rank();
            let next = (r + 1) % p;
            let prev = (r + p - 1) % p;
            let mut token = r as u64;
            for round in 0..20 {
                c.send_bytes(next, round, token.to_le_bytes().to_vec());
                let got = c.recv_bytes(prev, round);
                token = u64::from_le_bytes(got.try_into().unwrap()) + 1;
            }
            token
        });
        // After 20 rounds each token visited 20 ranks, +1 each hop.
        for (r, t) in results.iter().enumerate() {
            assert_eq!(*t, ((r + p - 20 % p) % p) as u64 + 20);
        }
    }
}
