//! `hpgmxp-launch` — the multi-process rank launcher.
//!
//! Spawns N copies of a command as the rank processes of one job:
//!
//! ```text
//! hpgmxp-launch -n 4 [--comm socket|shmem] [--timeout-secs 300] [--port P] [--retries N] [--restore] [--trace-dir DIR] -- cargo run --bin fig9_trace
//! ```
//!
//! Each child gets `HPGMXP_RANK` (0..N), `HPGMXP_RANKS`, and
//! `HPGMXP_COMM` set to the `--comm` transport (default `socket`),
//! plus the transport's rendezvous handle: `HPGMXP_PORT` (`--port`, or
//! a freshly probed free one) for the TCP mesh, or a launch-unique
//! `HPGMXP_SHM_ID` for the `/dev/shm` ring world — everything
//! `run_spmd` needs to join the mesh. `--trace-dir DIR` arms per-rank
//! span tracing (`HPGMXP_TRACE_DIR`, and `HPGMXP_TRACE=spans` unless
//! the environment already chose a mode): every rank leaves a
//! `trace-rank<R>.bin` in DIR for `hpgmxp-trace` to merge. Child
//! output is forwarded line-by-line with `[  123ms] [rank i]` prefixes
//! (milliseconds since launch) and the last lines of every rank are
//! kept for the failure report.
//!
//! Supervision, in the spirit of `mpirun`:
//! * a rank exiting non-zero kills the whole job: every other rank is
//!   killed and reaped, a `rank R died` diagnostic plus the rank-tagged
//!   output tails go to stderr, and the launcher exits with the dead
//!   rank's code;
//! * a job exceeding `--timeout-secs` (default 300) is killed the same
//!   way and the launcher exits 124, so a deadlocked mesh fails fast
//!   instead of hanging a CI runner;
//! * with `--retries N`, a failed job is relaunched up to N times with
//!   `HPGMXP_RESTORE=1` set so checkpoint-aware workloads resume from
//!   their last committed state instead of restarting cold;
//! * all ranks exiting zero is success;
//! * bad arguments print usage and exit 2 — distinct from rank-failure
//!   codes and the timeout code, so scripts can tell operator error
//!   from job failure.
//!
//! The actual parsing and supervision lives in [`hpgmxp_comm::launch`]
//! so integration tests can drive jobs in-process. The hidden `_worker`
//! subcommand is a tiny built-in SPMD workload (collective +
//! ring-exchange rounds) used by the launcher's own integration tests
//! to exercise the happy path, the rank-death path (`--crash-rank`),
//! and the timeout path (`--hang-rank`) without compiling a second
//! binary; it arms `HPGMXP_FAULT_PLAN` wire faults automatically,
//! making it the chaos-matrix payload too.

use hpgmxp_comm::launch::{self, USAGE};
use hpgmxp_comm::{run_spmd, Comm, FaultPlan, FaultyComm, ReduceOp};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("_worker") {
        worker(&args[1..]);
        return;
    }

    match launch::parse_args(&args) {
        Ok(config) => std::process::exit(launch::run_job(&config)),
        Err(msg) => {
            eprintln!("hpgmxp-launch: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn worker_usage() -> ! {
    eprintln!(
        "usage: hpgmxp-launch _worker [--rounds N] [--crash-rank R] [--crash-round N] [--hang-rank R]"
    );
    std::process::exit(2);
}

/// The built-in SPMD test workload (see module docs).
fn worker(args: &[String]) {
    let mut rounds = 10usize;
    let mut crash_rank: Option<usize> = None;
    let mut crash_round = 2usize;
    let mut hang_rank: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val =
            || it.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or_else(|| worker_usage());
        match arg.as_str() {
            "--rounds" => rounds = val(),
            "--crash-rank" => crash_rank = Some(val()),
            "--crash-round" => crash_round = val(),
            "--hang-rank" => hang_rank = Some(val()),
            _ => worker_usage(),
        }
    }
    let size: usize = std::env::var("HPGMXP_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .expect("worker must run under hpgmxp-launch");
    let plan = FaultPlan::from_env();
    run_spmd(size, move |c| {
        let rank = c.rank();
        // Comm-level faults (scripted crash/hang, reorder) layer on top
        // of the wire-level interposer the socket world arms itself.
        let c = FaultyComm::new(c, plan.clone().unwrap_or_else(|| FaultPlan::clean(0)))
            .with_process_exit();
        for round in 0..rounds {
            if hang_rank == Some(rank) && round == 1 {
                println!("rank {rank} hanging deliberately");
                std::thread::sleep(Duration::from_secs(3600));
            }
            if crash_rank == Some(rank) && round == crash_round {
                eprintln!("rank {rank} crashing deliberately at round {round}");
                std::process::exit(7);
            }
            // A solve-shaped round: a global reduction plus a ring
            // halo exchange, with real wall time in between.
            let sum = match c.allreduce_scalar_checked((rank + round) as f64, ReduceOp::Sum) {
                Ok(sum) => sum,
                Err(e) => {
                    eprintln!("rank {rank}: {e}");
                    std::process::exit(9);
                }
            };
            if c.size() > 1 {
                let next = (rank + 1) % c.size();
                let prev = (rank + c.size() - 1) % c.size();
                let payload = (rank as u64).to_le_bytes();
                let mut buf = [0u8; 8];
                let exchanged = c
                    .send_from_checked(next, round as u64, &payload)
                    .and_then(|_| c.recv_into_checked(prev, round as u64, &mut buf));
                if let Err(e) = exchanged {
                    eprintln!("rank {rank}: {e}");
                    std::process::exit(9);
                }
                assert_eq!(u64::from_le_bytes(buf), prev as u64);
            }
            println!("round {round} ok (sum {sum})");
            std::thread::sleep(Duration::from_millis(10));
        }
    });
}
