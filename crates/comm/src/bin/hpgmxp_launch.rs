//! `hpgmxp-launch` — the socket-world rank launcher.
//!
//! Spawns N copies of a command as socket ranks of one job:
//!
//! ```text
//! hpgmxp-launch -n 4 [--timeout-secs 300] [--port P] -- cargo run --bin fig9_trace
//! ```
//!
//! Each child gets `HPGMXP_RANK` (0..N), `HPGMXP_RANKS`, `HPGMXP_PORT`
//! (the rendezvous port — `--port`, or a freshly probed free one) and
//! `HPGMXP_COMM=socket`, which is everything `run_spmd` needs to join
//! the mesh. Child output is forwarded line-by-line with a `[rank i]`
//! prefix and the last lines of every rank are kept for the failure
//! report.
//!
//! Supervision, in the spirit of `mpirun`:
//! * a rank exiting non-zero kills the whole job: every other rank is
//!   killed and reaped, a `rank R died` diagnostic plus the rank-tagged
//!   output tails go to stderr, and the launcher exits with the dead
//!   rank's code;
//! * a job exceeding `--timeout-secs` (default 300) is killed the same
//!   way and the launcher exits 124, so a deadlocked mesh fails fast
//!   instead of hanging a CI runner;
//! * all ranks exiting zero is success.
//!
//! The hidden `_worker` subcommand is a tiny built-in SPMD workload
//! (collective + ring-exchange rounds) used by the launcher's own
//! integration tests to exercise the happy path, the rank-death path
//! (`--crash-rank`), and the timeout path (`--hang-rank`) without
//! compiling a second binary.

use hpgmxp_comm::{run_spmd, Comm, ReduceOp};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lines of per-rank output kept for the failure report.
const TAIL_LINES: usize = 40;

fn usage() -> ! {
    eprintln!(
        "usage: hpgmxp-launch -n <ranks> [--timeout-secs T] [--port P] -- <command> [args...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("_worker") {
        worker(&args[1..]);
        return;
    }

    let mut ranks: Option<usize> = None;
    let mut timeout = Duration::from_secs(300);
    let mut port: Option<u16> = None;
    let mut cmd: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-n" | "--ranks" => {
                ranks = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--timeout-secs" => {
                let t: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                timeout = Duration::from_secs(t);
            }
            "--port" => {
                port = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--" => {
                cmd = it.collect();
                break;
            }
            _ => usage(),
        }
    }
    let ranks = ranks.unwrap_or_else(|| usage());
    if ranks == 0 || cmd.is_empty() {
        usage();
    }
    let port = port.unwrap_or_else(free_port);

    let mut children: Vec<Child> = Vec::with_capacity(ranks);
    let mut tails: Vec<Arc<Mutex<VecDeque<String>>>> = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut c = Command::new(&cmd[0]);
        c.args(&cmd[1..])
            .env("HPGMXP_COMM", "socket")
            .env("HPGMXP_RANK", rank.to_string())
            .env("HPGMXP_RANKS", ranks.to_string())
            .env("HPGMXP_PORT", port.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = match c.spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("[launch] failed to spawn rank {rank} ({}): {e}", cmd[0]);
                kill_all(&mut children);
                std::process::exit(1);
            }
        };
        let tail = Arc::new(Mutex::new(VecDeque::with_capacity(TAIL_LINES)));
        pump(rank, child.stdout.take().expect("piped stdout"), false, Arc::clone(&tail));
        pump(rank, child.stderr.take().expect("piped stderr"), true, Arc::clone(&tail));
        println!("[launch] rank {rank} pid={} port={port}", child.id());
        children.push(child);
        tails.push(tail);
    }

    let started = Instant::now();
    let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; ranks];
    loop {
        for (rank, child) in children.iter_mut().enumerate() {
            if statuses[rank].is_none() {
                if let Some(st) = child.try_wait().unwrap_or(None) {
                    statuses[rank] = Some(st);
                }
            }
        }
        let dead: Vec<usize> = statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some_and(|s| !s.success()))
            .map(|(r, _)| r)
            .collect();
        if !dead.is_empty() {
            for r in &dead {
                eprintln!("[launch] rank {r} died ({})", statuses[*r].expect("observed above"));
            }
            kill_all(&mut children);
            print_tails(&tails);
            let code = statuses[dead[0]].and_then(|s| s.code()).unwrap_or(1);
            std::process::exit(if code == 0 { 1 } else { code });
        }
        if statuses.iter().all(Option::is_some) {
            println!("[launch] all {ranks} ranks exited cleanly");
            std::process::exit(0);
        }
        if started.elapsed() > timeout {
            eprintln!(
                "[launch] job exceeded --timeout-secs {} — killing all ranks",
                timeout.as_secs()
            );
            kill_all(&mut children);
            print_tails(&tails);
            std::process::exit(124);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Probe a free rendezvous port by binding ephemeral and releasing it.
fn free_port() -> u16 {
    TcpListener::bind(("127.0.0.1", 0))
        .expect("probe free port")
        .local_addr()
        .expect("probe local addr")
        .port()
}

/// Kill and reap every still-running child (reaping prevents zombies —
/// the no-orphans guarantee the fault-path test verifies by PID).
fn kill_all(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        let _ = child.wait();
    }
}

fn print_tails(tails: &[Arc<Mutex<VecDeque<String>>>]) {
    // Let the pump threads drain what the dead children last wrote.
    std::thread::sleep(Duration::from_millis(100));
    eprintln!("[launch] last output of each rank:");
    for (rank, tail) in tails.iter().enumerate() {
        for line in tail.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            eprintln!("[rank {rank}] {line}");
        }
    }
}

/// Forward one child stream line-by-line with a rank prefix, keeping a
/// bounded tail for the failure report.
fn pump(
    rank: usize,
    stream: impl Read + Send + 'static,
    to_stderr: bool,
    tail: Arc<Mutex<VecDeque<String>>>,
) {
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if to_stderr {
                eprintln!("[rank {rank}] {line}");
            } else {
                println!("[rank {rank}] {line}");
            }
            let mut t = tail.lock().unwrap_or_else(|e| e.into_inner());
            if t.len() == TAIL_LINES {
                t.pop_front();
            }
            t.push_back(line);
        }
    });
}

/// The built-in SPMD test workload (see module docs).
fn worker(args: &[String]) {
    let mut rounds = 10usize;
    let mut crash_rank: Option<usize> = None;
    let mut crash_round = 2usize;
    let mut hang_rank: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--rounds" => rounds = val(),
            "--crash-rank" => crash_rank = Some(val()),
            "--crash-round" => crash_round = val(),
            "--hang-rank" => hang_rank = Some(val()),
            _ => usage(),
        }
    }
    let size: usize = std::env::var("HPGMXP_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .expect("worker must run under hpgmxp-launch");
    run_spmd(size, |c| {
        let rank = c.rank();
        for round in 0..rounds {
            if hang_rank == Some(rank) && round == 1 {
                println!("rank {rank} hanging deliberately");
                std::thread::sleep(Duration::from_secs(3600));
            }
            if crash_rank == Some(rank) && round == crash_round {
                eprintln!("rank {rank} crashing deliberately at round {round}");
                std::process::exit(7);
            }
            // A solve-shaped round: a global reduction plus a ring
            // halo exchange, with real wall time in between.
            let sum = c.allreduce_scalar((rank + round) as f64, ReduceOp::Sum);
            if c.size() > 1 {
                let next = (rank + 1) % c.size();
                let prev = (rank + c.size() - 1) % c.size();
                c.send_from(next, round as u64, &(rank as u64).to_le_bytes());
                let mut buf = [0u8; 8];
                c.recv_into(prev, round as u64, &mut buf);
                assert_eq!(u64::from_le_bytes(buf), prev as u64);
            }
            println!("round {round} ok (sum {sum})");
            std::thread::sleep(Duration::from_millis(10));
        }
    });
}
