//! Job supervision for socket-world ranks — the library behind the
//! `hpgmxp-launch` binary.
//!
//! [`run_job`] spawns `ranks` copies of a command as the rank
//! processes of one job over the transport `--comm` selects (env:
//! `HPGMXP_COMM=socket|shmem`, `HPGMXP_RANK`, `HPGMXP_RANKS`, plus
//! `HPGMXP_PORT` for the socket rendezvous or a fresh `HPGMXP_SHM_ID`
//! per attempt for the `/dev/shm` world), forwards their output with
//! `[  123ms] [rank i]` prefixes (milliseconds since launch, so
//! cross-rank interleavings are orderable), and supervises in the
//! spirit of `mpirun`:
//!
//! * a rank exiting non-zero kills the whole job — `rank R died`
//!   diagnostics plus per-rank output tails go to stderr, and the job
//!   reports the dead rank's exit code;
//! * a job exceeding its timeout is killed the same way, each
//!   still-running rank reported as `rank R hung`, and the job reports
//!   124 — a deadlocked mesh fails fast instead of hanging CI;
//! * all ranks exiting zero is success.
//!
//! **Restart-based recovery.** With `retries > 0` a failed job (dead
//! rank or timeout) is relaunched up to that many times with
//! `HPGMXP_RESTORE=1` in the children's environment — the signal a
//! checkpointing solver (see the core crate's `checkpoint` module)
//! uses to resume from its last committed checkpoint instead of from
//! scratch. `restore: true` sets the flag from the first attempt
//! (resuming a job a previous launcher invocation left behind).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lines of per-rank output kept for the failure report.
const TAIL_LINES: usize = 40;

/// One supervised multi-rank job.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// World size — one child process per rank.
    pub ranks: usize,
    /// Wall-clock budget before the job is declared hung and killed.
    pub timeout: Duration,
    /// Rendezvous port (`None` = probe a free one). Socket-only.
    pub port: Option<u16>,
    /// Transport the ranks mesh over: `"socket"` (default) or
    /// `"shmem"`.
    pub comm: String,
    /// Relaunch a failed job up to this many times, with
    /// `HPGMXP_RESTORE=1` set so checkpointing workloads resume.
    pub retries: usize,
    /// Set `HPGMXP_RESTORE=1` from the first attempt.
    pub restore: bool,
    /// Arm per-rank tracing in every child: sets `HPGMXP_TRACE_DIR`
    /// to this directory (and `HPGMXP_TRACE=spans` unless the
    /// launcher's own environment already picked a mode), so each rank
    /// flushes a `trace-rank<R>.bin` for `hpgmxp-trace` to merge.
    pub trace_dir: Option<String>,
    /// Extra environment for every child.
    pub env: Vec<(String, String)>,
    /// The command and its arguments.
    pub cmd: Vec<String>,
}

impl LaunchConfig {
    /// A job with the defaults the CLI uses (300 s timeout, no
    /// retries, probed port).
    pub fn new(ranks: usize, cmd: Vec<String>) -> Self {
        LaunchConfig {
            ranks,
            timeout: Duration::from_secs(300),
            port: None,
            comm: "socket".to_string(),
            retries: 0,
            restore: false,
            trace_dir: None,
            env: Vec::new(),
            cmd,
        }
    }
}

/// The usage line (kept in one place so the binary and the parser
/// error paths print the same text).
pub const USAGE: &str = "usage: hpgmxp-launch -n <ranks> [--comm socket|shmem] \
                         [--timeout-secs T] [--port P] [--retries N] [--restore] \
                         [--trace-dir DIR] -- <command> [args...]";

/// Parse CLI arguments (everything after the program name) into a
/// [`LaunchConfig`]. Errors are specific — they name the flag and the
/// offending value — so a typo produces an actionable message, not a
/// bare usage dump.
pub fn parse_args(args: &[String]) -> Result<LaunchConfig, String> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a str, String> {
        it.next().map(String::as_str).ok_or_else(|| format!("{flag} expects {what}"))
    }

    let mut ranks: Option<usize> = None;
    let mut timeout = Duration::from_secs(300);
    let mut port: Option<u16> = None;
    let mut comm = "socket".to_string();
    let mut retries = 0usize;
    let mut restore = false;
    let mut trace_dir: Option<String> = None;
    let mut cmd: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-n" | "--ranks" => {
                let v = value(&mut it, arg, "a positive rank count")?;
                ranks = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("-n expects a positive integer, got {v:?}"))?,
                );
            }
            "--timeout-secs" => {
                let v = value(&mut it, arg, "a number of seconds")?;
                timeout = Duration::from_secs(
                    v.parse::<u64>()
                        .map_err(|_| format!("--timeout-secs expects seconds, got {v:?}"))?,
                );
            }
            "--port" => {
                let v = value(&mut it, arg, "a port number")?;
                port = Some(
                    v.parse::<u16>().map_err(|_| format!("--port expects a port, got {v:?}"))?,
                );
            }
            "--comm" => {
                let v = value(&mut it, arg, "a transport (socket or shmem)")?;
                if v != "socket" && v != "shmem" {
                    return Err(format!("--comm expects \"socket\" or \"shmem\", got {v:?}"));
                }
                comm = v.to_string();
            }
            "--retries" => {
                let v = value(&mut it, arg, "a retry count")?;
                retries = v
                    .parse::<usize>()
                    .map_err(|_| format!("--retries expects a count, got {v:?}"))?;
            }
            "--restore" => restore = true,
            "--trace-dir" => {
                trace_dir = Some(value(&mut it, arg, "a directory path")?.to_string());
            }
            "--" => {
                cmd = it.by_ref().cloned().collect();
                break;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let ranks = ranks.ok_or("missing required -n <ranks>")?;
    if cmd.is_empty() {
        return Err("missing command: everything after `--` is the rank command".into());
    }
    Ok(LaunchConfig {
        ranks,
        timeout,
        port,
        comm,
        retries,
        restore,
        trace_dir,
        env: Vec::new(),
        cmd,
    })
}

/// Probe a free rendezvous port by binding ephemeral and releasing it.
pub fn free_port() -> u16 {
    TcpListener::bind(("127.0.0.1", 0))
        .expect("probe free port")
        .local_addr()
        .expect("probe local addr")
        .port()
}

/// Run (and, per `retries`, re-run) the job; returns the exit code the
/// launcher process should report: 0 on success, the first dead rank's
/// code on rank death, 124 on timeout.
pub fn run_job(config: &LaunchConfig) -> i32 {
    let mut restore = config.restore;
    for attempt in 0..=config.retries {
        let code = run_once(config, restore);
        if code == 0 {
            return 0;
        }
        if attempt < config.retries {
            eprintln!(
                "[launch] job failed (exit {code}) — relaunching with restore \
                 (attempt {} of {})",
                attempt + 2,
                config.retries + 1
            );
            restore = true;
        } else {
            return code;
        }
    }
    unreachable!("the retry loop always returns");
}

/// A job-unique shared-memory world id: a crashed attempt must never
/// collide with its own retry (rank 0 creates the world file with
/// `create_new`), so every attempt draws a fresh suffix.
fn fresh_shm_id() -> String {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static ATTEMPT: AtomicUsize = AtomicUsize::new(0);
    format!("{}-{}", std::process::id(), ATTEMPT.fetch_add(1, Ordering::SeqCst))
}

fn run_once(config: &LaunchConfig, restore: bool) -> i32 {
    // Anchor the output-timestamp epoch at spawn time, not at the
    // first forwarded line — a child that is silent for its whole
    // startup should still print a large first offset.
    let _ = launch_millis();
    let ranks = config.ranks;
    let port = config.port.unwrap_or_else(free_port);
    let shm_id = fresh_shm_id();
    let mut children: Vec<Child> = Vec::with_capacity(ranks);
    let mut tails: Vec<Arc<Mutex<VecDeque<String>>>> = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut c = Command::new(&config.cmd[0]);
        c.args(&config.cmd[1..])
            .env("HPGMXP_COMM", &config.comm)
            .env("HPGMXP_RANK", rank.to_string())
            .env("HPGMXP_RANKS", ranks.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if config.comm == "shmem" {
            c.env("HPGMXP_SHM_ID", &shm_id);
        } else {
            c.env("HPGMXP_PORT", port.to_string());
        }
        if restore {
            c.env("HPGMXP_RESTORE", "1");
        }
        if let Some(dir) = &config.trace_dir {
            c.env("HPGMXP_TRACE_DIR", dir);
            // Arm full span tracing unless the caller already chose a
            // mode for the children to inherit.
            if std::env::var_os("HPGMXP_TRACE").is_none() {
                c.env("HPGMXP_TRACE", "spans");
            }
        }
        for (k, v) in &config.env {
            c.env(k, v);
        }
        let mut child = match c.spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("[launch] failed to spawn rank {rank} ({}): {e}", config.cmd[0]);
                kill_all(&mut children);
                return 1;
            }
        };
        let tail = Arc::new(Mutex::new(VecDeque::with_capacity(TAIL_LINES)));
        pump(rank, child.stdout.take().expect("piped stdout"), false, Arc::clone(&tail));
        pump(rank, child.stderr.take().expect("piped stderr"), true, Arc::clone(&tail));
        if config.comm == "shmem" {
            println!("[launch] rank {rank} pid={} shm={shm_id}", child.id());
        } else {
            println!("[launch] rank {rank} pid={} port={port}", child.id());
        }
        children.push(child);
        tails.push(tail);
    }

    let started = Instant::now();
    let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; ranks];
    loop {
        for (rank, child) in children.iter_mut().enumerate() {
            if statuses[rank].is_none() {
                if let Some(st) = child.try_wait().unwrap_or(None) {
                    statuses[rank] = Some(st);
                }
            }
        }
        let dead: Vec<usize> = statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some_and(|s| !s.success()))
            .map(|(r, _)| r)
            .collect();
        if !dead.is_empty() {
            for r in &dead {
                eprintln!("[launch] rank {r} died ({})", statuses[*r].expect("observed above"));
            }
            kill_all(&mut children);
            print_tails(&tails);
            let code = statuses[dead[0]].and_then(|s| s.code()).unwrap_or(1);
            return if code == 0 { 1 } else { code };
        }
        if statuses.iter().all(Option::is_some) {
            println!("[launch] all {ranks} ranks exited cleanly");
            return 0;
        }
        if started.elapsed() > config.timeout {
            for (r, st) in statuses.iter().enumerate() {
                if st.is_none() {
                    eprintln!(
                        "[launch] rank {r} hung (no exit within --timeout-secs {})",
                        config.timeout.as_secs()
                    );
                }
            }
            eprintln!(
                "[launch] job exceeded --timeout-secs {} — killing all ranks",
                config.timeout.as_secs()
            );
            kill_all(&mut children);
            print_tails(&tails);
            return 124;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Kill and reap every still-running child (reaping prevents zombies —
/// the no-orphans guarantee the fault-path test verifies by PID).
fn kill_all(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        let _ = child.wait();
    }
}

fn print_tails(tails: &[Arc<Mutex<VecDeque<String>>>]) {
    // Let the pump threads drain what the dead children last wrote.
    std::thread::sleep(Duration::from_millis(100));
    eprintln!("[launch] last output of each rank:");
    for (rank, tail) in tails.iter().enumerate() {
        for line in tail.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            eprintln!("[rank {rank}] {line}");
        }
    }
}

/// Milliseconds since this launcher process started — the timestamp
/// prefixed to every forwarded rank line, so interleaved output from
/// different ranks can be ordered when reading a log.
fn launch_millis() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Forward one child stream line-by-line with launch-relative
/// timestamp and rank prefixes, keeping a bounded tail for the failure
/// report.
fn pump(
    rank: usize,
    stream: impl Read + Send + 'static,
    to_stderr: bool,
    tail: Arc<Mutex<VecDeque<String>>>,
) {
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            let ms = launch_millis();
            if to_stderr {
                eprintln!("[{ms:>6}ms] [rank {rank}] {line}");
            } else {
                println!("[{ms:>6}ms] [rank {rank}] {line}");
            }
            let mut t = tail.lock().unwrap_or_else(|e| e.into_inner());
            if t.len() == TAIL_LINES {
                t.pop_front();
            }
            t.push_back(line);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let cfg = parse_args(&argv(&[
            "-n",
            "4",
            "--timeout-secs",
            "20",
            "--port",
            "29400",
            "--retries",
            "2",
            "--restore",
            "--",
            "my-app",
            "--flag",
        ]))
        .unwrap();
        assert_eq!(cfg.ranks, 4);
        assert_eq!(cfg.timeout, Duration::from_secs(20));
        assert_eq!(cfg.port, Some(29400));
        assert_eq!(cfg.comm, "socket");
        assert_eq!(cfg.retries, 2);
        assert!(cfg.restore);
        assert_eq!(cfg.cmd, vec!["my-app".to_string(), "--flag".to_string()]);
    }

    #[test]
    fn parses_trace_dir() {
        let cfg =
            parse_args(&argv(&["-n", "2", "--trace-dir", "traces/run1", "--", "app"])).unwrap();
        assert_eq!(cfg.trace_dir.as_deref(), Some("traces/run1"));
        let cfg = parse_args(&argv(&["-n", "2", "--", "app"])).unwrap();
        assert_eq!(cfg.trace_dir, None);
        let err = parse_args(&argv(&["-n", "2", "--trace-dir"])).unwrap_err();
        assert!(err.contains("--trace-dir"), "{err}");
    }

    #[test]
    fn parses_the_shmem_transport() {
        let cfg = parse_args(&argv(&["-n", "2", "--comm", "shmem", "--", "app"])).unwrap();
        assert_eq!(cfg.comm, "shmem");
        let err =
            parse_args(&argv(&["-n", "2", "--comm", "carrier-pigeon", "--", "app"])).unwrap_err();
        assert!(err.contains("--comm") && err.contains("carrier-pigeon"), "{err}");
    }

    #[test]
    fn errors_name_the_flag_and_value() {
        let err = parse_args(&argv(&["-n", "zero", "--", "app"])).unwrap_err();
        assert!(err.contains("-n") && err.contains("zero"), "{err}");
        let err = parse_args(&argv(&["-n", "0", "--", "app"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_args(&argv(&["--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        let err = parse_args(&argv(&["-n", "2"])).unwrap_err();
        assert!(err.contains("missing command"), "{err}");
        let err = parse_args(&argv(&["--", "app"])).unwrap_err();
        assert!(err.contains("-n"), "{err}");
        let err = parse_args(&argv(&["-n", "2", "--port", "99999", "--", "app"])).unwrap_err();
        assert!(err.contains("--port") && err.contains("99999"), "{err}");
    }
}
