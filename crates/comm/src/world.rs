//! Transport selection — the one place `HPGMXP_COMM` is read.
//!
//! Every figure binary, campaign cell, and integration suite runs its
//! SPMD closure through [`run_spmd`], which picks the backend from the
//! environment:
//!
//! * `HPGMXP_COMM=thread` (or unset) — [`crate::thread_world`]: all
//!   ranks are threads of this process, results for every rank come
//!   back in rank order. The default, and the only mode that needs no
//!   external launcher.
//! * `HPGMXP_COMM=socket` — [`crate::socket_world`]: this process *is*
//!   one rank of a job started by `hpgmxp-launch`, which provides
//!   `HPGMXP_RANK`/`HPGMXP_RANKS`/`HPGMXP_PORT`. The closure runs once
//!   on the process-global mesh and [`run_spmd`] returns a
//!   **single-element** vector holding this rank's result — code that
//!   wants per-rank results must gather them itself (or allreduce, as
//!   the solver history already does).
//! * `HPGMXP_COMM=shmem` — [`crate::shmem_world`]: this process is one
//!   rank of a same-host job (also started by `hpgmxp-launch`, which
//!   provides `HPGMXP_SHM_ID` alongside rank/size), exchanging frames
//!   through mmap'd `/dev/shm` ring buffers instead of TCP. Same
//!   single-element return shape as the socket transport.
//!
//! The closure receives a [`WorldComm`], an enum over the concrete
//! backends, so solver code stays generic over [`Comm`] and never
//! names a transport.

use crate::collectives::CollStats;
use crate::comm::{Comm, RecvPost, ReduceOp};
use crate::error::CommResult;
use crate::shmem_world::{self, ShmemComm};
use crate::socket_world::{self, SocketComm};
use crate::thread_world::{run_threads, ThreadComm};

/// Which transport `HPGMXP_COMM` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Thread-ranks in one process (the default).
    Thread,
    /// Process-ranks over localhost TCP, launched by `hpgmxp-launch`.
    Socket,
    /// Same-host process-ranks over mmap'd `/dev/shm` rings, launched
    /// by `hpgmxp-launch --comm shmem`.
    Shmem,
}

impl Transport {
    /// Read `HPGMXP_COMM` (default: thread). Unknown values are a
    /// loud error, not a silent fallback.
    pub fn from_env() -> Transport {
        match std::env::var("HPGMXP_COMM") {
            Ok(v) if v == "socket" => Transport::Socket,
            Ok(v) if v == "shmem" => Transport::Shmem,
            Ok(v) if v == "thread" || v.is_empty() => Transport::Thread,
            Ok(v) => {
                panic!("unknown HPGMXP_COMM={v:?} (expected \"thread\", \"socket\", or \"shmem\")")
            }
            Err(_) => Transport::Thread,
        }
    }

    /// Stable lowercase name (report fields, log lines).
    pub fn name(self) -> &'static str {
        match self {
            Transport::Thread => "thread",
            Transport::Socket => "socket",
            Transport::Shmem => "shmem",
        }
    }

    /// Whether this transport's ranks are separate processes driven by
    /// `hpgmxp-launch` (one-rank-per-process execution model).
    pub fn is_process_per_rank(self) -> bool {
        matches!(self, Transport::Socket | Transport::Shmem)
    }
}

/// The rank count a launched process must use, if this process is one
/// rank of a multi-process world (`HPGMXP_COMM=socket|shmem`).
/// Binaries that sweep over world sizes clamp their sweep to this
/// under a process-per-rank transport — the mesh is fixed at launch.
pub fn socket_world_size() -> Option<usize> {
    if !Transport::from_env().is_process_per_rank() {
        return None;
    }
    std::env::var("HPGMXP_RANKS").ok().and_then(|v| v.parse().ok())
}

/// A rank endpoint of whichever transport [`run_spmd`] selected.
pub enum WorldComm {
    /// Thread-rank of an in-process world.
    Thread(ThreadComm),
    /// Process-rank of a socket mesh.
    Socket(SocketComm),
    /// Process-rank of a shared-memory mesh.
    Shmem(ShmemComm),
}

impl WorldComm {
    /// Which transport this endpoint belongs to.
    pub fn transport(&self) -> Transport {
        match self {
            WorldComm::Thread(_) => Transport::Thread,
            WorldComm::Socket(_) => Transport::Socket,
            WorldComm::Shmem(_) => Transport::Shmem,
        }
    }

    /// Grow the transport's recycled buffers to at least
    /// `min_capacity` so the steady state is deterministically
    /// allocation-free (see the backend docs). Call while no messages
    /// are in flight.
    pub fn prewarm_pool(&self, min_capacity: usize) {
        match self {
            WorldComm::Thread(c) => c.prewarm_pool(min_capacity),
            WorldComm::Socket(c) => c.prewarm_pool(min_capacity),
            WorldComm::Shmem(c) => c.prewarm_pool(min_capacity),
        }
    }
}

impl Comm for WorldComm {
    fn rank(&self) -> usize {
        match self {
            WorldComm::Thread(c) => c.rank(),
            WorldComm::Socket(c) => c.rank(),
            WorldComm::Shmem(c) => c.rank(),
        }
    }

    fn size(&self) -> usize {
        match self {
            WorldComm::Thread(c) => c.size(),
            WorldComm::Socket(c) => c.size(),
            WorldComm::Shmem(c) => c.size(),
        }
    }

    fn send_from(&self, to: usize, tag: u64, bytes: &[u8]) {
        match self {
            WorldComm::Thread(c) => c.send_from(to, tag, bytes),
            WorldComm::Socket(c) => c.send_from(to, tag, bytes),
            WorldComm::Shmem(c) => c.send_from(to, tag, bytes),
        }
    }

    fn send_from_checked(&self, to: usize, tag: u64, bytes: &[u8]) -> CommResult<()> {
        match self {
            WorldComm::Thread(c) => c.send_from_checked(to, tag, bytes),
            WorldComm::Socket(c) => c.send_from_checked(to, tag, bytes),
            WorldComm::Shmem(c) => c.send_from_checked(to, tag, bytes),
        }
    }

    fn recv_into(&self, from: usize, tag: u64, out: &mut [u8]) {
        match self {
            WorldComm::Thread(c) => c.recv_into(from, tag, out),
            WorldComm::Socket(c) => c.recv_into(from, tag, out),
            WorldComm::Shmem(c) => c.recv_into(from, tag, out),
        }
    }

    fn recv_into_checked(&self, from: usize, tag: u64, out: &mut [u8]) -> CommResult<()> {
        match self {
            WorldComm::Thread(c) => c.recv_into_checked(from, tag, out),
            WorldComm::Socket(c) => c.recv_into_checked(from, tag, out),
            WorldComm::Shmem(c) => c.recv_into_checked(from, tag, out),
        }
    }

    fn try_recv_into(&self, from: usize, tag: u64, out: &mut [u8]) -> bool {
        match self {
            WorldComm::Thread(c) => c.try_recv_into(from, tag, out),
            WorldComm::Socket(c) => c.try_recv_into(from, tag, out),
            WorldComm::Shmem(c) => c.try_recv_into(from, tag, out),
        }
    }

    fn wait_any<'p>(&self, posts: &mut [Option<RecvPost<'p>>]) -> Option<(usize, RecvPost<'p>)> {
        match self {
            WorldComm::Thread(c) => c.wait_any(posts),
            WorldComm::Socket(c) => c.wait_any(posts),
            WorldComm::Shmem(c) => c.wait_any(posts),
        }
    }

    fn wait_any_checked<'p>(
        &self,
        posts: &mut [Option<RecvPost<'p>>],
    ) -> CommResult<Option<(usize, RecvPost<'p>)>> {
        match self {
            WorldComm::Thread(c) => c.wait_any_checked(posts),
            WorldComm::Socket(c) => c.wait_any_checked(posts),
            WorldComm::Shmem(c) => c.wait_any_checked(posts),
        }
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        match self {
            WorldComm::Thread(c) => c.allreduce(vals, op),
            WorldComm::Socket(c) => c.allreduce(vals, op),
            WorldComm::Shmem(c) => c.allreduce(vals, op),
        }
    }

    fn allreduce_checked(&self, vals: &mut [f64], op: ReduceOp) -> CommResult<()> {
        match self {
            WorldComm::Thread(c) => c.allreduce_checked(vals, op),
            WorldComm::Socket(c) => c.allreduce_checked(vals, op),
            WorldComm::Shmem(c) => c.allreduce_checked(vals, op),
        }
    }

    fn barrier(&self) {
        match self {
            WorldComm::Thread(c) => c.barrier(),
            WorldComm::Socket(c) => c.barrier(),
            WorldComm::Shmem(c) => c.barrier(),
        }
    }

    fn barrier_checked(&self) -> CommResult<()> {
        match self {
            WorldComm::Thread(c) => c.barrier_checked(),
            WorldComm::Socket(c) => c.barrier_checked(),
            WorldComm::Shmem(c) => c.barrier_checked(),
        }
    }

    fn coll_stats(&self) -> Option<CollStats> {
        match self {
            WorldComm::Thread(c) => c.coll_stats(),
            WorldComm::Socket(c) => c.coll_stats(),
            WorldComm::Shmem(c) => c.coll_stats(),
        }
    }
}

/// Run `f` as an SPMD job of `size` ranks over the transport selected
/// by `HPGMXP_COMM` (see the module docs for the modes and their
/// return-value shapes). Under a process-per-rank transport `size`
/// must match the launched mesh — a mismatch is a configuration error
/// and panics with the fix.
pub fn run_spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(WorldComm) -> T + Sync,
{
    match Transport::from_env() {
        Transport::Thread => {
            // All ranks are threads of this process sharing one global
            // recorder; flush it as rank 0 when the job returns (or
            // unwinds), so `HPGMXP_TRACE_DIR` runs leave a trace file
            // behind under every transport.
            let _trace = hpgmxp_trace::FlushGuard::new(0);
            run_threads(size, |c| f(WorldComm::Thread(c)))
        }
        Transport::Socket => {
            let comm = socket_world::global_from_env().clone();
            let _trace = hpgmxp_trace::FlushGuard::new(comm.rank() as u32);
            assert_eq!(
                comm.size(),
                size,
                "socket mesh has {} ranks but this run wants {size} — start it as \
                 `hpgmxp-launch -n {size} -- ...`",
                comm.size()
            );
            let result = f(WorldComm::Socket(comm.clone()));
            // Flush and drain so one run's messages can't leak into
            // the next on the reused process-global mesh.
            comm.quiesce();
            vec![result]
        }
        Transport::Shmem => {
            let comm = shmem_world::global_from_env().clone();
            let _trace = hpgmxp_trace::FlushGuard::new(comm.rank() as u32);
            assert_eq!(
                comm.size(),
                size,
                "shmem mesh has {} ranks but this run wants {size} — start it as \
                 `hpgmxp-launch --comm shmem -n {size} -- ...`",
                comm.size()
            );
            let result = f(WorldComm::Shmem(comm.clone()));
            comm.quiesce();
            vec![result]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-driven dispatch is exercised by the socket/shmem integration
    // jobs; in-process tests only pin the default and the names
    // (mutating HPGMXP_COMM here would race other tests in this
    // binary).

    #[test]
    fn thread_is_the_default_transport() {
        if std::env::var_os("HPGMXP_COMM").is_none() {
            assert_eq!(Transport::from_env(), Transport::Thread);
            assert_eq!(socket_world_size(), None);
        }
    }

    #[test]
    fn transport_names_are_stable() {
        assert_eq!(Transport::Thread.name(), "thread");
        assert_eq!(Transport::Socket.name(), "socket");
        assert_eq!(Transport::Shmem.name(), "shmem");
        assert!(!Transport::Thread.is_process_per_rank());
        assert!(Transport::Socket.is_process_per_rank());
        assert!(Transport::Shmem.is_process_per_rank());
    }

    #[test]
    fn run_spmd_defaults_to_thread_ranks() {
        if std::env::var_os("HPGMXP_COMM").is_some() {
            return; // running under the socket/shmem CI matrix
        }
        let results = run_spmd(3, |c| {
            assert_eq!(c.transport(), Transport::Thread);
            c.allreduce_scalar(1.0, ReduceOp::Sum)
        });
        assert_eq!(results, vec![3.0, 3.0, 3.0]);
    }
}
